//! The JSON request/response schema of the query endpoints, plus the
//! canonical query fingerprint the cache is keyed by.
//!
//! Responses are rendered with the workspace's deterministic JSON
//! writers ([`correlation_sketches::json`]), so a response body is a
//! pure function of `(ranked results, generation)` — the property that
//! makes "cache hit is byte-identical to cache miss" and "server answer
//! is byte-identical to a single-process [`engine::top_k_with_reports`]
//! call" testable as exact byte equality.
//!
//! [`engine::top_k_with_reports`]: sketch_index::engine::top_k_with_reports

use correlation_sketches::json::{self, push_f64, push_string};
use correlation_sketches::EstimateReport;
use sketch_hashing::murmur3_x64_128;
use sketch_index::{DocId, PlanMode, QueryOptions, ReportedResult, Scorer, ShardCandidate};
use sketch_stats::{ConfidenceInterval, CorrelationEstimator, ScoredEstimate};

/// Ranking parameters shared by `/query` and `/query_batch`, resolved
/// against the server's defaults when a field is absent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryParams {
    /// Results returned after re-ranking.
    pub k: usize,
    /// Candidates retrieved by overlap before re-ranking.
    pub candidates: usize,
    /// Correlation estimator.
    pub estimator: CorrelationEstimator,
    /// Minimum join-sample size for an estimate.
    pub min_sample: usize,
    /// Hoeffding interval significance for the uncertainty reports.
    pub alpha: f64,
    /// Ranking scorer (`s1..s4`).
    pub scorer: Scorer,
    /// Confidence level of the per-candidate interval the scorer
    /// consumes.
    pub confidence: f64,
    /// Query plan: exhaustive, or the two-pass pruning planner.
    pub plan: PlanMode,
}

impl Default for QueryParams {
    fn default() -> Self {
        let opts = QueryOptions::default();
        Self {
            k: opts.k,
            candidates: opts.overlap_candidates,
            estimator: opts.estimator,
            min_sample: opts.min_sample,
            alpha: 0.05,
            scorer: opts.scorer,
            confidence: opts.confidence,
            plan: opts.plan,
        }
    }
}

impl QueryParams {
    /// The engine options these parameters resolve to. Joins run serial
    /// per request — the thread pool parallelizes across requests, and
    /// the engine's answers are thread-count-invariant anyway.
    #[must_use]
    pub fn to_options(&self) -> QueryOptions {
        QueryOptions {
            overlap_candidates: self.candidates,
            k: self.k,
            estimator: self.estimator,
            min_sample: self.min_sample,
            threads: 1,
            scorer: self.scorer,
            confidence: self.confidence,
            plan: self.plan,
        }
    }
}

/// One query: an ad-hoc column (keys + values) to correlate against the
/// corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryBody {
    /// Label for the query column (becomes the query sketch's table
    /// name; purely cosmetic).
    pub id: String,
    /// Categorical join-key column.
    pub keys: Vec<String>,
    /// Numeric value column, same length as `keys`.
    pub values: Vec<f64>,
}

/// A parsed `POST /query` request.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// The query column.
    pub body: QueryBody,
    /// Resolved ranking parameters.
    pub params: QueryParams,
    /// `"trace": true` — return a per-request span tree alongside the
    /// results. Deliberately *not* part of the fingerprint: tracing
    /// must never change what answer is computed or cached, only
    /// whether its timing breakdown is attached.
    pub trace: bool,
}

/// A parsed `POST /query_batch` request: many query columns ranked
/// under one shared set of parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRequest {
    /// The query columns, answered in order.
    pub queries: Vec<QueryBody>,
    /// Resolved ranking parameters (shared by every query).
    pub params: QueryParams,
    /// `"trace": true` — attach the span tree (excluded from the
    /// fingerprint, like [`QueryRequest::trace`]).
    pub trace: bool,
}

/// Ceiling on request-supplied `k` and `candidates`. Both size
/// selection heaps, so an untrusted request must not be able to demand
/// an enormous allocation; far beyond any useful top-k over any corpus
/// this serves.
pub const MAX_SELECTION: usize = 100_000;

fn bounded(v: &json::Value, field: &str) -> Result<usize, String> {
    let n = usize::try_from(v.as_u64(field).map_err(|e| e.to_string())?)
        .map_err(|e| format!("{field}: {e}"))?;
    if n > MAX_SELECTION {
        return Err(format!("{field} must be <= {MAX_SELECTION}, got {n}"));
    }
    Ok(n)
}

fn parse_params(obj: json::Obj<'_>, defaults: &QueryParams) -> Result<QueryParams, String> {
    let mut params = *defaults;
    if let Some(v) = obj.opt("k") {
        params.k = bounded(v, "k")?;
    }
    if let Some(v) = obj.opt("candidates") {
        params.candidates = bounded(v, "candidates")?;
    }
    if let Some(v) = obj.opt("estimator") {
        params.estimator = v
            .as_str("estimator")
            .map_err(|e| e.to_string())?
            .parse()
            .map_err(|e| format!("estimator: {e}"))?;
    }
    if let Some(v) = obj.opt("min_sample") {
        params.min_sample = usize::try_from(v.as_u64("min_sample").map_err(|e| e.to_string())?)
            .map_err(|e| format!("min_sample: {e}"))?;
    }
    if let Some(v) = obj.opt("alpha") {
        let alpha = v.as_f64("alpha").map_err(|e| e.to_string())?;
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(format!("alpha must be in (0, 1), got {alpha}"));
        }
        params.alpha = alpha;
    }
    if let Some(v) = obj.opt("scorer") {
        params.scorer = v
            .as_str("scorer")
            .map_err(|e| e.to_string())?
            .parse()
            .map_err(|e| format!("scorer: {e}"))?;
    }
    if let Some(v) = obj.opt("confidence") {
        let confidence = v.as_f64("confidence").map_err(|e| e.to_string())?;
        if !(confidence > 0.0 && confidence < 1.0) {
            return Err(format!("confidence must be in (0, 1), got {confidence}"));
        }
        params.confidence = confidence;
    }
    if let Some(v) = obj.opt("plan") {
        params.plan = v
            .as_str("plan")
            .map_err(|e| e.to_string())?
            .parse()
            .map_err(|e| format!("plan: {e}"))?;
    }
    Ok(params)
}

fn parse_trace(obj: json::Obj<'_>) -> Result<bool, String> {
    match obj.opt("trace") {
        Some(v) => v.as_bool("trace").map_err(|e| e.to_string()),
        None => Ok(false),
    }
}

/// Cheap pre-parse screen: a request can only have asked for a trace if
/// the literal key `"trace"` appears in its bytes. The handlers use it
/// on the memo-miss path (where a full parse is imminent anyway) to
/// start the trace *before* the parse, so the parse span is captured. A
/// false positive merely records spans that are never rendered; a false
/// negative is impossible.
#[must_use]
pub(crate) fn wants_trace_hint(body: &[u8]) -> bool {
    body.windows(7).any(|w| w == b"\"trace\"")
}

fn parse_body(obj: json::Obj<'_>) -> Result<QueryBody, String> {
    let id = match obj.opt("id") {
        Some(v) => v.as_str("id").map_err(|e| e.to_string())?.to_string(),
        None => "query".to_string(),
    };
    let keys = obj
        .get("keys")
        .and_then(|v| v.as_array("keys"))
        .map_err(|e| e.to_string())?
        .iter()
        .map(|v| v.as_str("keys[]").map(str::to_string))
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| e.to_string())?;
    let values = obj
        .get("values")
        .and_then(|v| v.as_array("values"))
        .map_err(|e| e.to_string())?
        .iter()
        .map(|v| v.as_f64("values[]"))
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| e.to_string())?;
    if keys.len() != values.len() {
        return Err(format!(
            "keys ({}) and values ({}) must have equal length",
            keys.len(),
            values.len()
        ));
    }
    if keys.is_empty() {
        return Err("keys must be non-empty".into());
    }
    if let Some(bad) = values.iter().find(|v| !v.is_finite()) {
        return Err(format!("values must be finite, got {bad}"));
    }
    Ok(QueryBody { id, keys, values })
}

impl QueryRequest {
    /// Parse a `POST /query` body, resolving absent parameters against
    /// `defaults`.
    ///
    /// # Errors
    ///
    /// A human-readable reason, safe to echo in a 400 response.
    pub fn parse(body: &[u8], defaults: &QueryParams) -> Result<Self, String> {
        let text = std::str::from_utf8(body).map_err(|e| format!("non-utf8 body: {e}"))?;
        let value = json::parse(text)?;
        let obj = value.as_object("request").map_err(|e| e.to_string())?;
        Ok(Self {
            body: parse_body(obj)?,
            params: parse_params(obj, defaults)?,
            trace: parse_trace(obj)?,
        })
    }

    /// The canonical fingerprint of this request (parameters included),
    /// for cache keying. Two requests that resolve to the same query
    /// and parameters share a fingerprint regardless of JSON field
    /// order, whitespace, or spelled-out defaults.
    #[must_use]
    pub fn fingerprint(&self) -> u128 {
        let mut bytes = Vec::with_capacity(64 + self.body.keys.len() * 16);
        bytes.extend_from_slice(b"query\x00");
        push_params(&mut bytes, &self.params);
        push_query(&mut bytes, &self.body);
        fingerprint_of(&bytes)
    }
}

impl BatchRequest {
    /// Parse a `POST /query_batch` body: `{"queries":[...]}` plus the
    /// shared parameter fields of [`QueryParams`].
    ///
    /// # Errors
    ///
    /// A human-readable reason, safe to echo in a 400 response.
    pub fn parse(body: &[u8], defaults: &QueryParams) -> Result<Self, String> {
        let text = std::str::from_utf8(body).map_err(|e| format!("non-utf8 body: {e}"))?;
        let value = json::parse(text)?;
        let obj = value.as_object("request").map_err(|e| e.to_string())?;
        let params = parse_params(obj, defaults)?;
        let queries = obj
            .get("queries")
            .and_then(|v| v.as_array("queries"))
            .map_err(|e| e.to_string())?
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let q = v
                    .as_object("queries[]")
                    .map_err(|e| e.to_string())
                    .and_then(parse_body);
                q.map_err(|e| format!("queries[{i}]: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        if queries.is_empty() {
            return Err("queries must be non-empty".into());
        }
        Ok(Self {
            queries,
            params,
            trace: parse_trace(obj)?,
        })
    }

    /// Canonical fingerprint of the whole batch, for cache keying.
    #[must_use]
    pub fn fingerprint(&self) -> u128 {
        let mut bytes = Vec::with_capacity(64 * self.queries.len());
        bytes.extend_from_slice(b"batch\x00");
        push_params(&mut bytes, &self.params);
        for q in &self.queries {
            push_query(&mut bytes, q);
        }
        fingerprint_of(&bytes)
    }
}

/// Seed of the fingerprint hash (arbitrary, fixed forever: fingerprints
/// of a given request must be stable across server restarts for the
/// cache key space to make sense in logs).
const FINGERPRINT_SEED: u64 = 0x5e7e_5e7e_5e7e_5e7e;

fn fingerprint_of(bytes: &[u8]) -> u128 {
    let (h1, h2) = murmur3_x64_128(bytes, FINGERPRINT_SEED);
    (u128::from(h1) << 64) | u128::from(h2)
}

/// Hash of the raw request-body bytes, keying the parse-skipping memo
/// in front of the response cache ([`crate::cache::ParseMemo`]). Unlike
/// [`QueryRequest::fingerprint`] this is *not* canonical — bodies that
/// differ only in JSON field order hash differently — which is exactly
/// why it is only ever a memo key, never a cache key.
#[must_use]
pub fn raw_fingerprint(bytes: &[u8]) -> u128 {
    fingerprint_of(bytes)
}

fn push_params(bytes: &mut Vec<u8>, p: &QueryParams) {
    bytes.extend_from_slice(&(p.k as u64).to_le_bytes());
    bytes.extend_from_slice(&(p.candidates as u64).to_le_bytes());
    bytes.extend_from_slice(p.estimator.name().as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(&(p.min_sample as u64).to_le_bytes());
    bytes.extend_from_slice(&p.alpha.to_bits().to_le_bytes());
    bytes.extend_from_slice(p.scorer.name().as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(&p.confidence.to_bits().to_le_bytes());
    bytes.extend_from_slice(p.plan.name().as_bytes());
    bytes.push(0);
    let plan_confidence = match p.plan {
        PlanMode::Exhaustive => 0.0,
        PlanMode::TwoPass { confidence } => confidence,
    };
    bytes.extend_from_slice(&plan_confidence.to_bits().to_le_bytes());
}

fn push_query(bytes: &mut Vec<u8>, q: &QueryBody) {
    bytes.extend_from_slice(&(q.id.len() as u64).to_le_bytes());
    bytes.extend_from_slice(q.id.as_bytes());
    bytes.extend_from_slice(&(q.keys.len() as u64).to_le_bytes());
    for (k, v) in q.keys.iter().zip(&q.values) {
        bytes.extend_from_slice(&(k.len() as u64).to_le_bytes());
        bytes.extend_from_slice(k.as_bytes());
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

fn push_result(out: &mut String, r: &ReportedResult) {
    out.push_str("{\"id\":");
    push_string(out, &r.result.id);
    out.push_str(",\"doc\":");
    out.push_str(&r.result.doc.to_string());
    out.push_str(",\"overlap\":");
    out.push_str(&r.result.overlap.to_string());
    out.push_str(",\"sample_size\":");
    out.push_str(&r.result.sample_size.to_string());
    out.push_str(",\"estimate\":");
    match r.result.estimate {
        Some(e) => push_f64(out, e),
        None => out.push_str("null"),
    }
    out.push_str(",\"ci_lo\":");
    match r.result.ci_lo {
        Some(v) => push_f64(out, v),
        None => out.push_str("null"),
    }
    out.push_str(",\"ci_hi\":");
    match r.result.ci_hi {
        Some(v) => push_f64(out, v),
        None => out.push_str("null"),
    }
    out.push_str(",\"score\":");
    push_f64(out, r.result.score);
    out.push_str(",\"report\":");
    match &r.report {
        Some(rep) => {
            out.push_str("{\"estimator\":\"");
            out.push_str(rep.estimator.name());
            out.push_str("\",\"estimate\":");
            push_f64(out, rep.estimate);
            out.push_str(",\"sample_size\":");
            out.push_str(&rep.sample_size.to_string());
            out.push_str(",\"hoeffding\":[");
            push_f64(out, rep.hoeffding.low);
            out.push(',');
            push_f64(out, rep.hoeffding.high);
            out.push_str("],\"hfd_length\":");
            push_f64(out, rep.hfd_length);
            out.push_str(",\"fisher_se\":");
            push_f64(out, rep.fisher_se);
            out.push('}');
        }
        None => out.push_str("null"),
    }
    out.push('}');
}

fn push_results(out: &mut String, results: &[ReportedResult]) {
    out.push('[');
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_result(out, r);
    }
    out.push(']');
}

/// The shared response preamble: generation plus the resolved ranking
/// parameters (scorer and confidence), so a client can always tell
/// which scorer produced an answer — defaults included.
fn push_preamble(out: &mut String, generation: u64, params: &QueryParams) {
    out.push_str("{\"generation\":");
    out.push_str(&generation.to_string());
    out.push_str(",\"scorer\":\"");
    out.push_str(params.scorer.name());
    out.push_str("\",\"confidence\":");
    push_f64(out, params.confidence);
}

/// Render a `/query` response: deterministic bytes for a given
/// `(results, generation, params)`.
#[must_use]
pub fn render_query_response(
    generation: u64,
    params: &QueryParams,
    results: &[ReportedResult],
) -> String {
    let mut out = String::with_capacity(64 + 256 * results.len());
    push_preamble(&mut out, generation, params);
    out.push_str(",\"count\":");
    out.push_str(&results.len().to_string());
    out.push_str(",\"results\":");
    push_results(&mut out, results);
    out.push('}');
    out
}

/// Render a `/query_batch` response; `answers[i]` answers `queries[i]`.
#[must_use]
pub fn render_batch_response(
    generation: u64,
    params: &QueryParams,
    answers: &[Vec<ReportedResult>],
) -> String {
    let mut out = String::with_capacity(64 + 256 * answers.len());
    push_preamble(&mut out, generation, params);
    out.push_str(",\"count\":");
    out.push_str(&answers.len().to_string());
    out.push_str(",\"answers\":[");
    for (i, results) in answers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_results(&mut out, results);
    }
    out.push_str("]}");
    out
}

/// Splice a rendered trace object into a finished response body:
/// `{...}` becomes `{...,"trace":{...}}`.
///
/// The cache only ever stores the *untraced* body, and a traced
/// response is produced by splicing into a copy — so the result payload
/// of a traced answer is byte-identical to the untraced answer for the
/// same request, whether either was a cache hit or a miss.
#[must_use]
pub fn attach_trace(body: &str, trace_json: &str) -> String {
    let mut out = String::with_capacity(body.len() + trace_json.len() + 16);
    match body.strip_suffix('}') {
        Some(head) => {
            out.push_str(head);
            out.push_str(",\"trace\":");
            out.push_str(trace_json);
            out.push('}');
        }
        // Not an object (never happens for our own renders): return the
        // body unchanged rather than corrupt it.
        None => out.push_str(body),
    }
    out
}

/// Render an error payload: `{"error":"..."}`.
#[must_use]
pub fn render_error(message: &str) -> String {
    let mut out = String::with_capacity(16 + message.len());
    out.push_str("{\"error\":");
    push_string(&mut out, message);
    out.push('}');
    out
}

/// Extract a `u64` field from a JSON object body — the tiny client-side
/// helper used by the load harness and smoke tooling to read
/// `generation` out of responses without a full schema.
///
/// # Errors
///
/// A human-readable reason when the body is not JSON or lacks the field.
pub fn extract_u64(body: &str, field: &str) -> Result<u64, String> {
    let value = json::parse(body)?;
    let obj = value.as_object("response").map_err(|e| e.to_string())?;
    obj.get(field)
        .and_then(|v| v.as_u64(field))
        .map_err(|e| e.to_string())
}

// ---------------------------------------------------------------------
// The internal shard wire: coordinator ↔ worker.
//
// Floats cross this boundary as `f64::to_bits()` rendered as decimal
// u64 — bit-exact round-trip for every value, non-finite included,
// which the decimal float writer (`push_f64`, `{v:?}`) cannot encode.
// That is what lets the coordinator's merged response be *byte*-equal
// to a single-process render, and the oracle battery assert it.
// ---------------------------------------------------------------------

fn push_bits(out: &mut String, v: f64) {
    out.push_str(&v.to_bits().to_string());
}

fn bits_field(obj: json::Obj<'_>, field: &str) -> Result<f64, String> {
    Ok(f64::from_bits(
        obj.get(field)
            .and_then(|v| v.as_u64(field))
            .map_err(|e| e.to_string())?,
    ))
}

fn usize_field(obj: json::Obj<'_>, field: &str) -> Result<usize, String> {
    usize::try_from(
        obj.get(field)
            .and_then(|v| v.as_u64(field))
            .map_err(|e| e.to_string())?,
    )
    .map_err(|e| format!("{field}: {e}"))
}

/// Render one query body's fields (no braces), canonical form.
fn push_body_fields(out: &mut String, body: &QueryBody) {
    out.push_str("\"id\":");
    push_string(out, &body.id);
    out.push_str(",\"keys\":[");
    for (i, k) in body.keys.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_string(out, k);
    }
    out.push_str("],\"values\":[");
    for (i, v) in body.values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_f64(out, *v);
    }
    out.push(']');
}

/// Render every resolved parameter (no braces, leading comma): the
/// coordinator spells the full parameter set out so the workers'
/// *local* defaults can never influence a scattered query. The plan is
/// forwarded for fingerprint fidelity even though the shard path
/// estimates exhaustively; the estimator travels by name (the same
/// resolution path `/query` clients use).
fn push_param_fields(out: &mut String, p: &QueryParams) {
    out.push_str(",\"k\":");
    out.push_str(&p.k.to_string());
    out.push_str(",\"candidates\":");
    out.push_str(&p.candidates.to_string());
    out.push_str(",\"estimator\":\"");
    out.push_str(p.estimator.name());
    out.push_str("\",\"min_sample\":");
    out.push_str(&p.min_sample.to_string());
    out.push_str(",\"alpha\":");
    push_f64(out, p.alpha);
    out.push_str(",\"scorer\":\"");
    out.push_str(p.scorer.name());
    out.push_str("\",\"confidence\":");
    push_f64(out, p.confidence);
    out.push_str(",\"plan\":\"");
    out.push_str(&p.plan.to_string());
    out.push('"');
}

/// Render the canonical `POST /shard_query` request the coordinator
/// sends each worker. Parses back through [`QueryRequest::parse`] to
/// exactly `(body, params)` on any worker, whatever its defaults.
#[must_use]
pub fn render_shard_query_request(body: &QueryBody, params: &QueryParams) -> String {
    let mut out = String::with_capacity(64 + body.keys.len() * 24);
    out.push('{');
    push_body_fields(&mut out, body);
    push_param_fields(&mut out, params);
    out.push('}');
    out
}

/// Render the canonical `POST /shard_query_batch` request.
#[must_use]
pub fn render_shard_batch_request(queries: &[QueryBody], params: &QueryParams) -> String {
    let mut out = String::with_capacity(64 + queries.len() * 128);
    out.push_str("{\"queries\":[");
    for (i, q) in queries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        push_body_fields(&mut out, q);
        out.push('}');
    }
    out.push(']');
    push_param_fields(&mut out, params);
    out.push('}');
    out
}

/// Render the canonical `POST /shard_reports` request: the query and
/// parameters again (the worker re-derives the join) plus the
/// shard-local doc ids whose reports the merge shipped.
#[must_use]
pub fn render_shard_reports_request(
    body: &QueryBody,
    params: &QueryParams,
    docs: &[DocId],
) -> String {
    let mut out = String::with_capacity(96 + body.keys.len() * 24 + docs.len() * 8);
    out.push('{');
    push_body_fields(&mut out, body);
    push_param_fields(&mut out, params);
    out.push_str(",\"docs\":[");
    for (i, d) in docs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&d.to_string());
    }
    out.push_str("]}");
    out
}

/// Extract the `docs` array of a `/shard_reports` request (the rest of
/// the body parses through [`QueryRequest::parse`], which tolerates
/// the extra field).
///
/// # Errors
///
/// A human-readable reason, safe to echo in a 400 response.
pub fn extract_docs(body: &[u8]) -> Result<Vec<DocId>, String> {
    let text = std::str::from_utf8(body).map_err(|e| format!("non-utf8 body: {e}"))?;
    let value = json::parse(text)?;
    let obj = value.as_object("request").map_err(|e| e.to_string())?;
    obj.get("docs")
        .and_then(|v| v.as_array("docs"))
        .map_err(|e| e.to_string())?
        .iter()
        .map(|v| {
            v.as_u64("docs[]")
                .map_err(|e| e.to_string())
                .and_then(|d| DocId::try_from(d).map_err(|e| format!("docs[]: {e}")))
        })
        .collect()
}

fn push_shard_row(out: &mut String, row: &ShardCandidate) {
    out.push_str("{\"doc\":");
    out.push_str(&row.doc.to_string());
    out.push_str(",\"id\":");
    push_string(out, &row.id);
    out.push_str(",\"overlap\":");
    out.push_str(&row.overlap.to_string());
    out.push_str(",\"n\":");
    out.push_str(&row.sample_size.to_string());
    out.push_str(",\"est\":");
    match &row.est {
        Some(e) => {
            out.push_str("{\"e\":");
            push_bits(out, e.estimate);
            out.push_str(",\"lo\":");
            push_bits(out, e.ci_lo);
            out.push_str(",\"hi\":");
            push_bits(out, e.ci_hi);
            out.push_str(",\"n\":");
            out.push_str(&e.sample_size.to_string());
            out.push('}');
        }
        None => out.push_str("null"),
    }
    out.push('}');
}

fn push_shard_rows(out: &mut String, rows: &[ShardCandidate]) {
    out.push('[');
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_shard_row(out, row);
    }
    out.push(']');
}

/// Render a worker's `/shard_query` response: its generation, live
/// sketch count (the coordinator's doc-offset unit), and candidate
/// rows with bit-encoded estimates.
#[must_use]
pub fn render_shard_query_response(
    generation: u64,
    sketches: usize,
    rows: &[ShardCandidate],
) -> String {
    let mut out = String::with_capacity(64 + 128 * rows.len());
    out.push_str("{\"generation\":");
    out.push_str(&generation.to_string());
    out.push_str(",\"sketches\":");
    out.push_str(&sketches.to_string());
    out.push_str(",\"rows\":");
    push_shard_rows(&mut out, rows);
    out.push('}');
    out
}

/// Render a worker's `/shard_query_batch` response: one row list per
/// query, all from one snapshot.
#[must_use]
pub fn render_shard_batch_response(
    generation: u64,
    sketches: usize,
    queries: &[Vec<ShardCandidate>],
) -> String {
    let mut out = String::with_capacity(64 + queries.iter().map(|q| 128 * q.len()).sum::<usize>());
    out.push_str("{\"generation\":");
    out.push_str(&generation.to_string());
    out.push_str(",\"sketches\":");
    out.push_str(&sketches.to_string());
    out.push_str(",\"queries\":[");
    for (i, rows) in queries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_shard_rows(&mut out, rows);
    }
    out.push_str("]}");
    out
}

/// A worker's parsed `/shard_query` response.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardQueryResponse {
    /// Worker store generation the rows were computed against.
    pub generation: u64,
    /// The worker's live sketch count (its doc-id space).
    pub sketches: usize,
    /// Shard-local candidate rows, in retrieval order.
    pub rows: Vec<ShardCandidate>,
}

/// A worker's parsed `/shard_query_batch` response.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardBatchResponse {
    /// Worker store generation the rows were computed against.
    pub generation: u64,
    /// The worker's live sketch count.
    pub sketches: usize,
    /// One candidate-row list per query, in request order.
    pub queries: Vec<Vec<ShardCandidate>>,
}

fn parse_shard_row(v: &json::Value) -> Result<ShardCandidate, String> {
    let obj = v.as_object("rows[]").map_err(|e| e.to_string())?;
    let est = match obj.get("est").map_err(|e| e.to_string())? {
        json::Value::Null => None,
        est => {
            let eo = est.as_object("est").map_err(|e| e.to_string())?;
            Some(ScoredEstimate {
                estimate: bits_field(eo, "e")?,
                ci_lo: bits_field(eo, "lo")?,
                ci_hi: bits_field(eo, "hi")?,
                sample_size: usize_field(eo, "n")?,
            })
        }
    };
    Ok(ShardCandidate {
        doc: DocId::try_from(
            obj.get("doc")
                .and_then(|v| v.as_u64("doc"))
                .map_err(|e| e.to_string())?,
        )
        .map_err(|e| format!("doc: {e}"))?,
        id: obj
            .get("id")
            .and_then(|v| v.as_str("id"))
            .map_err(|e| e.to_string())?
            .to_string(),
        overlap: usize_field(obj, "overlap")?,
        sample_size: usize_field(obj, "n")?,
        est,
    })
}

fn parse_shard_rows(v: &json::Value) -> Result<Vec<ShardCandidate>, String> {
    v.as_array("rows")
        .map_err(|e| e.to_string())?
        .iter()
        .map(parse_shard_row)
        .collect()
}

/// Parse a `/shard_query` response body.
///
/// # Errors
///
/// A human-readable reason (malformed worker reply).
pub fn parse_shard_query_response(body: &str) -> Result<ShardQueryResponse, String> {
    let value = json::parse(body)?;
    let obj = value.as_object("response").map_err(|e| e.to_string())?;
    Ok(ShardQueryResponse {
        generation: obj
            .get("generation")
            .and_then(|v| v.as_u64("generation"))
            .map_err(|e| e.to_string())?,
        sketches: usize_field(obj, "sketches")?,
        rows: parse_shard_rows(obj.get("rows").map_err(|e| e.to_string())?)?,
    })
}

/// Parse a `/shard_query_batch` response body.
///
/// # Errors
///
/// A human-readable reason (malformed worker reply).
pub fn parse_shard_batch_response(body: &str) -> Result<ShardBatchResponse, String> {
    let value = json::parse(body)?;
    let obj = value.as_object("response").map_err(|e| e.to_string())?;
    Ok(ShardBatchResponse {
        generation: obj
            .get("generation")
            .and_then(|v| v.as_u64("generation"))
            .map_err(|e| e.to_string())?,
        sketches: usize_field(obj, "sketches")?,
        queries: obj
            .get("queries")
            .and_then(|v| v.as_array("queries"))
            .map_err(|e| e.to_string())?
            .iter()
            .map(parse_shard_rows)
            .collect::<Result<_, _>>()?,
    })
}

/// Render a worker's `/shard_reports` response: one report (or null)
/// per requested doc, in request order, floats bit-encoded.
#[must_use]
pub fn render_shard_reports_response(
    generation: u64,
    reports: &[Option<EstimateReport>],
) -> String {
    let mut out = String::with_capacity(64 + 128 * reports.len());
    out.push_str("{\"generation\":");
    out.push_str(&generation.to_string());
    out.push_str(",\"reports\":[");
    for (i, rep) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match rep {
            Some(r) => {
                out.push_str("{\"e\":");
                push_bits(&mut out, r.estimate);
                out.push_str(",\"n\":");
                out.push_str(&r.sample_size.to_string());
                out.push_str(",\"lo\":");
                push_bits(&mut out, r.hoeffding.low);
                out.push_str(",\"hi\":");
                push_bits(&mut out, r.hoeffding.high);
                out.push_str(",\"hfd\":");
                push_bits(&mut out, r.hfd_length);
                out.push_str(",\"se\":");
                push_bits(&mut out, r.fisher_se);
                out.push('}');
            }
            None => out.push_str("null"),
        }
    }
    out.push_str("]}");
    out
}

/// A worker's parsed `/shard_reports` response.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReportsResponse {
    /// Worker store generation the reports were computed against.
    pub generation: u64,
    /// One report (or `None`) per requested doc, in request order.
    pub reports: Vec<Option<EstimateReport>>,
}

/// Parse a `/shard_reports` response body. The estimator is not on the
/// wire (it is pinned by the request parameters the coordinator sent),
/// so the caller passes it back in to reconstruct full
/// [`EstimateReport`] values.
///
/// # Errors
///
/// A human-readable reason (malformed worker reply).
pub fn parse_shard_reports_response(
    body: &str,
    estimator: CorrelationEstimator,
) -> Result<ShardReportsResponse, String> {
    let value = json::parse(body)?;
    let obj = value.as_object("response").map_err(|e| e.to_string())?;
    let reports = obj
        .get("reports")
        .and_then(|v| v.as_array("reports"))
        .map_err(|e| e.to_string())?
        .iter()
        .map(|v| match v {
            json::Value::Null => Ok(None),
            rep => {
                let ro = rep.as_object("reports[]").map_err(|e| e.to_string())?;
                Ok(Some(EstimateReport {
                    estimate: bits_field(ro, "e")?,
                    estimator,
                    sample_size: usize_field(ro, "n")?,
                    hoeffding: ConfidenceInterval {
                        low: bits_field(ro, "lo")?,
                        high: bits_field(ro, "hi")?,
                    },
                    hfd_length: bits_field(ro, "hfd")?,
                    fisher_se: bits_field(ro, "se")?,
                }))
            }
        })
        .collect::<Result<_, String>>()?;
    Ok(ShardReportsResponse {
        generation: obj
            .get("generation")
            .and_then(|v| v.as_u64("generation"))
            .map_err(|e| e.to_string())?,
        reports,
    })
}

// ---------------------------------------------------------------------
// The coordinator's public responses.
// ---------------------------------------------------------------------

/// One shard's state as reported in a coordinator response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardState {
    /// The shard's store generation: the generation its rows were
    /// computed against, or (for a degraded shard) the last generation
    /// the coordinator observed before the worker stopped answering.
    pub generation: u64,
    /// Whether the shard failed to answer this request — its
    /// candidates are missing from the merged results.
    pub degraded: bool,
}

/// Hash a shard-generation vector `(generation, sketches)` per shard
/// into the coordinator's cache key. Length-prefixed so vectors like
/// `[(1,n),(0,m)]` and `[(0,n),(1,m)]` (or differing worker counts)
/// can never alias — a mixed-generation response must never be served
/// for a different mixture.
#[must_use]
pub fn generation_hash(shards: &[(u64, u64)]) -> u64 {
    let mut bytes = Vec::with_capacity(8 + shards.len() * 16);
    bytes.extend_from_slice(b"gens\x00");
    bytes.extend_from_slice(&(shards.len() as u64).to_le_bytes());
    for (generation, sketches) in shards {
        bytes.extend_from_slice(&generation.to_le_bytes());
        bytes.extend_from_slice(&sketches.to_le_bytes());
    }
    murmur3_x64_128(&bytes, FINGERPRINT_SEED).0
}

/// The coordinator preamble: per-shard generations, the typed
/// `degraded` list (always present; empty when every shard answered),
/// and the resolved scorer/confidence — the sharded analogue of the
/// single-server preamble.
fn push_coordinator_preamble(out: &mut String, shards: &[ShardState], params: &QueryParams) {
    out.push_str("{\"generations\":[");
    for (i, s) in shards.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&s.generation.to_string());
    }
    out.push_str("],\"degraded\":[");
    let mut first = true;
    for (i, s) in shards.iter().enumerate() {
        if s.degraded {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"shard\":");
            out.push_str(&i.to_string());
            out.push_str(",\"generation\":");
            out.push_str(&s.generation.to_string());
            out.push('}');
        }
    }
    out.push_str("],\"scorer\":\"");
    out.push_str(params.scorer.name());
    out.push_str("\",\"confidence\":");
    push_f64(out, params.confidence);
}

/// Render a coordinator `/query` response. The `results` array is
/// rendered by the same writer as the single-server response, so a
/// healthy coordinator answer's results bytes are directly comparable
/// to (and, by the merge guarantee, identical to) a single-process
/// answer over the union corpus.
#[must_use]
pub fn render_coordinator_response(
    shards: &[ShardState],
    params: &QueryParams,
    merged: usize,
    shipped: usize,
    results: &[ReportedResult],
) -> String {
    let mut out = String::with_capacity(128 + 256 * results.len());
    push_coordinator_preamble(&mut out, shards, params);
    out.push_str(",\"merged\":");
    out.push_str(&merged.to_string());
    out.push_str(",\"shipped\":");
    out.push_str(&shipped.to_string());
    out.push_str(",\"count\":");
    out.push_str(&results.len().to_string());
    out.push_str(",\"results\":");
    push_results(&mut out, results);
    out.push('}');
    out
}

/// Render a coordinator `/query_batch` response; `answers[i]`,
/// `merged[i]`, `shipped[i]` describe `queries[i]`.
#[must_use]
pub fn render_coordinator_batch_response(
    shards: &[ShardState],
    params: &QueryParams,
    merged: &[usize],
    shipped: &[usize],
    answers: &[Vec<ReportedResult>],
) -> String {
    let mut out = String::with_capacity(128 + 256 * answers.len());
    push_coordinator_preamble(&mut out, shards, params);
    out.push_str(",\"merged\":[");
    for (i, m) in merged.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&m.to_string());
    }
    out.push_str("],\"shipped\":[");
    for (i, s) in shipped.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&s.to_string());
    }
    out.push_str("],\"count\":");
    out.push_str(&answers.len().to_string());
    out.push_str(",\"answers\":[");
    for (i, results) in answers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_results(&mut out, results);
    }
    out.push_str("]}");
    out
}

/// Does this parsed response value look like `{"error": ...}`?
#[must_use]
pub fn is_error_body(body: &str) -> bool {
    json::parse(body)
        .ok()
        .and_then(|v| {
            v.as_object("response")
                .ok()
                .map(|o| o.opt("error").is_some())
        })
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn defaults() -> QueryParams {
        QueryParams::default()
    }

    #[test]
    fn parses_minimal_query_with_defaults() {
        let req =
            QueryRequest::parse(br#"{"keys":["a","b"],"values":[1.0,2.5]}"#, &defaults()).unwrap();
        assert_eq!(req.body.id, "query");
        assert_eq!(req.body.keys, vec!["a", "b"]);
        assert_eq!(req.body.values, vec![1.0, 2.5]);
        assert_eq!(req.params, defaults());
        let opts = req.params.to_options();
        assert_eq!(opts.k, 10);
        assert_eq!(opts.overlap_candidates, 100);
        assert_eq!(opts.threads, 1);
    }

    #[test]
    fn parses_full_query_overrides() {
        let req = QueryRequest::parse(
            br#"{"id":"taxi","keys":["a"],"values":[1],"k":3,"candidates":7,
                 "estimator":"spearman","min_sample":5,"alpha":0.1,
                 "scorer":"s4","confidence":0.9,"plan":"two-pass@0.995"}"#,
            &defaults(),
        )
        .unwrap();
        assert_eq!(req.body.id, "taxi");
        assert_eq!(req.params.k, 3);
        assert_eq!(req.params.candidates, 7);
        assert_eq!(req.params.estimator.name(), "spearman");
        assert_eq!(req.params.min_sample, 5);
        assert_eq!(req.params.alpha, 0.1);
        assert_eq!(req.params.scorer, Scorer::S4);
        assert_eq!(req.params.confidence, 0.9);
        assert_eq!(req.params.plan, PlanMode::TwoPass { confidence: 0.995 });
        assert_eq!(req.params.to_options().plan, req.params.plan);
        // Paper-notation aliases resolve to the same scorer.
        let req = QueryRequest::parse(
            br#"{"keys":["a"],"values":[1],"scorer":"rp*cih"}"#,
            &defaults(),
        )
        .unwrap();
        assert_eq!(req.params.scorer, Scorer::S4);
    }

    #[test]
    fn rejects_malformed_queries_with_reasons() {
        for (body, needle) in [
            (&br#"{"values":[1]}"#[..], "keys"),
            (br#"{"keys":["a"],"values":[]}"#, "equal length"),
            (br#"{"keys":[],"values":[]}"#, "non-empty"),
            (br#"{"keys":["a"],"values":[1],"alpha":2}"#, "alpha"),
            (
                br#"{"keys":["a"],"values":[1],"estimator":"psychic"}"#,
                "estimator",
            ),
            (br#"{"keys":["a"],"values":[1],"scorer":"s9"}"#, "scorer"),
            (
                br#"{"keys":["a"],"values":[1],"confidence":1.5}"#,
                "confidence",
            ),
            (
                br#"{"keys":["a"],"values":[1],"confidence":0}"#,
                "confidence",
            ),
            (br#"{"keys":["a"],"values":[1],"plan":"psychic"}"#, "plan"),
            (
                br#"{"keys":["a"],"values":[1],"plan":"two-pass@1.5"}"#,
                "plan",
            ),
            (br#"not json"#, "unexpected"),
            (br#"[1,2]"#, "object"),
            // Absurd selection sizes must be rejected at the boundary,
            // not turned into enormous allocations downstream.
            (
                br#"{"keys":["a"],"values":[1],"k":1099511627776}"#,
                "k must be <=",
            ),
            (
                br#"{"keys":["a"],"values":[1],"candidates":1099511627776}"#,
                "candidates must be <=",
            ),
        ] {
            let err = QueryRequest::parse(body, &defaults()).unwrap_err();
            assert!(
                err.contains(needle),
                "body {:?}: error {err:?} should mention {needle:?}",
                String::from_utf8_lossy(body)
            );
        }
    }

    #[test]
    fn fingerprint_ignores_field_order_and_spelled_defaults() {
        let a = QueryRequest::parse(br#"{"keys":["a"],"values":[1.5]}"#, &defaults()).unwrap();
        let b = QueryRequest::parse(
            br#"{ "values" : [1.5], "k":10, "keys" : ["a"], "id":"query" }"#,
            &defaults(),
        )
        .unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_every_dimension() {
        let base = QueryRequest::parse(br#"{"keys":["a"],"values":[1.5]}"#, &defaults()).unwrap();
        for other in [
            &br#"{"keys":["b"],"values":[1.5]}"#[..],
            br#"{"keys":["a"],"values":[2.5]}"#,
            br#"{"keys":["a"],"values":[1.5],"k":9}"#,
            br#"{"keys":["a"],"values":[1.5],"candidates":99}"#,
            br#"{"keys":["a"],"values":[1.5],"estimator":"spearman"}"#,
            br#"{"keys":["a"],"values":[1.5],"min_sample":4}"#,
            br#"{"keys":["a"],"values":[1.5],"alpha":0.01}"#,
            br#"{"keys":["a"],"values":[1.5],"scorer":"s2"}"#,
            br#"{"keys":["a"],"values":[1.5],"confidence":0.8}"#,
            br#"{"keys":["a"],"values":[1.5],"plan":"two-pass"}"#,
            br#"{"keys":["a"],"values":[1.5],"id":"other"}"#,
        ] {
            let req = QueryRequest::parse(other, &defaults()).unwrap();
            assert_ne!(
                base.fingerprint(),
                req.fingerprint(),
                "{}",
                String::from_utf8_lossy(other)
            );
        }
        // Two two-pass plans differing only in pruning confidence must
        // not share a cache entry either.
        let tp99 = QueryRequest::parse(
            br#"{"keys":["a"],"values":[1.5],"plan":"two-pass@0.99"}"#,
            &defaults(),
        )
        .unwrap();
        let tp95 = QueryRequest::parse(
            br#"{"keys":["a"],"values":[1.5],"plan":"two-pass@0.95"}"#,
            &defaults(),
        )
        .unwrap();
        assert_ne!(tp99.fingerprint(), tp95.fingerprint());
    }

    #[test]
    fn fingerprint_is_injection_safe_across_key_boundaries() {
        // ["ab","c"] vs ["a","bc"] must not collide (length-prefixed).
        let a = QueryRequest::parse(br#"{"keys":["ab","c"],"values":[1,2]}"#, &defaults()).unwrap();
        let b = QueryRequest::parse(br#"{"keys":["a","bc"],"values":[1,2]}"#, &defaults()).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn trace_flag_parses_but_never_touches_the_fingerprint() {
        let plain = QueryRequest::parse(br#"{"keys":["a"],"values":[1]}"#, &defaults()).unwrap();
        assert!(!plain.trace);
        let traced =
            QueryRequest::parse(br#"{"keys":["a"],"values":[1],"trace":true}"#, &defaults())
                .unwrap();
        assert!(traced.trace);
        // Same cached answer serves both spellings.
        assert_eq!(plain.fingerprint(), traced.fingerprint());
        assert!(
            QueryRequest::parse(br#"{"keys":["a"],"values":[1],"trace":"yes"}"#, &defaults())
                .is_err()
        );
        let batch = BatchRequest::parse(
            br#"{"queries":[{"keys":["a"],"values":[1]}],"trace":true}"#,
            &defaults(),
        )
        .unwrap();
        assert!(batch.trace);
        let plain_batch =
            BatchRequest::parse(br#"{"queries":[{"keys":["a"],"values":[1]}]}"#, &defaults())
                .unwrap();
        assert_eq!(batch.fingerprint(), plain_batch.fingerprint());
    }

    #[test]
    fn attach_trace_splices_before_the_closing_brace() {
        let body = "{\"generation\":3,\"results\":[]}";
        let traced = attach_trace(body, "{\"total_us\":7,\"spans\":[]}");
        assert_eq!(
            traced,
            "{\"generation\":3,\"results\":[],\"trace\":{\"total_us\":7,\"spans\":[]}}"
        );
        // Still valid JSON with the original fields intact.
        let v = json::parse(&traced).unwrap();
        let obj = v.as_object("r").unwrap();
        assert_eq!(obj.get("generation").unwrap().as_u64("g").unwrap(), 3);
        assert!(obj.opt("trace").is_some());
        // Stripping the spliced suffix recovers the original bytes.
        let suffix = ",\"trace\":{\"total_us\":7,\"spans\":[]}}";
        assert_eq!(
            traced.strip_suffix(suffix).unwrap(),
            &body[..body.len() - 1]
        );
    }

    #[test]
    fn batch_parses_and_fingerprints() {
        let batch = BatchRequest::parse(
            br#"{"queries":[{"keys":["a"],"values":[1]},{"id":"q2","keys":["b"],"values":[2]}],"k":5}"#,
            &defaults(),
        )
        .unwrap();
        assert_eq!(batch.queries.len(), 2);
        assert_eq!(batch.params.k, 5);
        assert_eq!(batch.queries[1].id, "q2");

        let reordered = BatchRequest::parse(
            br#"{"queries":[{"id":"q2","keys":["b"],"values":[2]},{"keys":["a"],"values":[1]}],"k":5}"#,
            &defaults(),
        )
        .unwrap();
        assert_ne!(batch.fingerprint(), reordered.fingerprint());

        assert!(BatchRequest::parse(br#"{"queries":[]}"#, &defaults()).is_err());
        let err = BatchRequest::parse(br#"{"queries":[{"keys":["a"]}]}"#, &defaults()).unwrap_err();
        assert!(err.contains("queries[0]"), "{err}");
    }

    #[test]
    fn batch_and_single_fingerprints_never_collide() {
        let single = QueryRequest::parse(br#"{"keys":["a"],"values":[1]}"#, &defaults()).unwrap();
        let batch =
            BatchRequest::parse(br#"{"queries":[{"keys":["a"],"values":[1]}]}"#, &defaults())
                .unwrap();
        assert_ne!(single.fingerprint(), batch.fingerprint());
    }

    #[test]
    fn error_rendering_escapes_and_parses() {
        let body = render_error("bad \"thing\"\nhappened");
        assert!(is_error_body(&body));
        assert!(!is_error_body("{\"ok\":1}"));
        let v = json::parse(&body).unwrap();
        assert_eq!(
            v.as_object("e")
                .unwrap()
                .get("error")
                .unwrap()
                .as_str("m")
                .unwrap(),
            "bad \"thing\"\nhappened"
        );
    }

    #[test]
    fn shard_row_wire_roundtrips_bit_exactly() {
        let rows = vec![
            ShardCandidate {
                doc: 7,
                id: "t/k/v".into(),
                overlap: 31,
                sample_size: 12,
                est: Some(ScoredEstimate {
                    estimate: -0.0,
                    ci_lo: f64::from_bits(0x0000_0000_0000_0001), // subnormal
                    ci_hi: 0.123_456_789_012_345_67,
                    sample_size: 12,
                }),
            },
            ShardCandidate {
                doc: 0,
                id: "weird \"id\"\n".into(),
                overlap: 2,
                sample_size: 2,
                est: None,
            },
        ];
        let body = render_shard_query_response(5, 1000, &rows);
        let parsed = parse_shard_query_response(&body).unwrap();
        assert_eq!(parsed.generation, 5);
        assert_eq!(parsed.sketches, 1000);
        assert_eq!(parsed.rows, rows);
        // -0.0 must survive as -0.0 (PartialEq can't see the sign).
        assert_eq!(
            parsed.rows[0].est.unwrap().estimate.to_bits(),
            (-0.0f64).to_bits()
        );

        // Non-finite values — which the decimal float writer cannot
        // encode at all — cross the bits wire exactly.
        let odd = vec![ShardCandidate {
            doc: 1,
            id: "x".into(),
            overlap: 1,
            sample_size: 4,
            est: Some(ScoredEstimate {
                estimate: f64::NAN,
                ci_lo: f64::NEG_INFINITY,
                ci_hi: f64::INFINITY,
                sample_size: 4,
            }),
        }];
        let parsed = parse_shard_query_response(&render_shard_query_response(0, 1, &odd)).unwrap();
        let est = parsed.rows[0].est.unwrap();
        assert_eq!(est.estimate.to_bits(), f64::NAN.to_bits());
        assert_eq!(est.ci_lo, f64::NEG_INFINITY);
        assert_eq!(est.ci_hi, f64::INFINITY);

        let batch = render_shard_batch_response(3, 50, &[rows.clone(), vec![]]);
        let parsed = parse_shard_batch_response(&batch).unwrap();
        assert_eq!(parsed.queries, vec![rows, vec![]]);
    }

    #[test]
    fn canonical_shard_request_overrides_any_worker_defaults() {
        // A coordinator resolved these params against ITS defaults; the
        // rendered request must reparse to the same params on a worker
        // configured with completely different defaults.
        let req = QueryRequest::parse(
            br#"{"id":"q","keys":["a","b"],"values":[1.5,-2.25],
                 "k":3,"estimator":"spearman","scorer":"s3","plan":"two-pass@0.995"}"#,
            &defaults(),
        )
        .unwrap();
        let wire = render_shard_query_request(&req.body, &req.params);
        let hostile_defaults = QueryParams {
            k: 1,
            candidates: 7,
            estimator: CorrelationEstimator::Qn,
            min_sample: 9,
            alpha: 0.2,
            scorer: Scorer::S4,
            confidence: 0.5,
            plan: PlanMode::two_pass(),
        };
        let reparsed = QueryRequest::parse(wire.as_bytes(), &hostile_defaults).unwrap();
        assert_eq!(reparsed, req);
        assert_eq!(reparsed.fingerprint(), req.fingerprint());

        // Same for the batch and reports forms.
        let batch = BatchRequest {
            queries: vec![req.body.clone(), req.body.clone()],
            params: req.params,
            trace: false,
        };
        let wire = render_shard_batch_request(&batch.queries, &batch.params);
        let reparsed = BatchRequest::parse(wire.as_bytes(), &hostile_defaults).unwrap();
        assert_eq!(reparsed, batch);

        let wire = render_shard_reports_request(&req.body, &req.params, &[4, 0, 9]);
        let reparsed = QueryRequest::parse(wire.as_bytes(), &hostile_defaults).unwrap();
        assert_eq!(reparsed, req);
        assert_eq!(extract_docs(wire.as_bytes()).unwrap(), vec![4, 0, 9]);
    }

    #[test]
    fn shard_reports_roundtrip_reconstructs_reports() {
        let reports = vec![
            Some(EstimateReport {
                estimate: 0.875,
                estimator: CorrelationEstimator::Spearman,
                sample_size: 40,
                hoeffding: ConfidenceInterval {
                    low: -1.0,
                    high: 0.999,
                },
                hfd_length: 2.5,
                fisher_se: 0.164,
            }),
            None,
        ];
        let body = render_shard_reports_response(9, &reports);
        let parsed = parse_shard_reports_response(&body, CorrelationEstimator::Spearman).unwrap();
        assert_eq!(parsed.generation, 9);
        assert_eq!(parsed.reports, reports);
    }

    #[test]
    fn generation_hash_never_aliases_mixtures() {
        // The anti-alias battery: permuted generation vectors, split
        // shifts at equal totals, and length tricks must all differ.
        let base = generation_hash(&[(1, 10), (0, 10)]);
        for other in [
            &[(0u64, 10u64), (1, 10)][..],
            &[(1, 10), (0, 10), (0, 0)],
            &[(1, 20), (0, 0)],
            &[(1, 10)],
            &[(2, 10), (0, 10)],
            &[(1, 11), (0, 9)],
        ] {
            assert_ne!(base, generation_hash(other), "{other:?}");
        }
        // Stable across calls (it keys a cache).
        assert_eq!(base, generation_hash(&[(1, 10), (0, 10)]));
    }

    #[test]
    fn coordinator_render_carries_typed_degraded_entries() {
        let shards = [
            ShardState {
                generation: 4,
                degraded: false,
            },
            ShardState {
                generation: 7,
                degraded: true,
            },
        ];
        let body = render_coordinator_response(&shards, &defaults(), 12, 5, &[]);
        let v = json::parse(&body).unwrap();
        let obj = v.as_object("resp").unwrap();
        let gens = obj.get("generations").unwrap().as_array("g").unwrap();
        assert_eq!(gens.len(), 2);
        let degraded = obj.get("degraded").unwrap().as_array("d").unwrap();
        assert_eq!(degraded.len(), 1);
        let d0 = degraded[0].as_object("d0").unwrap();
        assert_eq!(d0.get("shard").unwrap().as_u64("s").unwrap(), 1);
        assert_eq!(d0.get("generation").unwrap().as_u64("g").unwrap(), 7);
        assert_eq!(obj.get("merged").unwrap().as_u64("m").unwrap(), 12);
        assert_eq!(obj.get("shipped").unwrap().as_u64("s").unwrap(), 5);
        // Healthy responses still carry the (empty) degraded field —
        // the absence of degradation is explicit, not implied.
        let healthy = render_coordinator_response(
            &[ShardState {
                generation: 4,
                degraded: false,
            }],
            &defaults(),
            3,
            3,
            &[],
        );
        assert!(healthy.contains("\"degraded\":[]"), "{healthy}");
    }

    #[test]
    fn extract_u64_reads_generation() {
        assert_eq!(
            extract_u64("{\"generation\":42,\"x\":[]}", "generation").unwrap(),
            42
        );
        assert!(extract_u64("[]", "generation").is_err());
        assert!(extract_u64("{\"a\":1}", "generation").is_err());
    }
}
