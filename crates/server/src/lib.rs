//! **sketch-serve** — a dependency-free (std-only) concurrent HTTP/1.1
//! query service over a packed corpus store, turning the one-shot query
//! engine into a long-running system.
//!
//! The paper's scenario is interactive: a user uploads a column and asks
//! "which tables in the lake join with mine *and* correlate?". That
//! demands a resident index answering many concurrent queries while the
//! corpus underneath keeps mutating — the `sketch-store` delta log from
//! the mutable-corpora work, served live.
//!
//! # Endpoints
//!
//! | method & path        | purpose |
//! |----------------------|---------|
//! | `POST /query`        | top-k join-correlation query with uncertainty reports |
//! | `POST /query_batch`  | many queries ranked under shared parameters |
//! | `GET /corpus`        | store generation + shard/tombstone shape |
//! | `GET /healthz`       | liveness + served generation |
//! | `GET /stats`         | request counters, cache hits, latency percentiles |
//!
//! # Design invariants
//!
//! * **Snapshot reads.** Queries run on an immutable
//!   [`IndexSnapshot`](snapshot::IndexSnapshot) behind an `Arc`; the only
//!   synchronized step is cloning that `Arc`. No query ever blocks on a
//!   mutation, and no mutation ever tears a query.
//! * **Generation-aware caching.** The LRU response cache is keyed by
//!   `(canonical query fingerprint, store generation)`, so a corpus
//!   mutation invalidates exactly the stale entries — and a cache hit is
//!   byte-identical to the miss that populated it.
//! * **Answers are the engine's answers.** A served response body is a
//!   pure rendering of [`sketch_index::engine::top_k_with_reports`] at
//!   the served generation — proven byte-identical in the
//!   mutation-under-load integration test.
//! * **Freshness off the hot path.** A background thread polls the store
//!   manifest, applies new delta generations incrementally to a private
//!   clone, and atomically swaps snapshots; after a compaction
//!   (`StaleGeneration`) it rebuilds from the store instead.

#![deny(unsafe_code)] // `signal.rs` carves out the one allowed exception.
#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod client;
mod conn;
pub mod coordinator;
pub mod http;
mod metrics;
pub mod server;
pub mod signal;
pub mod snapshot;
pub mod stats;

pub use api::{render_batch_response, render_query_response, QueryParams};
pub use cache::QueryCache;
pub use client::{HttpClient, Response};
pub use coordinator::{start_coordinator, CoordinatorConfig, CoordinatorHandle};
pub use server::{start, ServerConfig, ServerError, ServerHandle};
pub use snapshot::{IndexSnapshot, SnapshotCell};
pub use stats::ServerStats;
