//! The connection-serving loop shared by the single-store server and
//! the scatter-gather coordinator: accept on a shared non-blocking
//! listener, serve keep-alive requests through a caller-supplied
//! router, and apply the idle/slow-loris/shutdown discipline of
//! [`crate::http`] uniformly. Both front ends get byte-identical HTTP
//! behavior (timeouts, 400/408/413 handling, HEAD body suppression,
//! panic containment) because it is literally the same loop.

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sketch_obs::Trace;

use crate::api;
use crate::http::{self, RecvError, Request};
use crate::stats::ServerStats;

/// A response body: freshly rendered JSON, JSON shared straight out of
/// the cache (no copy on the hit path), or a plain-text payload with an
/// explicit content type (the `/metrics` exposition).
pub(crate) enum Body {
    Owned(String),
    Shared(Arc<str>),
    Text(String, &'static str),
}

impl Body {
    pub(crate) fn as_str(&self) -> &str {
        match self {
            Self::Owned(s) | Self::Text(s, _) => s,
            Self::Shared(s) => s,
        }
    }

    pub(crate) fn content_type(&self) -> &'static str {
        match self {
            Self::Owned(_) | Self::Shared(_) => http::CONTENT_TYPE_JSON,
            Self::Text(_, ct) => ct,
        }
    }
}

impl From<String> for Body {
    fn from(s: String) -> Self {
        Self::Owned(s)
    }
}

/// Close out a traced request, shared by both front ends: log it when
/// it crossed the slow-query threshold, then splice the span tree into
/// the response when the request asked for it. A disabled trace returns
/// `(status, body)` untouched — the zero-cost path every normal request
/// takes.
///
/// Callers must cache the *untraced* body before calling this: the
/// splice happens last, so a traced request never changes what any
/// other request (or its untraced twin) reads back.
pub(crate) fn finish_traced(
    stats: &ServerStats,
    slow_query: Option<Duration>,
    log_tag: &str,
    trace: &Trace,
    want_trace: bool,
    status: u16,
    body: Body,
) -> (u16, Body) {
    if !trace.is_enabled() {
        return (status, body);
    }
    if let Some(threshold) = slow_query {
        let total_us = trace.total_us();
        let threshold_us = u64::try_from(threshold.as_micros()).unwrap_or(u64::MAX);
        if total_us >= threshold_us {
            ServerStats::bump(&stats.slow_queries);
            eprintln!(
                "{log_tag}: slow-query status={status} total_us={total_us} \
                 threshold_us={threshold_us} trace={}",
                trace.render_json()
            );
        }
    }
    if want_trace {
        ServerStats::bump(&stats.traced);
        if status < 300 {
            let spliced = api::attach_trace(body.as_str(), &trace.render_json());
            return (status, Body::Owned(spliced));
        }
    }
    (status, body)
}

/// Per-connection deadlines, taken from the front end's config.
#[derive(Clone, Copy)]
pub(crate) struct ConnLimits {
    pub keep_alive_idle: Duration,
    pub request_timeout: Duration,
}

/// One worker's accept loop: `accept → serve connection (keep-alive) →
/// accept`, with exponential idle backoff and per-connection panic
/// containment. `route` dispatches one request to `(status, body,
/// allow-header)`; `requests`/`errors` are the front end's counters.
pub(crate) fn accept_loop(
    listener: &TcpListener,
    shutdown: &AtomicBool,
    requests: &AtomicU64,
    errors: &AtomicU64,
    limits: ConnLimits,
    route: impl Fn(&Request) -> (u16, Body, Option<&'static str>),
) {
    // Idle accept polling backs off exponentially (1 ms → 25 ms) so a
    // quiet daemon isn't waking thousands of times a second, while a
    // burst after idle is still picked up within one tick; the cap also
    // keeps shutdown latency well under 50 ms.
    const IDLE_SLEEP_MIN: Duration = Duration::from_millis(1);
    const IDLE_SLEEP_MAX: Duration = Duration::from_millis(25);
    let mut idle_sleep = IDLE_SLEEP_MIN;
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                idle_sleep = IDLE_SLEEP_MIN;
                // A panic while serving must not unwind the worker out
                // of the pool — the fixed pool never respawns, so each
                // escaped panic would permanently shrink capacity until
                // the server silently stopped accepting.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    serve_connection(stream, shutdown, requests, errors, limits, &route);
                }));
                if result.is_err() {
                    ServerStats::bump(errors);
                    eprintln!("sketch-serve: worker caught a panic while serving a connection");
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(idle_sleep);
                idle_sleep = (idle_sleep * 2).min(IDLE_SLEEP_MAX);
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn serve_connection(
    mut stream: TcpStream,
    shutdown: &AtomicBool,
    requests: &AtomicU64,
    errors: &AtomicU64,
    limits: ConnLimits,
    route: &impl Fn(&Request) -> (u16, Body, Option<&'static str>),
) {
    let request_timeout = (!limits.request_timeout.is_zero()).then_some(limits.request_timeout);
    // Short read *and* write timeouts turn blocking syscalls into
    // ticks; `read_request` / `write_response_bounded` then apply the
    // same progress-credited deadline in both directions, so neither a
    // slow-loris sender nor a non-draining reader can pin the worker or
    // wedge shutdown (which joins workers).
    if stream.set_nonblocking(false).is_err()
        || stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .is_err()
        || stream
            .set_write_timeout(Some(Duration::from_millis(50)))
            .is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut buf = Vec::new();
    loop {
        let idle_deadline = Some(Instant::now() + limits.keep_alive_idle);
        match http::read_request(
            &mut stream,
            &mut buf,
            shutdown,
            idle_deadline,
            request_timeout,
        ) {
            Ok(req) => {
                let (status, body, allow) = route(&req);
                ServerStats::bump(requests);
                if status >= 300 {
                    ServerStats::bump(errors);
                }
                // RFC 9110: a response to HEAD must not carry a body —
                // a spec-compliant peer would leave the unread bytes in
                // its buffer and desync the next keep-alive response.
                let body_str = if req.method == "HEAD" {
                    ""
                } else {
                    body.as_str()
                };
                if http::write_response_bounded(
                    &mut stream,
                    &http::ResponsePayload {
                        status,
                        body: body_str,
                        keep_alive: req.keep_alive,
                        allow,
                        content_type: body.content_type(),
                    },
                    shutdown,
                    request_timeout,
                )
                .is_err()
                    || !req.keep_alive
                {
                    return;
                }
            }
            Err(RecvError::Closed | RecvError::Shutdown | RecvError::Io(_)) => return,
            Err(RecvError::Malformed(msg)) => {
                ServerStats::bump(requests);
                ServerStats::bump(errors);
                let _ = http::write_response_bounded(
                    &mut stream,
                    &http::ResponsePayload {
                        status: 400,
                        body: &api::render_error(&msg),
                        keep_alive: false,
                        allow: None,
                        content_type: http::CONTENT_TYPE_JSON,
                    },
                    shutdown,
                    request_timeout,
                );
                return;
            }
            Err(RecvError::TimedOut) => {
                ServerStats::bump(requests);
                ServerStats::bump(errors);
                let _ = http::write_response_bounded(
                    &mut stream,
                    &http::ResponsePayload {
                        status: 408,
                        body: &api::render_error("request timed out"),
                        keep_alive: false,
                        allow: None,
                        content_type: http::CONTENT_TYPE_JSON,
                    },
                    shutdown,
                    request_timeout,
                );
                return;
            }
            Err(RecvError::TooLarge) => {
                ServerStats::bump(requests);
                ServerStats::bump(errors);
                let _ = http::write_response_bounded(
                    &mut stream,
                    &http::ResponsePayload {
                        status: 413,
                        body: &api::render_error("request too large"),
                        keep_alive: false,
                        allow: None,
                        content_type: http::CONTENT_TYPE_JSON,
                    },
                    shutdown,
                    request_timeout,
                );
                return;
            }
        }
        // Finish the in-flight request, then honor shutdown.
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_passes_the_body_through_untouched() {
        let stats = ServerStats::default();
        let trace = Trace::disabled();
        let (status, body) = finish_traced(
            &stats,
            Some(Duration::ZERO),
            "test",
            &trace,
            false,
            200,
            Body::Owned("{\"a\":1}".to_string()),
        );
        assert_eq!(status, 200);
        assert_eq!(body.as_str(), "{\"a\":1}");
        assert_eq!(stats.slow_queries.load(Ordering::Relaxed), 0);
        assert_eq!(stats.traced.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn traced_success_gets_the_span_tree_spliced_in() {
        let stats = ServerStats::default();
        let mut trace = Trace::enabled();
        let g = trace.begin("parse");
        trace.end(g);
        let (status, body) = finish_traced(
            &stats,
            None,
            "test",
            &trace,
            true,
            200,
            Body::Owned("{\"a\":1}".to_string()),
        );
        assert_eq!(status, 200);
        assert!(
            body.as_str().starts_with("{\"a\":1,\"trace\":{"),
            "{}",
            body.as_str()
        );
        assert!(body.as_str().contains("\"name\":\"parse\""));
        assert_eq!(stats.traced.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn traced_errors_count_but_keep_the_error_body() {
        let stats = ServerStats::default();
        let trace = Trace::enabled();
        let (status, body) = finish_traced(
            &stats,
            Some(Duration::ZERO),
            "test",
            &trace,
            true,
            400,
            Body::Owned("{\"error\":\"x\"}".to_string()),
        );
        assert_eq!(status, 400);
        assert_eq!(body.as_str(), "{\"error\":\"x\"}");
        assert_eq!(stats.traced.load(Ordering::Relaxed), 1);
        // A zero threshold marks every traced request slow.
        assert_eq!(stats.slow_queries.load(Ordering::Relaxed), 1);
    }
}
