//! The connection-serving loop shared by the single-store server and
//! the scatter-gather coordinator: accept on a shared non-blocking
//! listener, serve keep-alive requests through a caller-supplied
//! router, and apply the idle/slow-loris/shutdown discipline of
//! [`crate::http`] uniformly. Both front ends get byte-identical HTTP
//! behavior (timeouts, 400/408/413 handling, HEAD body suppression,
//! panic containment) because it is literally the same loop.

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::api;
use crate::http::{self, RecvError, Request};
use crate::stats::ServerStats;

/// A response body: freshly rendered, or shared straight out of the
/// cache (no copy on the hit path).
pub(crate) enum Body {
    Owned(String),
    Shared(Arc<str>),
}

impl Body {
    pub(crate) fn as_str(&self) -> &str {
        match self {
            Self::Owned(s) => s,
            Self::Shared(s) => s,
        }
    }
}

impl From<String> for Body {
    fn from(s: String) -> Self {
        Self::Owned(s)
    }
}

/// Per-connection deadlines, taken from the front end's config.
#[derive(Clone, Copy)]
pub(crate) struct ConnLimits {
    pub keep_alive_idle: Duration,
    pub request_timeout: Duration,
}

/// One worker's accept loop: `accept → serve connection (keep-alive) →
/// accept`, with exponential idle backoff and per-connection panic
/// containment. `route` dispatches one request to `(status, body,
/// allow-header)`; `requests`/`errors` are the front end's counters.
pub(crate) fn accept_loop(
    listener: &TcpListener,
    shutdown: &AtomicBool,
    requests: &AtomicU64,
    errors: &AtomicU64,
    limits: ConnLimits,
    route: impl Fn(&Request) -> (u16, Body, Option<&'static str>),
) {
    // Idle accept polling backs off exponentially (1 ms → 25 ms) so a
    // quiet daemon isn't waking thousands of times a second, while a
    // burst after idle is still picked up within one tick; the cap also
    // keeps shutdown latency well under 50 ms.
    const IDLE_SLEEP_MIN: Duration = Duration::from_millis(1);
    const IDLE_SLEEP_MAX: Duration = Duration::from_millis(25);
    let mut idle_sleep = IDLE_SLEEP_MIN;
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                idle_sleep = IDLE_SLEEP_MIN;
                // A panic while serving must not unwind the worker out
                // of the pool — the fixed pool never respawns, so each
                // escaped panic would permanently shrink capacity until
                // the server silently stopped accepting.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    serve_connection(stream, shutdown, requests, errors, limits, &route);
                }));
                if result.is_err() {
                    ServerStats::bump(errors);
                    eprintln!("sketch-serve: worker caught a panic while serving a connection");
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(idle_sleep);
                idle_sleep = (idle_sleep * 2).min(IDLE_SLEEP_MAX);
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn serve_connection(
    mut stream: TcpStream,
    shutdown: &AtomicBool,
    requests: &AtomicU64,
    errors: &AtomicU64,
    limits: ConnLimits,
    route: &impl Fn(&Request) -> (u16, Body, Option<&'static str>),
) {
    let request_timeout = (!limits.request_timeout.is_zero()).then_some(limits.request_timeout);
    // Short read *and* write timeouts turn blocking syscalls into
    // ticks; `read_request` / `write_response_bounded` then apply the
    // same progress-credited deadline in both directions, so neither a
    // slow-loris sender nor a non-draining reader can pin the worker or
    // wedge shutdown (which joins workers).
    if stream.set_nonblocking(false).is_err()
        || stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .is_err()
        || stream
            .set_write_timeout(Some(Duration::from_millis(50)))
            .is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut buf = Vec::new();
    loop {
        let idle_deadline = Some(Instant::now() + limits.keep_alive_idle);
        match http::read_request(
            &mut stream,
            &mut buf,
            shutdown,
            idle_deadline,
            request_timeout,
        ) {
            Ok(req) => {
                let (status, body, allow) = route(&req);
                ServerStats::bump(requests);
                if status >= 300 {
                    ServerStats::bump(errors);
                }
                // RFC 9110: a response to HEAD must not carry a body —
                // a spec-compliant peer would leave the unread bytes in
                // its buffer and desync the next keep-alive response.
                let body_str = if req.method == "HEAD" {
                    ""
                } else {
                    body.as_str()
                };
                if http::write_response_bounded(
                    &mut stream,
                    status,
                    body_str,
                    req.keep_alive,
                    allow,
                    shutdown,
                    request_timeout,
                )
                .is_err()
                    || !req.keep_alive
                {
                    return;
                }
            }
            Err(RecvError::Closed | RecvError::Shutdown | RecvError::Io(_)) => return,
            Err(RecvError::Malformed(msg)) => {
                ServerStats::bump(requests);
                ServerStats::bump(errors);
                let _ = http::write_response_bounded(
                    &mut stream,
                    400,
                    &api::render_error(&msg),
                    false,
                    None,
                    shutdown,
                    request_timeout,
                );
                return;
            }
            Err(RecvError::TimedOut) => {
                ServerStats::bump(requests);
                ServerStats::bump(errors);
                let _ = http::write_response_bounded(
                    &mut stream,
                    408,
                    &api::render_error("request timed out"),
                    false,
                    None,
                    shutdown,
                    request_timeout,
                );
                return;
            }
            Err(RecvError::TooLarge) => {
                ServerStats::bump(requests);
                ServerStats::bump(errors);
                let _ = http::write_response_bounded(
                    &mut stream,
                    413,
                    &api::render_error("request too large"),
                    false,
                    None,
                    shutdown,
                    request_timeout,
                );
                return;
            }
        }
        // Finish the in-flight request, then honor shutdown.
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
    }
}
