//! The server itself: a fixed pool of worker threads accepting on one
//! shared listener, routing requests against the current
//! [`IndexSnapshot`](crate::snapshot::IndexSnapshot), plus a background
//! refresher thread that polls the store manifest and swaps fresh
//! snapshots in off the hot path.
//!
//! # Concurrency model
//!
//! * **Workers** (`threads` of them) each loop `accept → serve
//!   connection (keep-alive) → accept`. The listener is non-blocking and
//!   shared, so an idle worker picks up the next connection without a
//!   dispatcher thread or a channel. A worker serves one connection at a
//!   time, so the pool size bounds concurrent connections; to keep a
//!   parked client from pinning a worker, a connection idle past
//!   `keep_alive_idle` is closed and the worker returns to accepting
//!   (active clients are unaffected — the deadline only applies between
//!   requests). Connection streams use a short read timeout, and every
//!   timeout tick honors shutdown — even mid-request on a stalled
//!   client — so graceful shutdown always completes.
//! * **Queries never take a lock**: a worker loads the current snapshot
//!   `Arc` (the only synchronized step — an `RwLock` held for one
//!   refcount increment) and runs the whole query on that immutable
//!   snapshot. A refresh swapping a new snapshot in mid-query is
//!   invisible to the request being served.
//! * **The refresher** polls `manifest.cskm` every `poll_interval`.
//!   Polling is one tiny file read; only when the generation moved does
//!   it clone the index, apply the new deltas (or rebuild after a
//!   compaction), and swap. Store errors are logged to stderr and
//!   retried next tick — the previous snapshot keeps serving.
//! * **The cache** is keyed by `(query fingerprint, generation)`; see
//!   [`crate::cache`].

use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sketch_index::engine;
use sketch_obs::{promtext, Trace};
use sketch_store::StoreError;

use crate::api::{self, BatchRequest, QueryParams, QueryRequest};
use crate::cache::{self, ParseMemo, QueryCache};
use crate::conn::{self, Body, ConnLimits};
use crate::http::Request;
use crate::metrics;
use crate::snapshot::{refresh_with_generation, IndexSnapshot, RefreshOutcome, SnapshotCell};
use crate::stats::ServerStats;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The packed corpus store directory to serve.
    pub store: PathBuf,
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads in the fixed pool.
    pub threads: usize,
    /// Threads for shard loading (initial load and rebuilds).
    pub load_threads: usize,
    /// Query-result cache capacity in responses (0 disables).
    pub cache_capacity: usize,
    /// How often the refresher polls the store manifest.
    pub poll_interval: Duration,
    /// How long a keep-alive connection may sit idle (no request bytes)
    /// before its worker closes it and returns to accepting. Bounds
    /// worker starvation by parked clients; active requests are never
    /// cut off.
    pub keep_alive_idle: Duration,
    /// How long a single request may take to arrive in full once its
    /// first byte has been read, and how long a response write may sit
    /// with no progress. Bounds worker starvation by slow-loris clients
    /// that trickle a partial head or body forever and by clients that
    /// never drain their response; zero disables both deadlines.
    pub request_timeout: Duration,
    /// When set, trace every `/query` and `/query_batch` internally and
    /// log one structured line (with the full span tree) for each
    /// request whose total reaches the threshold. `None` disables both
    /// the logging and the always-on tracing it requires.
    pub slow_query: Option<Duration>,
    /// Default ranking parameters for requests that omit them.
    pub defaults: QueryParams,
}

impl ServerConfig {
    /// Sensible defaults for serving `store`: ephemeral loopback port,
    /// 4 workers, 1024-entry cache, 200 ms manifest polling, 10 s
    /// keep-alive idle reclaim, 10 s per-request receive deadline.
    #[must_use]
    pub fn new(store: impl Into<PathBuf>) -> Self {
        Self {
            store: store.into(),
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            load_threads: 4,
            cache_capacity: 1024,
            poll_interval: Duration::from_millis(200),
            keep_alive_idle: Duration::from_secs(10),
            request_timeout: Duration::from_secs(10),
            slow_query: None,
            defaults: QueryParams::default(),
        }
    }
}

/// Why the server failed to start or refresh.
#[derive(Debug)]
pub enum ServerError {
    /// The corpus store could not be read.
    Store(StoreError),
    /// The listener could not be bound or configured.
    Io(std::io::Error),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Store(e) => write!(f, "{e}"),
            Self::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Store(e) => Some(e),
            Self::Io(e) => Some(e),
        }
    }
}

impl From<StoreError> for ServerError {
    fn from(e: StoreError) -> Self {
        Self::Store(e)
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Everything the workers and the refresher share.
struct Ctx {
    store: PathBuf,
    load_threads: usize,
    defaults: QueryParams,
    cell: SnapshotCell,
    cache: QueryCache,
    /// Raw-body-hash → canonical fingerprint memos, so a repeated
    /// byte-identical body skips the JSON parse in front of the cache
    /// (the parse dominates the warm path on large queries). Both memos
    /// also carry the request's trace flag (the hit path never parses,
    /// but must still know whether to splice a span tree in); the batch
    /// memo additionally carries the query count the hit path accounts.
    memo_query: ParseMemo<(u128, bool)>,
    memo_batch: ParseMemo<(u128, u64, bool)>,
    slow_query: Option<Duration>,
    poll_interval: Duration,
    /// `/corpus` body cached per served generation, so polling
    /// dashboards don't re-stat the store (manifest + every delta
    /// shard) from a worker thread on each hit. Entries also expire
    /// after `poll_interval`: the body embeds on-disk store stats, and
    /// a generation-only key would freeze them for as long as a stuck
    /// refresher pins the served generation — hiding exactly the
    /// disk-vs-served divergence a dashboard needs to see.
    corpus_info: Mutex<Option<(u64, Instant, Arc<str>)>>,
    stats: ServerStats,
    shutdown: AtomicBool,
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] detaches the threads (they exit with the
/// process); call `shutdown` for a deterministic, graceful stop.
pub struct ServerHandle {
    addr: SocketAddr,
    ctx: Arc<Ctx>,
    workers: Vec<std::thread::JoinHandle<()>>,
    refresher: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when 0 was requested).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The store generation currently being served.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.ctx.cell.load().generation()
    }

    /// Live sketches in the served snapshot.
    #[must_use]
    pub fn sketches(&self) -> usize {
        self.ctx.cell.load().index().len()
    }

    /// Live server counters.
    #[must_use]
    pub fn stats(&self) -> &ServerStats {
        &self.ctx.stats
    }

    /// Graceful shutdown: stop accepting, let in-flight requests finish,
    /// join every worker and the refresher. Returns the final `/stats`
    /// payload.
    #[must_use = "the returned stats summary describes the server's whole life"]
    pub fn shutdown(self) -> String {
        self.ctx.shutdown.store(true, Ordering::SeqCst);
        for w in self.workers {
            let _ = w.join();
        }
        if let Some(r) = self.refresher {
            let _ = r.join();
        }
        let generation = self.ctx.cell.load().generation();
        self.ctx.stats.to_json(generation, self.ctx.cache.len())
    }
}

/// Load the store, bind the listener, and start the worker pool plus
/// the background refresher.
///
/// # Errors
///
/// [`ServerError`] when the store cannot be loaded or the address
/// cannot be bound.
pub fn start(config: ServerConfig) -> Result<ServerHandle, ServerError> {
    let snapshot = IndexSnapshot::from_store(&config.store, config.load_threads)?;
    let initial_generation = snapshot.generation();
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let ctx = Arc::new(Ctx {
        store: config.store,
        load_threads: config.load_threads,
        defaults: config.defaults,
        cell: SnapshotCell::new(snapshot),
        cache: QueryCache::new(config.cache_capacity),
        // With caching disabled the memo could never produce a hit, so
        // disable it too rather than pay its insert on every miss.
        memo_query: ParseMemo::new(cache::memo_capacity(config.cache_capacity)),
        memo_batch: ParseMemo::new(cache::memo_capacity(config.cache_capacity)),
        slow_query: config.slow_query,
        poll_interval: config.poll_interval,
        corpus_info: Mutex::new(None),
        stats: ServerStats::default(),
        shutdown: AtomicBool::new(false),
    });
    // Until the refresher's first poll, the freshest on-disk generation
    // the process has observed is the one it just loaded.
    ctx.stats
        .store_generation
        .store(initial_generation, Ordering::Relaxed);

    let limits = ConnLimits {
        keep_alive_idle: config.keep_alive_idle,
        request_timeout: config.request_timeout,
    };
    let workers = (0..config.threads.max(1))
        .map(|i| {
            let listener = listener.try_clone()?;
            let ctx = Arc::clone(&ctx);
            Ok(std::thread::Builder::new()
                .name(format!("sketch-serve-{i}"))
                .spawn(move || {
                    conn::accept_loop(
                        &listener,
                        &ctx.shutdown,
                        &ctx.stats.requests,
                        &ctx.stats.errors,
                        limits,
                        |req| route(&ctx, req),
                    );
                })
                .expect("spawning a worker thread succeeds"))
        })
        .collect::<Result<Vec<_>, std::io::Error>>()?;

    let refresher = {
        let ctx = Arc::clone(&ctx);
        let interval = config.poll_interval;
        std::thread::Builder::new()
            .name("sketch-serve-refresh".to_string())
            .spawn(move || refresher_loop(&ctx, interval))
            .expect("spawning the refresher thread succeeds")
    };

    Ok(ServerHandle {
        addr,
        ctx,
        workers,
        refresher: Some(refresher),
    })
}

fn refresher_loop(ctx: &Ctx, interval: Duration) {
    // Tick in small steps so shutdown is observed promptly even with
    // long poll intervals.
    let tick = interval.min(Duration::from_millis(50));
    let mut next_poll = Instant::now();
    while !ctx.shutdown.load(Ordering::Relaxed) {
        if Instant::now() >= next_poll {
            next_poll = Instant::now() + interval;
            // Contained like worker panics: an escaped panic here would
            // silently kill generation tracking while the server keeps
            // answering 200 from an ever-staler snapshot.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                refresh_with_generation(&ctx.cell, &ctx.store, ctx.load_threads)
            }));
            match outcome {
                Ok(Ok((outcome, store_generation))) => {
                    // Even an Unchanged poll refreshes the on-disk view,
                    // keeping the /metrics generation-lag gauge honest
                    // while a later refresh is failing.
                    ctx.stats
                        .store_generation
                        .store(store_generation, Ordering::Relaxed);
                    match outcome {
                        RefreshOutcome::Unchanged => {}
                        RefreshOutcome::Refreshed(_) => ServerStats::bump(&ctx.stats.refreshes),
                        RefreshOutcome::Rebuilt => ServerStats::bump(&ctx.stats.rebuilds),
                    }
                }
                Ok(Err(e)) => {
                    // Keep serving the old snapshot; a mutation that is
                    // mid-write will be complete by a later poll.
                    eprintln!("sketch-serve: refresh failed (will retry): {e}");
                }
                Err(_) => {
                    ServerStats::bump(&ctx.stats.errors);
                    eprintln!("sketch-serve: refresh panicked (will retry)");
                }
            }
        }
        std::thread::sleep(tick);
    }
}

/// Dispatch one request. Returns `(status, body, allow)` — `allow` is
/// the `Allow` header value, set only on 405 (RFC 9110 §15.5.6
/// requires it).
fn route(ctx: &Ctx, req: &Request) -> (u16, Body, Option<&'static str>) {
    // Probes and load balancers routinely append query parameters
    // (`/healthz?probe=1`); routing only cares about the path.
    let path = req
        .path
        .split_once('?')
        .map_or(req.path.as_str(), |(path, _query)| path);
    let (status, body) = route_path(ctx, req, path);
    let allow = (status == 405).then_some(match path {
        "/healthz" | "/stats" | "/corpus" | "/metrics" => "GET",
        _ => "POST",
    });
    (status, body, allow)
}

fn route_path(ctx: &Ctx, req: &Request, path: &str) -> (u16, Body) {
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => {
            ServerStats::bump(&ctx.stats.healthz);
            let snap = ctx.cell.load();
            (
                200,
                Body::Owned(format!(
                    "{{\"status\":\"ok\",\"generation\":{},\"sketches\":{}}}",
                    snap.generation(),
                    snap.index().len()
                )),
            )
        }
        ("GET", "/stats") => {
            ServerStats::bump(&ctx.stats.stats);
            let snap = ctx.cell.load();
            (
                200,
                Body::Owned(ctx.stats.to_json(snap.generation(), ctx.cache.len())),
            )
        }
        ("GET", "/metrics") => {
            ServerStats::bump(&ctx.stats.metrics);
            let snap = ctx.cell.load();
            (
                200,
                Body::Text(
                    metrics::render_server(
                        &ctx.stats,
                        snap.generation(),
                        snap.index().len() as u64,
                        ctx.cache.len() as u64,
                        ctx.cache.evictions(),
                    ),
                    promtext::CONTENT_TYPE,
                ),
            )
        }
        ("GET", "/corpus") => {
            ServerStats::bump(&ctx.stats.corpus);
            let snap = ctx.cell.load();
            let generation = snap.generation();
            // Poison-tolerant: the slot only ever holds a complete
            // `Some`, so state after a caught panic is still valid.
            let cached = ctx
                .corpus_info
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .clone();
            if let Some((g, at, body)) = cached {
                if g == generation && at.elapsed() < ctx.poll_interval {
                    return (200, Body::Shared(body));
                }
            }
            match sketch_store::stat_corpus(&ctx.store) {
                Ok(info) => {
                    let body: Arc<str> = Arc::from(
                        format!(
                            "{{\"served_generation\":{},\"serving_sketches\":{},\
                             \"distinct_keys\":{},\"store\":{}}}",
                            generation,
                            snap.index().len(),
                            snap.index().distinct_keys(),
                            info.to_json()
                        )
                        .as_str(),
                    );
                    *ctx.corpus_info
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) =
                        Some((generation, Instant::now(), Arc::clone(&body)));
                    (200, Body::Shared(body))
                }
                // Transient: a compact can briefly race the stat read.
                Err(e) => (503, Body::Owned(api::render_error(&e.to_string()))),
            }
        }
        ("POST", "/query") => {
            ServerStats::bump(&ctx.stats.query);
            let t0 = Instant::now();
            let response = handle_query(ctx, &req.body);
            // Only answered queries feed the histogram — microsecond
            // 400 rejections would otherwise drag p50/p95 down and
            // mask real served-query latency.
            if response.0 < 300 {
                ctx.stats
                    .latency
                    .record_us(t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
            }
            response
        }
        ("POST", "/query_batch") => {
            ServerStats::bump(&ctx.stats.query_batch);
            let t0 = Instant::now();
            let response = handle_batch(ctx, &req.body);
            if response.0 < 300 {
                ctx.stats
                    .latency
                    .record_us(t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
            }
            response
        }
        // The internal scatter-gather endpoints a coordinator fans out
        // to. They answer from the same snapshot as `/query` but ship
        // bit-exact candidate rows / reports instead of ranked JSON,
        // and are deliberately uncached — the coordinator caches merged
        // responses under the shard-generation vector.
        ("POST", "/shard_query") => {
            ServerStats::bump(&ctx.stats.shard);
            handle_shard_query(ctx, &req.body)
        }
        ("POST", "/shard_query_batch") => {
            ServerStats::bump(&ctx.stats.shard);
            handle_shard_batch(ctx, &req.body)
        }
        ("POST", "/shard_reports") => {
            ServerStats::bump(&ctx.stats.shard);
            handle_shard_reports(ctx, &req.body)
        }
        // Any other method on an endpoint that exists (HEAD, PUT,
        // OPTIONS, …) is 405, not "no such endpoint".
        (
            _,
            "/healthz" | "/stats" | "/corpus" | "/metrics" | "/query" | "/query_batch"
            | "/shard_query" | "/shard_query_batch" | "/shard_reports",
        ) => (405, Body::Owned(api::render_error("method not allowed"))),
        _ => (404, Body::Owned(api::render_error("no such endpoint"))),
    }
}

/// Close out `/query` / `/query_batch`: slow-query logging and the
/// trace splice, both no-ops unless this request enabled tracing.
fn finish(ctx: &Ctx, trace: &Trace, want_trace: bool, status: u16, body: Body) -> (u16, Body) {
    conn::finish_traced(
        &ctx.stats,
        ctx.slow_query,
        "sketch-serve",
        trace,
        want_trace,
        status,
        body,
    )
}

fn handle_query(ctx: &Ctx, body: &[u8]) -> (u16, Body) {
    let raw = api::raw_fingerprint(body);
    let snap = ctx.cell.load();
    let mut trace = Trace::new(ctx.slow_query.is_some());
    // A memo hit proves these exact bytes parsed to this canonical
    // fingerprint (and trace flag) before — skip the parse when the
    // answer is cached.
    if let Some((fp, want_trace)) = ctx.memo_query.get(raw) {
        if want_trace && !trace.is_enabled() {
            trace = Trace::enabled();
        }
        let guard = trace.begin("cache_probe");
        let cached = ctx.cache.get(&(fp, snap.generation()));
        trace.end(guard);
        if let Some(cached) = cached {
            ServerStats::bump(&ctx.stats.cache_hits);
            return finish(ctx, &trace, want_trace, 200, Body::Shared(cached));
        }
    } else if !trace.is_enabled() && api::wants_trace_hint(body) {
        trace = Trace::enabled();
    }
    let guard = trace.begin("parse");
    let parsed = QueryRequest::parse(body, &ctx.defaults);
    trace.end(guard);
    let req = match parsed {
        Ok(req) => req,
        Err(msg) => {
            return finish(
                ctx,
                &trace,
                false,
                400,
                Body::Owned(api::render_error(&msg)),
            )
        }
    };
    if req.trace && !trace.is_enabled() {
        trace = Trace::enabled();
    }
    let fp = req.fingerprint();
    ctx.memo_query.put(raw, (fp, req.trace));
    let key = (fp, snap.generation());
    let guard = trace.begin("cache_probe");
    let cached = ctx.cache.get(&key);
    trace.end(guard);
    if let Some(cached) = cached {
        ServerStats::bump(&ctx.stats.cache_hits);
        return finish(ctx, &trace, req.trace, 200, Body::Shared(cached));
    }
    ServerStats::bump(&ctx.stats.cache_misses);
    let guard = trace.begin("build_query");
    let sketch = snap.build_query(&req.body.id, req.body.keys, req.body.values);
    trace.end(guard);
    let guard = trace.begin("execute");
    let (results, plan) = engine::top_k_with_reports_traced(
        snap.index(),
        &sketch,
        &req.params.to_options(),
        req.params.alpha,
        &mut trace,
    );
    trace.end(guard);
    ctx.stats.absorb_plan(&plan);
    let guard = trace.begin("render");
    let rendered = api::render_query_response(snap.generation(), &req.params, &results);
    trace.end(guard);
    // The cache stores only the untraced body: a traced request and its
    // untraced twin must read back byte-identical result payloads.
    ctx.cache.put(key, Arc::from(rendered.as_str()));
    finish(ctx, &trace, req.trace, 200, Body::Owned(rendered))
}

fn handle_batch(ctx: &Ctx, body: &[u8]) -> (u16, Body) {
    let raw = api::raw_fingerprint(body);
    let snap = ctx.cell.load();
    let mut trace = Trace::new(ctx.slow_query.is_some());
    if let Some((fp, batched, want_trace)) = ctx.memo_batch.get(raw) {
        if want_trace && !trace.is_enabled() {
            trace = Trace::enabled();
        }
        let guard = trace.begin("cache_probe");
        let cached = ctx.cache.get(&(fp, snap.generation()));
        trace.end(guard);
        if let Some(cached) = cached {
            ServerStats::bump(&ctx.stats.cache_hits);
            ctx.stats
                .batched_queries
                .fetch_add(batched, Ordering::Relaxed);
            return finish(ctx, &trace, want_trace, 200, Body::Shared(cached));
        }
    } else if !trace.is_enabled() && api::wants_trace_hint(body) {
        trace = Trace::enabled();
    }
    let guard = trace.begin("parse");
    let parsed = BatchRequest::parse(body, &ctx.defaults);
    trace.end(guard);
    let req = match parsed {
        Ok(req) => req,
        Err(msg) => {
            return finish(
                ctx,
                &trace,
                false,
                400,
                Body::Owned(api::render_error(&msg)),
            )
        }
    };
    if req.trace && !trace.is_enabled() {
        trace = Trace::enabled();
    }
    let fp = req.fingerprint();
    ctx.memo_batch
        .put(raw, (fp, req.queries.len() as u64, req.trace));
    let key = (fp, snap.generation());
    let guard = trace.begin("cache_probe");
    let cached = ctx.cache.get(&key);
    trace.end(guard);
    if let Some(cached) = cached {
        ServerStats::bump(&ctx.stats.cache_hits);
        ctx.stats
            .batched_queries
            .fetch_add(req.queries.len() as u64, Ordering::Relaxed);
        return finish(ctx, &trace, req.trace, 200, Body::Shared(cached));
    }
    ServerStats::bump(&ctx.stats.cache_misses);
    ctx.stats
        .batched_queries
        .fetch_add(req.queries.len() as u64, Ordering::Relaxed);
    let guard = trace.begin("build_query");
    let sketches: Vec<_> = req
        .queries
        .into_iter()
        .map(|q| snap.build_query(&q.id, q.keys, q.values))
        .collect();
    trace.end(guard);
    let (answers, plan) = engine::top_k_batch_with_reports_traced(
        snap.index(),
        &sketches,
        &req.params.to_options(),
        req.params.alpha,
        &mut trace,
    );
    ctx.stats.absorb_plan(&plan);
    let guard = trace.begin("render");
    let rendered = api::render_batch_response(snap.generation(), &req.params, &answers);
    trace.end(guard);
    ctx.cache.put(key, Arc::from(rendered.as_str()));
    finish(ctx, &trace, req.trace, 200, Body::Owned(rendered))
}

/// `POST /shard_query`: this worker's half of a scattered `/query` —
/// the shard-local candidate rows (estimated exhaustively; see
/// [`engine::shard_candidates`]), bit-exact on the wire.
fn handle_shard_query(ctx: &Ctx, body: &[u8]) -> (u16, Body) {
    let req = match QueryRequest::parse(body, &ctx.defaults) {
        Ok(req) => req,
        Err(msg) => return (400, Body::Owned(api::render_error(&msg))),
    };
    let snap = ctx.cell.load();
    let sketch = snap.build_query(&req.body.id, req.body.keys, req.body.values);
    let rows = engine::shard_candidates(snap.index(), &sketch, &req.params.to_options());
    (
        200,
        Body::Owned(api::render_shard_query_response(
            snap.generation(),
            snap.index().len(),
            &rows,
        )),
    )
}

/// `POST /shard_query_batch`: the scattered `/query_batch` half — one
/// candidate-row list per query, all from one snapshot.
fn handle_shard_batch(ctx: &Ctx, body: &[u8]) -> (u16, Body) {
    let req = match BatchRequest::parse(body, &ctx.defaults) {
        Ok(req) => req,
        Err(msg) => return (400, Body::Owned(api::render_error(&msg))),
    };
    let snap = ctx.cell.load();
    let opts = req.params.to_options();
    let queries: Vec<_> = req
        .queries
        .into_iter()
        .map(|q| {
            let sketch = snap.build_query(&q.id, q.keys, q.values);
            engine::shard_candidates(snap.index(), &sketch, &opts)
        })
        .collect();
    (
        200,
        Body::Owned(api::render_shard_batch_response(
            snap.generation(),
            snap.index().len(),
            &queries,
        )),
    )
}

/// `POST /shard_reports`: full uncertainty reports for the shard-local
/// docs the coordinator's merge actually shipped — the fetch that
/// early termination avoids for everything else.
fn handle_shard_reports(ctx: &Ctx, body: &[u8]) -> (u16, Body) {
    let req = match QueryRequest::parse(body, &ctx.defaults) {
        Ok(req) => req,
        Err(msg) => return (400, Body::Owned(api::render_error(&msg))),
    };
    let docs = match api::extract_docs(body) {
        Ok(docs) => docs,
        Err(msg) => return (400, Body::Owned(api::render_error(&msg))),
    };
    let snap = ctx.cell.load();
    let opts = req.params.to_options();
    let sketch = snap.build_query(&req.body.id, req.body.keys, req.body.values);
    let mut sample = correlation_sketches::JoinSample::default();
    let reports: Vec<_> = docs
        .into_iter()
        .map(|doc| {
            engine::report_for_doc(
                snap.index(),
                &sketch,
                doc,
                &opts,
                req.params.alpha,
                &mut sample,
            )
        })
        .collect();
    (
        200,
        Body::Owned(api::render_shard_reports_response(
            snap.generation(),
            &reports,
        )),
    )
}
