//! Snapshot reads: queries run against an immutable, `Arc`-shared
//! [`IndexSnapshot`] and therefore never take a lock or observe a
//! half-applied mutation.
//!
//! The [`SnapshotCell`] holds the current snapshot behind an `RwLock`
//! that is only ever held long enough to clone or replace the `Arc` —
//! nanoseconds, never across a query. The background refresher builds
//! the *next* snapshot privately (cloning the current index and applying
//! only the new delta generations, or rebuilding from the store after a
//! compaction made the deltas unavailable) and then swaps it in whole.
//! A query that started on the old snapshot finishes on the old
//! snapshot; the old index is freed when its last in-flight query
//! drops its `Arc`.

use std::path::Path;
use std::sync::{Arc, RwLock};

use correlation_sketches::{CorrelationSketch, SketchBuilder, SketchConfig};
use sketch_index::SketchIndex;
use sketch_store::{Manifest, SketchError, StoreError};
use sketch_table::ColumnPair;

/// An immutable view of the corpus at one store generation: the inverted
/// index plus the sketch configuration queries must be built with to be
/// joinable against it.
#[derive(Debug)]
pub struct IndexSnapshot {
    index: SketchIndex,
    config: Option<SketchConfig>,
}

impl IndexSnapshot {
    /// Wrap an index, deriving the corpus sketch configuration from its
    /// first live sketch (`None` for an empty corpus — queries against
    /// it answer empty regardless of configuration).
    #[must_use]
    pub fn new(index: SketchIndex) -> Self {
        let config = index.get(0).map(|s| SketchConfig {
            strategy: s.strategy(),
            hasher: s.hasher(),
            aggregation: s.aggregation(),
        });
        Self { index, config }
    }

    /// Load a snapshot from a packed corpus store.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on unreadable or corrupt stores.
    pub fn from_store(dir: &Path, threads: usize) -> Result<Self, StoreError> {
        Ok(Self::new(SketchIndex::from_store(dir, threads)?))
    }

    /// The index this snapshot serves.
    #[must_use]
    pub fn index(&self) -> &SketchIndex {
        &self.index
    }

    /// The store generation this snapshot reflects.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.index.generation()
    }

    /// Build a query sketch over `keys`/`values` with the corpus
    /// configuration, so it is joinable against every indexed sketch.
    /// `id` becomes the sketch's table name.
    #[must_use]
    pub fn build_query(&self, id: &str, keys: Vec<String>, values: Vec<f64>) -> CorrelationSketch {
        let config = self.config.unwrap_or_else(|| SketchConfig::with_size(256));
        SketchBuilder::new(config).build(&ColumnPair::new(id, "k", "v", keys, values))
    }
}

/// The swappable slot the workers read snapshots from.
pub struct SnapshotCell {
    slot: RwLock<Arc<IndexSnapshot>>,
}

impl SnapshotCell {
    /// A cell serving `snapshot`.
    #[must_use]
    pub fn new(snapshot: IndexSnapshot) -> Self {
        Self {
            slot: RwLock::new(Arc::new(snapshot)),
        }
    }

    /// The current snapshot. The internal lock is held only for the
    /// `Arc` clone; the query itself runs lock-free on the returned
    /// snapshot.
    #[must_use]
    pub fn load(&self) -> Arc<IndexSnapshot> {
        Arc::clone(&self.slot.read().expect("snapshot lock is never poisoned"))
    }

    /// Atomically replace the served snapshot.
    pub fn store(&self, snapshot: Arc<IndexSnapshot>) {
        *self.slot.write().expect("snapshot lock is never poisoned") = snapshot;
    }
}

/// What [`refresh`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshOutcome {
    /// The store manifest still names the served generation.
    Unchanged,
    /// Applied this many new delta records incrementally.
    Refreshed(usize),
    /// The store was compacted past the served generation; the index was
    /// rebuilt from the store.
    Rebuilt,
}

/// Bring `cell` up to date with the store: cheap manifest poll first,
/// then an incremental `refresh_from_store` on a private clone of the
/// index, falling back to a full rebuild when the store was compacted
/// past the served generation (`StaleGeneration`). The new snapshot is
/// swapped in atomically; concurrent readers are never blocked.
///
/// # Errors
///
/// [`StoreError`] when the store cannot be read; the served snapshot is
/// left unchanged (the caller retries on its next poll).
pub fn refresh(
    cell: &SnapshotCell,
    dir: &Path,
    threads: usize,
) -> Result<RefreshOutcome, StoreError> {
    refresh_with_generation(cell, dir, threads).map(|(outcome, _)| outcome)
}

/// [`refresh`], additionally reporting the store's *on-disk* manifest
/// generation — what `/metrics` exposes as the refresher's view of the
/// store, so generation lag (disk ahead of served) is observable even
/// while a refresh is failing.
///
/// # Errors
///
/// As [`refresh`].
pub fn refresh_with_generation(
    cell: &SnapshotCell,
    dir: &Path,
    threads: usize,
) -> Result<(RefreshOutcome, u64), StoreError> {
    let current = cell.load();
    let manifest = Manifest::load(dir)?;
    let store_generation = manifest.generation;
    if manifest.generation == current.generation() {
        return Ok((RefreshOutcome::Unchanged, store_generation));
    }
    // Clone-and-catch-up off the hot path; readers keep serving the old
    // snapshot until the swap below.
    let mut index = current.index.clone();
    match index.refresh_from_store(dir, threads) {
        Ok(applied) => {
            cell.store(Arc::new(IndexSnapshot::new(index)));
            Ok((RefreshOutcome::Refreshed(applied), store_generation))
        }
        Err(e)
            if matches!(
                e.as_sketch_error(),
                Some(SketchError::StaleGeneration { .. })
            ) =>
        {
            let rebuilt = IndexSnapshot::from_store(dir, threads)?;
            cell.store(Arc::new(rebuilt));
            Ok((RefreshOutcome::Rebuilt, store_generation))
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketch_index::{engine, QueryOptions};
    use sketch_store::PackOptions;

    fn sketch(table: &str, range: std::ops::Range<usize>) -> CorrelationSketch {
        SketchBuilder::new(SketchConfig::with_size(64)).build(&ColumnPair::new(
            table,
            "k",
            "v",
            range.clone().map(|i| format!("key-{i}")).collect(),
            range.map(|i| (i as f64 * 0.13).sin()).collect(),
        ))
    }

    struct TempDir(std::path::PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir()
                .join(format!("sketch-server-snap-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            Self(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn pack(dir: &TempDir, n: usize) {
        let sketches: Vec<_> = (0..n).map(|t| sketch(&format!("t{t}"), 0..50)).collect();
        sketch_store::pack_corpus(
            &dir.0,
            &sketches,
            &PackOptions {
                shards: 2,
                threads: 1,
            },
        )
        .unwrap();
    }

    #[test]
    fn refresh_applies_deltas_and_rebuilds_after_compact() {
        let dir = TempDir::new("refresh");
        pack(&dir, 4);
        let cell = SnapshotCell::new(IndexSnapshot::from_store(&dir.0, 1).unwrap());
        assert_eq!(cell.load().generation(), 0);
        assert_eq!(
            refresh(&cell, &dir.0, 1).unwrap(),
            RefreshOutcome::Unchanged
        );

        sketch_store::append_corpus(&dir.0, &[sketch("extra", 0..50)], 1).unwrap();
        assert_eq!(
            refresh(&cell, &dir.0, 1).unwrap(),
            RefreshOutcome::Refreshed(1)
        );
        assert_eq!(cell.load().generation(), 1);
        assert_eq!(cell.load().index().len(), 5);

        sketch_store::remove_from_corpus(&dir.0, &["t0/k/v".to_string()], 1).unwrap();
        assert_eq!(
            refresh(&cell, &dir.0, 1).unwrap(),
            RefreshOutcome::Refreshed(1)
        );
        assert_eq!(cell.load().index().len(), 4);

        sketch_store::compact_corpus(
            &dir.0,
            &PackOptions {
                shards: 2,
                threads: 1,
            },
        )
        .unwrap();
        assert_eq!(refresh(&cell, &dir.0, 1).unwrap(), RefreshOutcome::Rebuilt);
        assert_eq!(cell.load().generation(), 3);

        // Post-refresh snapshots answer exactly like a fresh load.
        let fresh = IndexSnapshot::from_store(&dir.0, 1).unwrap();
        let q = fresh.build_query(
            "q",
            (0..50).map(|i| format!("key-{i}")).collect(),
            (0..50).map(|i| i as f64).collect(),
        );
        let opts = QueryOptions::default();
        assert_eq!(
            engine::top_k_with_reports(cell.load().index(), &q, &opts, 0.05),
            engine::top_k_with_reports(fresh.index(), &q, &opts, 0.05)
        );
    }

    #[test]
    fn old_snapshots_stay_valid_across_swaps() {
        let dir = TempDir::new("pin");
        pack(&dir, 3);
        let cell = SnapshotCell::new(IndexSnapshot::from_store(&dir.0, 1).unwrap());
        let pinned = cell.load();
        let before = pinned.index().len();

        sketch_store::append_corpus(&dir.0, &[sketch("late", 0..50)], 1).unwrap();
        refresh(&cell, &dir.0, 1).unwrap();

        // The pinned (pre-swap) snapshot is untouched by the refresh.
        assert_eq!(pinned.index().len(), before);
        assert_eq!(pinned.generation(), 0);
        assert_eq!(cell.load().index().len(), before + 1);
    }

    #[test]
    fn empty_corpus_snapshot_answers_empty() {
        let dir = TempDir::new("empty");
        sketch_store::pack_corpus(&dir.0, &[], &PackOptions::default()).unwrap();
        let snap = IndexSnapshot::from_store(&dir.0, 1).unwrap();
        let q = snap.build_query("q", vec!["a".into()], vec![1.0]);
        assert!(
            engine::top_k_with_reports(snap.index(), &q, &QueryOptions::default(), 0.05).is_empty()
        );
    }
}
