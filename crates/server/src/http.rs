//! A hand-rolled HTTP/1.1 subset: exactly what the query service needs
//! (request line + headers + `Content-Length` bodies, keep-alive,
//! pipelining-tolerant buffering) and nothing it doesn't (no chunked
//! encoding, no TLS, no compression).
//!
//! Reading is built around a caller-owned byte buffer that persists
//! across requests on a connection: bytes of a second pipelined request
//! that arrive with the first are kept, not dropped. Streams are
//! expected to have a short read timeout; every timeout tick checks the
//! caller's shutdown flag (so a stalled client can never pin a worker
//! past shutdown), and in the idle keep-alive state it additionally
//! checks the caller's idle deadline (so parked connections hand their
//! worker back to the accept loop instead of holding it forever).

use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Upper bound on the request line + headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, … (uppercased by the wire format already).
    pub method: String,
    /// Request target, e.g. `/query` (query strings are not split off).
    pub path: String,
    /// Raw request body (`Content-Length` bytes).
    pub body: Vec<u8>,
    /// Whether the connection should be kept open after responding.
    pub keep_alive: bool,
}

/// Why no request could be read.
#[derive(Debug)]
pub enum RecvError {
    /// The peer closed the connection cleanly between requests, or sat
    /// idle past the caller's deadline and was reclaimed.
    Closed,
    /// The server's shutdown flag was raised — while idle between
    /// requests, or on a timeout tick of a stalled partial request.
    Shutdown,
    /// The bytes on the wire are not a well-formed request; the string
    /// says why (safe to echo in a 400 response).
    Malformed(String),
    /// Head or body exceeded [`MAX_HEAD_BYTES`] / [`MAX_BODY_BYTES`].
    TooLarge,
    /// A non-timeout I/O failure on the stream.
    Io(std::io::Error),
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Read one request from `stream` into/out of `buf` (which carries
/// pipelined leftovers between calls).
///
/// `idle_deadline` bounds the *idle* wait only (no request bytes yet):
/// past it the connection is reclaimed as a clean [`RecvError::Closed`]
/// so the worker can go back to accepting. Once request bytes have
/// arrived there is no deadline — but every timeout tick still honors
/// `shutdown`, so a stalled client cannot pin a worker past shutdown.
///
/// # Errors
///
/// See [`RecvError`]; `Closed` and `Shutdown` are the clean exits.
pub fn read_request(
    stream: &mut impl Read,
    buf: &mut Vec<u8>,
    shutdown: &AtomicBool,
    idle_deadline: Option<Instant>,
) -> Result<Request, RecvError> {
    let mut chunk = [0u8; 4096];
    // Phase 1: accumulate until the head is complete.
    let head_end = loop {
        if let Some(pos) = find_head_end(buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(RecvError::TooLarge);
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() {
                    Err(RecvError::Closed)
                } else {
                    Err(RecvError::Malformed("connection closed mid-request".into()))
                };
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => {
                if shutdown.load(Ordering::Relaxed) {
                    return Err(RecvError::Shutdown);
                }
                if buf.is_empty() && idle_deadline.is_some_and(|d| Instant::now() >= d) {
                    return Err(RecvError::Closed);
                }
            }
            Err(e) => return Err(RecvError::Io(e)),
        }
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| RecvError::Malformed("non-utf8 request head".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| RecvError::Malformed("empty request line".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| RecvError::Malformed("request line has no target".into()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| RecvError::Malformed("request line has no version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(RecvError::Malformed(format!(
            "unsupported version '{version}'"
        )));
    }

    let mut content_length = 0usize;
    // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close.
    let mut keep_alive = version == "HTTP/1.1";
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| RecvError::Malformed(format!("bad content-length '{value}'")))?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(RecvError::Malformed(
                "chunked bodies are not supported".into(),
            ));
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(RecvError::TooLarge);
    }

    // Phase 2: the body.
    let body_start = head_end + 4;
    let total = body_start + content_length;
    while buf.len() < total {
        match stream.read(&mut chunk) {
            Ok(0) => return Err(RecvError::Malformed("connection closed mid-body".into())),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => {
                if shutdown.load(Ordering::Relaxed) {
                    return Err(RecvError::Shutdown);
                }
            }
            Err(e) => return Err(RecvError::Io(e)),
        }
    }

    let body = buf[body_start..total].to_vec();
    // Keep pipelined leftovers for the next call.
    buf.drain(..total);
    Ok(Request {
        method,
        path,
        body,
        keep_alive,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Serialize and send one response. The body is always sent with an
/// explicit `Content-Length` (no chunking), content type
/// `application/json`.
///
/// # Errors
///
/// Propagates the stream's write error.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let mut out = Vec::with_capacity(128 + body.len());
    out.extend_from_slice(format!("HTTP/1.1 {status} {reason}\r\n").as_bytes());
    out.extend_from_slice(b"Content-Type: application/json\r\n");
    out.extend_from_slice(format!("Content-Length: {}\r\n", body.len()).as_bytes());
    out.extend_from_slice(if keep_alive {
        b"Connection: keep-alive\r\n\r\n"
    } else {
        b"Connection: close\r\n\r\n"
    });
    out.extend_from_slice(body.as_bytes());
    stream.write_all(&out)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A `Read` over a script of chunks; an empty chunk injects a
    /// timeout error (like a read timeout on a real socket).
    struct Script {
        chunks: Vec<Vec<u8>>,
    }

    impl Read for Script {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if self.chunks.is_empty() {
                return Ok(0);
            }
            let mut chunk = self.chunks.remove(0);
            if chunk.is_empty() {
                return Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "tick"));
            }
            let n = chunk.len().min(out.len());
            out[..n].copy_from_slice(&chunk[..n]);
            if n < chunk.len() {
                chunk.drain(..n);
                self.chunks.insert(0, chunk);
            }
            Ok(n)
        }
    }

    fn read_one(wire: &[Vec<u8>], buf: &mut Vec<u8>) -> Result<Request, RecvError> {
        let mut s = Script {
            chunks: wire.to_vec(),
        };
        read_request(&mut s, buf, &AtomicBool::new(false), None)
    }

    #[test]
    fn parses_post_with_body_split_across_reads() {
        let mut buf = Vec::new();
        let req = read_one(
            &[
                b"POST /query HTTP/1.1\r\nContent-Le".to_vec(),
                b"ngth: 11\r\n\r\nhello".to_vec(),
                Vec::new(), // a timeout mid-body just keeps waiting
                b" world".to_vec(),
            ],
            &mut buf,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        assert_eq!(req.body, b"hello world");
        assert!(req.keep_alive);
        assert!(buf.is_empty());
    }

    #[test]
    fn pipelined_requests_survive_in_the_buffer() {
        let mut buf = Vec::new();
        let wire = b"GET /healthz HTTP/1.1\r\n\r\nGET /stats HTTP/1.1\r\n\r\n".to_vec();
        let first = read_one(&[wire], &mut buf).unwrap();
        assert_eq!(first.path, "/healthz");
        // Second request is already buffered; no further reads needed.
        let second = read_one(&[], &mut buf).unwrap();
        assert_eq!(second.path, "/stats");
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let mut buf = Vec::new();
        let req = read_one(
            &[b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n".to_vec()],
            &mut buf,
        )
        .unwrap();
        assert!(!req.keep_alive);
        let req = read_one(&[b"GET / HTTP/1.0\r\n\r\n".to_vec()], &mut buf).unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn clean_close_vs_truncation() {
        let mut buf = Vec::new();
        assert!(matches!(read_one(&[], &mut buf), Err(RecvError::Closed)));
        assert!(matches!(
            read_one(&[b"GET / HT".to_vec()], &mut buf),
            Err(RecvError::Malformed(_))
        ));
    }

    #[test]
    fn shutdown_flag_ends_idle_and_stalled_connections() {
        let shutdown = AtomicBool::new(true);
        // Idle (empty buffer) + timeout -> Shutdown.
        let mut s = Script {
            chunks: vec![Vec::new()],
        };
        let mut buf = Vec::new();
        assert!(matches!(
            read_request(&mut s, &mut buf, &shutdown, None),
            Err(RecvError::Shutdown)
        ));
        // A client stalled mid-head is abandoned on the next timeout
        // tick — a worker must never be pinned past shutdown.
        buf.clear();
        let mut s = Script {
            chunks: vec![b"GET / HTTP/1.1".to_vec(), Vec::new(), b"\r\n\r\n".to_vec()],
        };
        assert!(matches!(
            read_request(&mut s, &mut buf, &shutdown, None),
            Err(RecvError::Shutdown)
        ));
        // Same for a client stalled mid-body.
        buf.clear();
        let mut s = Script {
            chunks: vec![
                b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nab".to_vec(),
                Vec::new(),
                b"cde".to_vec(),
            ],
        };
        assert!(matches!(
            read_request(&mut s, &mut buf, &shutdown, None),
            Err(RecvError::Shutdown)
        ));
        // Without shutdown, the same stalls just keep waiting and the
        // requests complete.
        let no_shutdown = AtomicBool::new(false);
        buf.clear();
        let mut s = Script {
            chunks: vec![
                b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nab".to_vec(),
                Vec::new(),
                b"cde".to_vec(),
            ],
        };
        let req = read_request(&mut s, &mut buf, &no_shutdown, None).unwrap();
        assert_eq!(req.body, b"abcde");
    }

    #[test]
    fn idle_deadline_reclaims_parked_connections() {
        let shutdown = AtomicBool::new(false);
        let expired = Some(Instant::now() - std::time::Duration::from_millis(1));
        // Idle past the deadline: reclaimed as a clean close.
        let mut s = Script {
            chunks: vec![Vec::new()],
        };
        let mut buf = Vec::new();
        assert!(matches!(
            read_request(&mut s, &mut buf, &shutdown, expired),
            Err(RecvError::Closed)
        ));
        // Once request bytes exist, the idle deadline no longer applies.
        buf.clear();
        let mut s = Script {
            chunks: vec![b"GET / HTTP/1.1".to_vec(), Vec::new(), b"\r\n\r\n".to_vec()],
        };
        assert!(read_request(&mut s, &mut buf, &shutdown, expired).is_ok());
    }

    #[test]
    fn oversized_heads_and_bodies_are_rejected() {
        let mut buf = Vec::new();
        let huge = vec![b'a'; MAX_HEAD_BYTES + 8];
        assert!(matches!(
            read_one(&[huge], &mut buf),
            Err(RecvError::TooLarge)
        ));
        buf.clear();
        let req = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", u64::MAX);
        assert!(matches!(
            read_one(&[req.into_bytes()], &mut buf),
            Err(RecvError::Malformed(_) | RecvError::TooLarge)
        ));
    }

    #[test]
    fn malformed_request_lines_are_typed() {
        for wire in [
            "\r\n\r\n",
            "GET\r\n\r\n",
            "GET /\r\n\r\n",
            "GET / SPDY/9\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ] {
            let mut buf = Vec::new();
            assert!(
                matches!(
                    read_one(&[wire.as_bytes().to_vec()], &mut buf),
                    Err(RecvError::Malformed(_))
                ),
                "{wire:?}"
            );
        }
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
        let mut out = Vec::new();
        write_response(&mut out, 404, "{}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("Connection: close\r\n"));
    }
}
