//! A hand-rolled HTTP/1.1 subset: exactly what the query service needs
//! (request line + headers + `Content-Length` bodies, keep-alive,
//! pipelining-tolerant buffering) and nothing it doesn't (no chunked
//! encoding, no TLS, no compression).
//!
//! Reading is built around a caller-owned byte buffer that persists
//! across requests on a connection: bytes of a second pipelined request
//! that arrive with the first are kept, not dropped. Streams are
//! expected to have a short read timeout; every timeout tick checks the
//! caller's shutdown flag (so a stalled client can never pin a worker
//! past shutdown). In the idle keep-alive state it additionally checks
//! the caller's idle deadline (so parked connections hand their worker
//! back to the accept loop), and once request bytes exist a per-request
//! deadline bounds the head/body phases (so a slow-loris client that
//! trickles a partial request cannot pin a worker either).

use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Upper bound on the request line + headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, … (uppercased by the wire format already).
    pub method: String,
    /// Request target, e.g. `/query`. Query strings are not split off
    /// here; the router strips `?...` before matching.
    pub path: String,
    /// Raw request body (`Content-Length` bytes).
    pub body: Vec<u8>,
    /// Whether the connection should be kept open after responding.
    pub keep_alive: bool,
}

/// Why no request could be read.
#[derive(Debug)]
pub enum RecvError {
    /// The peer closed the connection cleanly between requests, or sat
    /// idle past the caller's deadline and was reclaimed.
    Closed,
    /// The server's shutdown flag was raised — while idle between
    /// requests, or on a timeout tick of a stalled partial request.
    Shutdown,
    /// The bytes on the wire are not a well-formed request; the string
    /// says why (safe to echo in a 400 response).
    Malformed(String),
    /// Request bytes stopped arriving in full (stalled or trickled)
    /// before the caller's per-request deadline; respond 408.
    TimedOut,
    /// Head or body exceeded [`MAX_HEAD_BYTES`] / [`MAX_BODY_BYTES`].
    TooLarge,
    /// A non-timeout I/O failure on the stream.
    Io(std::io::Error),
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn stalled_past(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

/// The minimum transfer rate a request must sustain once the deadline
/// is armed: every received byte credits the deadline at this rate, so
/// the timeout bounds *lack of progress* rather than total duration. A
/// legitimate client pushing a large body over a modest link keeps
/// earning time (worst case `timeout + MAX_BODY_BYTES / rate`, ~4 min),
/// while a slow-loris trickle earns microseconds per byte and still
/// dies at ~`timeout`.
const MIN_PROGRESS_BYTES_PER_SEC: u64 = 64 * 1024;

fn credit_progress(deadline: &mut Option<Instant>, bytes: usize) {
    if let Some(d) = deadline {
        let bytes = u64::try_from(bytes).unwrap_or(u64::MAX);
        let ns = bytes.saturating_mul(1_000_000_000 / MIN_PROGRESS_BYTES_PER_SEC);
        *d += Duration::from_nanos(ns);
    }
}

/// Read one request from `stream` into/out of `buf` (which carries
/// pipelined leftovers between calls).
///
/// `idle_deadline` bounds the *idle* wait only (no request bytes yet):
/// past it the connection is reclaimed as a clean [`RecvError::Closed`]
/// so the worker can go back to accepting. Once request bytes have
/// arrived, `request_timeout` bounds the remaining head/body phases
/// instead: a client that stops making progress — stalled outright or
/// trickling bytes below [`MIN_PROGRESS_BYTES_PER_SEC`] — gets a
/// [`RecvError::TimedOut`] rather than pinning the worker (a
/// slow-loris defense), while received bytes credit the deadline so a
/// large body on a modest link is never rejected for duration alone.
/// Every timeout tick additionally honors `shutdown`.
///
/// # Errors
///
/// See [`RecvError`]; `Closed` and `Shutdown` are the clean exits.
pub fn read_request(
    stream: &mut impl Read,
    buf: &mut Vec<u8>,
    shutdown: &AtomicBool,
    idle_deadline: Option<Instant>,
    request_timeout: Option<Duration>,
) -> Result<Request, RecvError> {
    let mut chunk = [0u8; 4096];
    // Armed when the first request byte arrives (or immediately, for a
    // request already started by pipelined leftovers).
    let mut request_deadline: Option<Instant> = if buf.is_empty() {
        None
    } else {
        request_timeout.map(|t| Instant::now() + t)
    };
    // Phase 1: accumulate until the head is complete. The deadline is
    // checked whenever the request is still incomplete — before every
    // read, not just on timeout ticks — so a client trickling bytes
    // faster than the socket read timeout cannot sidestep it; a request
    // that completes is never rejected.
    let head_end = loop {
        if let Some(pos) = find_head_end(buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(RecvError::TooLarge);
        }
        if stalled_past(request_deadline) {
            return Err(RecvError::TimedOut);
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() {
                    Err(RecvError::Closed)
                } else {
                    Err(RecvError::Malformed("connection closed mid-request".into()))
                };
            }
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if request_deadline.is_none() {
                    request_deadline = request_timeout.map(|t| Instant::now() + t);
                } else {
                    credit_progress(&mut request_deadline, n);
                }
            }
            Err(e) if is_timeout(&e) => {
                if shutdown.load(Ordering::Relaxed) {
                    return Err(RecvError::Shutdown);
                }
                if buf.is_empty() && stalled_past(idle_deadline) {
                    return Err(RecvError::Closed);
                }
            }
            Err(e) => return Err(RecvError::Io(e)),
        }
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| RecvError::Malformed("non-utf8 request head".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| RecvError::Malformed("empty request line".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| RecvError::Malformed("request line has no target".into()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| RecvError::Malformed("request line has no version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(RecvError::Malformed(format!(
            "unsupported version '{version}'"
        )));
    }

    let mut content_length: Option<usize> = None;
    // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close.
    let mut keep_alive = version == "HTTP/1.1";
    for line in lines {
        // RFC 9112 §5.2: a line starting with SP/HTAB is obsolete
        // header folding — reject rather than silently drop, since a
        // proxy that unfolds it would frame the message differently.
        if line.starts_with(' ') || line.starts_with('\t') {
            return Err(RecvError::Malformed("obsolete header folding".into()));
        }
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        // RFC 9112 §5.1: whitespace between the field name and the
        // colon MUST be rejected with 400 — a lenient proxy that
        // accepts "Content-Length : N" while this parser silently
        // dropped it would disagree on message framing (the same
        // desync class as the duplicate/'+digit' rejections below).
        if name.trim_end() != name {
            return Err(RecvError::Malformed(
                "whitespace before header colon".into(),
            ));
        }
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            // Duplicate Content-Length headers are a request-smuggling
            // desync vector behind proxies (RFC 9112 §6.3) — reject
            // rather than silently letting the last one win.
            if content_length.is_some() {
                return Err(RecvError::Malformed(
                    "duplicate content-length header".into(),
                ));
            }
            // RFC 9110 allows DIGIT only; Rust's integer parse also
            // accepts a leading '+', which a fronting proxy may frame
            // differently — another desync vector, so digits only.
            if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
                return Err(RecvError::Malformed(format!(
                    "bad content-length '{value}'"
                )));
            }
            content_length = Some(
                value
                    .parse()
                    .map_err(|_| RecvError::Malformed(format!("bad content-length '{value}'")))?,
            );
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(RecvError::Malformed(
                "chunked bodies are not supported".into(),
            ));
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(RecvError::TooLarge);
    }

    // Phase 2: the body.
    let body_start = head_end + 4;
    let total = body_start + content_length;
    while buf.len() < total {
        if stalled_past(request_deadline) {
            return Err(RecvError::TimedOut);
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(RecvError::Malformed("connection closed mid-body".into())),
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                credit_progress(&mut request_deadline, n);
            }
            Err(e) if is_timeout(&e) => {
                if shutdown.load(Ordering::Relaxed) {
                    return Err(RecvError::Shutdown);
                }
            }
            Err(e) => return Err(RecvError::Io(e)),
        }
    }

    let body = buf[body_start..total].to_vec();
    // Keep pipelined leftovers for the next call.
    buf.drain(..total);
    Ok(Request {
        method,
        path,
        body,
        keep_alive,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The content type every response carries unless the route overrides
/// it (only `/metrics` does, with the Prometheus text type).
pub const CONTENT_TYPE_JSON: &str = "application/json";

/// Everything that shapes one rendered response: status line, body,
/// connection handling, and headers.
pub struct ResponsePayload<'a> {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: &'a str,
    /// Keep the connection open after this response.
    pub keep_alive: bool,
    /// `Allow` header value (405 responses, RFC 9110 §15.5.6).
    pub allow: Option<&'a str>,
    /// `Content-Type` header value.
    pub content_type: &'a str,
}

fn render_response(
    status: u16,
    body: &str,
    keep_alive: bool,
    allow: Option<&str>,
    content_type: &str,
) -> Vec<u8> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let mut out = Vec::with_capacity(128 + body.len());
    out.extend_from_slice(format!("HTTP/1.1 {status} {reason}\r\n").as_bytes());
    out.extend_from_slice(format!("Content-Type: {content_type}\r\n").as_bytes());
    if let Some(methods) = allow {
        out.extend_from_slice(format!("Allow: {methods}\r\n").as_bytes());
    }
    out.extend_from_slice(format!("Content-Length: {}\r\n", body.len()).as_bytes());
    out.extend_from_slice(if keep_alive {
        b"Connection: keep-alive\r\n\r\n"
    } else {
        b"Connection: close\r\n\r\n"
    });
    out.extend_from_slice(body.as_bytes());
    out
}

/// Serialize and send one response. The body is always sent with an
/// explicit `Content-Length` (no chunking), content type
/// `application/json`.
///
/// # Errors
///
/// Propagates the stream's write error.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    stream.write_all(&render_response(
        status,
        body,
        keep_alive,
        None,
        CONTENT_TYPE_JSON,
    ))?;
    stream.flush()
}

/// [`write_response`] under the same progress deadline as the receive
/// side: the stream must have a short write timeout, and every write
/// that makes progress credits the deadline at
/// [`MIN_PROGRESS_BYTES_PER_SEC`] — so a reader that drains slowly but
/// steadily completes, while one holding its window shut (or trickling
/// a byte per timeout tick to reset a naive per-syscall timeout) is cut
/// off near `timeout`. Timeout ticks also honor `shutdown`, so a
/// non-draining client cannot wedge graceful drain.
///
/// # Errors
///
/// `TimedOut` past the deadline or on shutdown, otherwise the stream's
/// write error.
pub fn write_response_bounded(
    stream: &mut impl Write,
    payload: &ResponsePayload<'_>,
    shutdown: &AtomicBool,
    timeout: Option<Duration>,
) -> std::io::Result<()> {
    let out = render_response(
        payload.status,
        payload.body,
        payload.keep_alive,
        payload.allow,
        payload.content_type,
    );
    let mut deadline = timeout.map(|t| Instant::now() + t);
    let mut pos = 0;
    while pos < out.len() {
        if stalled_past(deadline) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "response write timed out",
            ));
        }
        match stream.write(&out[pos..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "stream refused response bytes",
                ));
            }
            Ok(n) => {
                pos += n;
                credit_progress(&mut deadline, n);
            }
            Err(e) if is_timeout(&e) => {
                if shutdown.load(Ordering::Relaxed) {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "shutdown during response write",
                    ));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A `Read` over a script of chunks; an empty chunk injects a
    /// timeout error (like a read timeout on a real socket).
    struct Script {
        chunks: Vec<Vec<u8>>,
    }

    impl Read for Script {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if self.chunks.is_empty() {
                return Ok(0);
            }
            let mut chunk = self.chunks.remove(0);
            if chunk.is_empty() {
                return Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "tick"));
            }
            let n = chunk.len().min(out.len());
            out[..n].copy_from_slice(&chunk[..n]);
            if n < chunk.len() {
                chunk.drain(..n);
                self.chunks.insert(0, chunk);
            }
            Ok(n)
        }
    }

    fn read_one(wire: &[Vec<u8>], buf: &mut Vec<u8>) -> Result<Request, RecvError> {
        let mut s = Script {
            chunks: wire.to_vec(),
        };
        read_request(&mut s, buf, &AtomicBool::new(false), None, None)
    }

    #[test]
    fn parses_post_with_body_split_across_reads() {
        let mut buf = Vec::new();
        let req = read_one(
            &[
                b"POST /query HTTP/1.1\r\nContent-Le".to_vec(),
                b"ngth: 11\r\n\r\nhello".to_vec(),
                Vec::new(), // a timeout mid-body just keeps waiting
                b" world".to_vec(),
            ],
            &mut buf,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        assert_eq!(req.body, b"hello world");
        assert!(req.keep_alive);
        assert!(buf.is_empty());
    }

    #[test]
    fn pipelined_requests_survive_in_the_buffer() {
        let mut buf = Vec::new();
        let wire = b"GET /healthz HTTP/1.1\r\n\r\nGET /stats HTTP/1.1\r\n\r\n".to_vec();
        let first = read_one(&[wire], &mut buf).unwrap();
        assert_eq!(first.path, "/healthz");
        // Second request is already buffered; no further reads needed.
        let second = read_one(&[], &mut buf).unwrap();
        assert_eq!(second.path, "/stats");
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let mut buf = Vec::new();
        let req = read_one(
            &[b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n".to_vec()],
            &mut buf,
        )
        .unwrap();
        assert!(!req.keep_alive);
        let req = read_one(&[b"GET / HTTP/1.0\r\n\r\n".to_vec()], &mut buf).unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn clean_close_vs_truncation() {
        let mut buf = Vec::new();
        assert!(matches!(read_one(&[], &mut buf), Err(RecvError::Closed)));
        assert!(matches!(
            read_one(&[b"GET / HT".to_vec()], &mut buf),
            Err(RecvError::Malformed(_))
        ));
    }

    #[test]
    fn shutdown_flag_ends_idle_and_stalled_connections() {
        let shutdown = AtomicBool::new(true);
        // Idle (empty buffer) + timeout -> Shutdown.
        let mut s = Script {
            chunks: vec![Vec::new()],
        };
        let mut buf = Vec::new();
        assert!(matches!(
            read_request(&mut s, &mut buf, &shutdown, None, None),
            Err(RecvError::Shutdown)
        ));
        // A client stalled mid-head is abandoned on the next timeout
        // tick — a worker must never be pinned past shutdown.
        buf.clear();
        let mut s = Script {
            chunks: vec![b"GET / HTTP/1.1".to_vec(), Vec::new(), b"\r\n\r\n".to_vec()],
        };
        assert!(matches!(
            read_request(&mut s, &mut buf, &shutdown, None, None),
            Err(RecvError::Shutdown)
        ));
        // Same for a client stalled mid-body.
        buf.clear();
        let mut s = Script {
            chunks: vec![
                b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nab".to_vec(),
                Vec::new(),
                b"cde".to_vec(),
            ],
        };
        assert!(matches!(
            read_request(&mut s, &mut buf, &shutdown, None, None),
            Err(RecvError::Shutdown)
        ));
        // Without shutdown, the same stalls just keep waiting and the
        // requests complete.
        let no_shutdown = AtomicBool::new(false);
        buf.clear();
        let mut s = Script {
            chunks: vec![
                b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nab".to_vec(),
                Vec::new(),
                b"cde".to_vec(),
            ],
        };
        let req = read_request(&mut s, &mut buf, &no_shutdown, None, None).unwrap();
        assert_eq!(req.body, b"abcde");
    }

    #[test]
    fn request_timeout_abandons_slow_loris_clients() {
        let shutdown = AtomicBool::new(false);
        let expired = Some(Duration::ZERO);
        // Stalled mid-head past the request deadline: typed error, the
        // worker is released.
        let mut buf = Vec::new();
        let mut s = Script {
            chunks: vec![b"GET / HTTP/1.1".to_vec(), Vec::new(), b"\r\n\r\n".to_vec()],
        };
        assert!(matches!(
            read_request(&mut s, &mut buf, &shutdown, None, expired),
            Err(RecvError::TimedOut)
        ));
        // Stalled mid-body: same.
        buf.clear();
        let mut s = Script {
            chunks: vec![
                b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nab".to_vec(),
                Vec::new(),
                b"cde".to_vec(),
            ],
        };
        assert!(matches!(
            read_request(&mut s, &mut buf, &shutdown, None, expired),
            Err(RecvError::TimedOut)
        ));
        // Trickling bytes *without* ever hitting a read timeout must
        // not sidestep the deadline: the check runs whenever the
        // request is incomplete, not just on timeout ticks.
        buf.clear();
        let mut s = Script {
            chunks: (0..32).map(|_| b"x".to_vec()).collect(),
        };
        assert!(matches!(
            read_request(&mut s, &mut buf, &shutdown, None, expired),
            Err(RecvError::TimedOut)
        ));
        assert!(buf.len() < 4, "trickle must be cut off at the deadline");
        // A generous deadline lets the same trickle complete: the
        // timeout only fires on ticks past the deadline.
        buf.clear();
        let mut s = Script {
            chunks: vec![
                b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nab".to_vec(),
                Vec::new(),
                b"cde".to_vec(),
            ],
        };
        let req = read_request(
            &mut s,
            &mut buf,
            &shutdown,
            None,
            Some(Duration::from_secs(3600)),
        )
        .unwrap();
        assert_eq!(req.body, b"abcde");
        // The idle wait is NOT governed by the request timeout — only
        // request bytes arm it.
        buf.clear();
        let mut s = Script {
            chunks: vec![Vec::new(), b"GET / HTTP/1.1\r\n\r\n".to_vec()],
        };
        assert!(read_request(&mut s, &mut buf, &shutdown, None, expired).is_ok());
    }

    #[test]
    fn idle_deadline_reclaims_parked_connections() {
        let shutdown = AtomicBool::new(false);
        let expired = Some(Instant::now() - std::time::Duration::from_millis(1));
        // Idle past the deadline: reclaimed as a clean close.
        let mut s = Script {
            chunks: vec![Vec::new()],
        };
        let mut buf = Vec::new();
        assert!(matches!(
            read_request(&mut s, &mut buf, &shutdown, expired, None),
            Err(RecvError::Closed)
        ));
        // Once request bytes exist, the idle deadline no longer applies.
        buf.clear();
        let mut s = Script {
            chunks: vec![b"GET / HTTP/1.1".to_vec(), Vec::new(), b"\r\n\r\n".to_vec()],
        };
        assert!(read_request(&mut s, &mut buf, &shutdown, expired, None).is_ok());
    }

    #[test]
    fn oversized_heads_and_bodies_are_rejected() {
        let mut buf = Vec::new();
        let huge = vec![b'a'; MAX_HEAD_BYTES + 8];
        assert!(matches!(
            read_one(&[huge], &mut buf),
            Err(RecvError::TooLarge)
        ));
        buf.clear();
        let req = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", u64::MAX);
        assert!(matches!(
            read_one(&[req.into_bytes()], &mut buf),
            Err(RecvError::Malformed(_) | RecvError::TooLarge)
        ));
    }

    #[test]
    fn malformed_request_lines_are_typed() {
        for wire in [
            "\r\n\r\n",
            "GET\r\n\r\n",
            "GET /\r\n\r\n",
            "GET / SPDY/9\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: +16\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length : 5\r\n\r\nhello",
            "POST / HTTP/1.1\r\n Content-Length: 5\r\n\r\nhello",
            "POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 50\r\n\r\n",
            "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ] {
            let mut buf = Vec::new();
            assert!(
                matches!(
                    read_one(&[wire.as_bytes().to_vec()], &mut buf),
                    Err(RecvError::Malformed(_))
                ),
                "{wire:?}"
            );
        }
    }

    /// A `Write` that accepts one byte per call, with a timeout tick
    /// between accepts — the shape of a peer draining its receive
    /// window one byte at a time.
    struct TrickleSink {
        written: Vec<u8>,
        tick: bool,
    }

    impl Write for TrickleSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.tick = !self.tick;
            if self.tick {
                return Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "tick"));
            }
            self.written.push(buf[0]);
            Ok(1)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn bounded_write_cuts_off_non_draining_readers() {
        // A reader draining one byte per tick earns ~15 µs per byte —
        // far below the expired deadline — and is cut off early, even
        // though every other write call makes (token) progress.
        let mut sink = TrickleSink {
            written: Vec::new(),
            tick: false,
        };
        let err = write_response_bounded(
            &mut sink,
            &ResponsePayload {
                status: 200,
                body: "{\"big\":true}",
                keep_alive: true,
                allow: None,
                content_type: CONTENT_TYPE_JSON,
            },
            &AtomicBool::new(false),
            Some(Duration::ZERO),
        )
        .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
        assert!(sink.written.len() < 4, "must not ride progress forever");
        // A generous deadline lets the same slow reader finish.
        let mut sink = TrickleSink {
            written: Vec::new(),
            tick: false,
        };
        write_response_bounded(
            &mut sink,
            &ResponsePayload {
                status: 200,
                body: "{\"big\":true}",
                keep_alive: true,
                allow: None,
                content_type: CONTENT_TYPE_JSON,
            },
            &AtomicBool::new(false),
            Some(Duration::from_secs(3600)),
        )
        .unwrap();
        assert!(sink.written.ends_with(b"{\"big\":true}"));
        // Shutdown cuts a blocked write on the next tick.
        let mut sink = TrickleSink {
            written: Vec::new(),
            tick: false,
        };
        let err = write_response_bounded(
            &mut sink,
            &ResponsePayload {
                status: 200,
                body: "{}",
                keep_alive: true,
                allow: None,
                content_type: CONTENT_TYPE_JSON,
            },
            &AtomicBool::new(true),
            None,
        )
        .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
        let mut out = Vec::new();
        write_response(&mut out, 404, "{}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        // 405 responses carry the Allow header (RFC 9110 §15.5.6).
        let mut out = Vec::new();
        write_response_bounded(
            &mut out,
            &ResponsePayload {
                status: 405,
                body: "{}",
                keep_alive: true,
                allow: Some("POST"),
                content_type: CONTENT_TYPE_JSON,
            },
            &AtomicBool::new(false),
            None,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 405 Method Not Allowed\r\n"));
        assert!(text.contains("Allow: POST\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        // The content type is caller-controlled (the /metrics route
        // sends the Prometheus text type).
        let mut out = Vec::new();
        write_response_bounded(
            &mut out,
            &ResponsePayload {
                status: 200,
                body: "m 1\n",
                keep_alive: true,
                allow: None,
                content_type: "text/plain; version=0.0.4",
            },
            &AtomicBool::new(false),
            None,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Type: text/plain; version=0.0.4\r\n"));
    }
}
