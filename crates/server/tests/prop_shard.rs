//! The shard-merge oracle battery — the coordinator's headline
//! guarantee: over arbitrary planted corpora, at shard counts
//! {1, 2, 3, 7}, for every scorer (`s1..s4`) and both plan modes
//! ({exhaustive, two-pass}), a real scatter-gather cluster (worker
//! servers + coordinator, over HTTP) answers `/query` **byte-identical**
//! to a single process running `top_k_with_reports` over the union
//! corpus — results, scores, CIs, tie-breaks, and reports — where the
//! single-process answer is itself verified identical at thread counts
//! {0, 2, 7} first.
//!
//! A second, independent check replays the coordinator's
//! early-termination bound from the public API alone: per-shard
//! candidate rows via [`engine::shard_candidates`] on per-shard
//! indexes, merged by [`merge_shard_candidates`]. The replay's winners
//! must equal the single-process results, and its `merged`/`shipped`
//! counts must match the coordinator's response fields exactly (they
//! are part of the byte comparison) — so the wire really ships exactly
//! the candidates the bound says survive, and nothing else.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use proptest::prelude::*;
use sketch_datagen::{generate_planted, PlantedConfig};
use sketch_index::{engine, merge_shard_candidates, QueryOptions, ShardCandidate, ShardRows};
use sketch_server::{
    api, CoordinatorConfig, CoordinatorHandle, HttpClient, IndexSnapshot, QueryParams,
    ServerConfig, ServerHandle,
};
use sketch_store::{pack_corpus, PackOptions};
use sketch_table::ColumnPair;

use correlation_sketches::{SketchBuilder, SketchConfig};

/// Shard counts the oracle must hold at (including the degenerate 1).
const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];

/// Thread counts the single-process oracle must agree at before it is
/// trusted as the expected answer.
const ORACLE_THREADS: [usize; 3] = [0, 2, 7];

static CASE: AtomicUsize = AtomicUsize::new(0);

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "sketch-shard-prop-{tag}-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A booted scatter-gather cluster over one partitioned corpus.
struct Cluster {
    workers: Vec<ServerHandle>,
    coordinator: CoordinatorHandle,
    worker_dirs: Vec<PathBuf>,
}

impl Cluster {
    /// Partition `union_store` into (at most) `workers` worker stores
    /// under `out`, boot one server per partition plus a coordinator
    /// over them, in partition-manifest order.
    fn boot(union_store: &Path, out: &Path, workers: usize) -> Self {
        let manifest = sketch_store::shard_corpus(union_store, out, workers, 2).unwrap();
        let mut handles = Vec::new();
        let mut addrs = Vec::new();
        let mut worker_dirs = Vec::new();
        for shard in &manifest.shards {
            let dir = out.join(&shard.dir);
            let mut config = ServerConfig::new(&dir);
            // conn.rs pins one thread per keep-alive connection; the
            // coordinator pools several (scatter, reports, poller), so
            // workers need headroom beyond the public client count.
            config.threads = 4;
            config.poll_interval = Duration::from_millis(50);
            let handle = sketch_server::start(config).unwrap();
            addrs.push(handle.addr().to_string());
            handles.push(handle);
            worker_dirs.push(dir);
        }
        let mut config = CoordinatorConfig::new(addrs);
        config.threads = 2;
        config.poll_interval = Duration::from_millis(50);
        let coordinator = sketch_server::start_coordinator(config).unwrap();
        Self {
            workers: handles,
            coordinator,
            worker_dirs,
        }
    }

    fn shutdown(self) {
        let _ = self.coordinator.shutdown();
        for w in self.workers {
            let _ = w.shutdown();
        }
    }
}

/// `"keys":[…],"values":[…]` for a planted column, values in Rust's
/// shortest-round-trip float syntax (exactly what the wire preserves).
fn keys_values_json(pair: &ColumnPair) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(pair.keys.len() * 24);
    out.push_str("\"keys\":[");
    for (i, k) in pair.keys.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        correlation_sketches::json::push_string(&mut out, k);
    }
    out.push_str("],\"values\":[");
    for (i, v) in pair.values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v:?}");
    }
    out.push(']');
    out
}

fn query_json(pair: &ColumnPair, params: &str) -> String {
    format!("{{\"id\":\"q\",{}{params}}}", keys_values_json(pair))
}

/// Replay the coordinator's merge from the public API: per-shard
/// exhaustive candidate rows, merged with the score-bound cut.
fn replay_merge(
    worker_dirs: &[PathBuf],
    req: &api::QueryRequest,
    opts: &QueryOptions,
) -> (sketch_index::MergeOutcome, Vec<api::ShardState>) {
    let snaps: Vec<IndexSnapshot> = worker_dirs
        .iter()
        .map(|d| IndexSnapshot::from_store(d, 1).unwrap())
        .collect();
    let rows: Vec<Vec<ShardCandidate>> = snaps
        .iter()
        .map(|s| {
            let sketch =
                s.build_query(&req.body.id, req.body.keys.clone(), req.body.values.clone());
            engine::shard_candidates(s.index(), &sketch, opts)
        })
        .collect();
    let shard_rows: Vec<ShardRows<'_>> = rows
        .iter()
        .zip(&snaps)
        .map(|(r, s)| ShardRows {
            rows: r,
            sketches: s.index().len(),
        })
        .collect();
    let outcome = merge_shard_candidates(&shard_rows, opts);
    let states = snaps
        .iter()
        .map(|s| api::ShardState {
            generation: s.generation(),
            degraded: false,
        })
        .collect();
    (outcome, states)
}

/// One oracle assertion: the coordinator's `/query` bytes equal the
/// expected render built from the (thread-invariant) single-process
/// answer and the replayed merge accounting.
fn assert_query_oracle(
    union_store: &Path,
    worker_dirs: &[PathBuf],
    client: &mut HttpClient,
    body: &str,
) {
    let req = api::QueryRequest::parse(body.as_bytes(), &QueryParams::default()).unwrap();
    let opts = req.params.to_options();

    // The single-process expected answer, trusted only once it agrees
    // with itself at every oracle thread count.
    let union_snap = IndexSnapshot::from_store(union_store, 2).unwrap();
    let sketch =
        union_snap.build_query(&req.body.id, req.body.keys.clone(), req.body.values.clone());
    let expected = engine::top_k_with_reports(union_snap.index(), &sketch, &opts, req.params.alpha);
    for threads in ORACLE_THREADS {
        let alt = engine::top_k_with_reports(
            union_snap.index(),
            &sketch,
            &QueryOptions { threads, ..opts },
            req.params.alpha,
        );
        assert_eq!(alt, expected, "oracle unstable at threads={threads}");
    }

    // Independent replay of the merge + termination bound.
    let (outcome, states) = replay_merge(worker_dirs, &req, &opts);
    assert_eq!(
        outcome
            .winners
            .iter()
            .map(|w| &w.result)
            .collect::<Vec<_>>(),
        expected.iter().map(|r| &r.result).collect::<Vec<_>>(),
        "replayed merge winners differ from the single-process top-k"
    );
    assert!(outcome.shipped <= outcome.merged);

    let expected_body = api::render_coordinator_response(
        &states,
        &req.params,
        outcome.merged,
        outcome.shipped,
        &expected,
    );
    let resp = client.post("/query", body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(
        resp.body, expected_body,
        "coordinator answer diverged from the single-process oracle"
    );
}

fn run_case(seed: u64, true_n: usize, noise: usize, traps: usize, rows: usize) {
    let planted = generate_planted(&PlantedConfig {
        queries: 1,
        true_per_query: true_n,
        noise_per_query: noise,
        traps_per_query: traps,
        rows,
        trap_keys: 8,
        seed,
    });
    let builder = SketchBuilder::new(SketchConfig::with_size(128));
    let sketches: Vec<_> = planted.corpus.iter().map(|p| builder.build(p)).collect();

    let dir = TempDir::new("oracle");
    let union_store = dir.0.join("union");
    pack_corpus(
        &union_store,
        &sketches,
        &PackOptions {
            shards: 3,
            threads: 2,
        },
    )
    .unwrap();

    let query = &planted.queries[0];
    for shards in SHARD_COUNTS {
        let out = dir.0.join(format!("parts-{shards}"));
        let cluster = Cluster::boot(&union_store, &out, shards);
        let mut client = HttpClient::connect(cluster.coordinator.addr()).unwrap();
        for scorer in ["s1", "s2", "s3", "s4"] {
            for plan in ["exhaustive", "two-pass"] {
                let body = query_json(
                    query,
                    &format!(
                        ",\"k\":4,\"estimator\":\"spearman\",\
                         \"scorer\":\"{scorer}\",\"plan\":\"{plan}\""
                    ),
                );
                assert_query_oracle(&union_store, &cluster.worker_dirs, &mut client, &body);
            }
        }
        cluster.shutdown();
    }
}

/// Same convention as `prop_plan`: each case boots four full clusters,
/// so the local default stays low; `PROPTEST_CASES` governs the CI
/// battery.
fn oracle_cases() -> ProptestConfig {
    let cases =
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().ok().filter(|&c| c > 0).unwrap_or_else(|| {
                panic!("invalid PROPTEST_CASES '{v}' (need a positive integer)")
            }),
            Err(_) => 4,
        };
    ProptestConfig::with_cases(cases)
}

proptest! {
    #![proptest_config(oracle_cases())]

    /// The headline property: arbitrary planted corpora, the full
    /// shard-count × scorer × plan grid per case, bit-identity of the
    /// whole response body (which embeds results, scores, CIs,
    /// tie-break order, reports, and the replay-checked merged/shipped
    /// counts).
    #[test]
    fn coordinator_matches_single_process_everywhere(
        seed in 0u64..1_000_000,
        true_n in 2usize..5,
        noise in 3usize..9,
        traps in 2usize..6,
        rows in 120usize..260,
    ) {
        run_case(seed, true_n, noise, traps, rows);
    }
}

/// The seeded smoke version: a corpus with enough strong partners that
/// the k-th lower bound is high and the termination bound demonstrably
/// bites — the coordinator must ship strictly fewer rows than it
/// merged, while the answer bytes stay oracle-identical (asserted by
/// the same helper).
#[test]
fn early_termination_ships_strictly_fewer_rows() {
    let planted = generate_planted(&PlantedConfig {
        queries: 1,
        true_per_query: 6,
        noise_per_query: 40,
        traps_per_query: 10,
        rows: 500,
        trap_keys: 8,
        seed: 42,
    });
    let builder = SketchBuilder::new(SketchConfig::with_size(128));
    let sketches: Vec<_> = planted.corpus.iter().map(|p| builder.build(p)).collect();

    let dir = TempDir::new("terminate");
    let union_store = dir.0.join("union");
    pack_corpus(
        &union_store,
        &sketches,
        &PackOptions {
            shards: 2,
            threads: 2,
        },
    )
    .unwrap();
    let cluster = Cluster::boot(&union_store, &dir.0.join("parts"), 3);
    let mut client = HttpClient::connect(cluster.coordinator.addr()).unwrap();

    let body = query_json(
        &planted.queries[0],
        ",\"k\":3,\"estimator\":\"spearman\",\"scorer\":\"s2\"",
    );
    assert_query_oracle(&union_store, &cluster.worker_dirs, &mut client, &body);

    let resp = client.post("/query", &body).unwrap();
    let merged = api::extract_u64(&resp.body, "merged").unwrap();
    let shipped = api::extract_u64(&resp.body, "shipped").unwrap();
    assert!(
        shipped < merged,
        "termination bound never bit: shipped {shipped} of {merged} merged rows"
    );
    assert!(shipped >= 3, "must ship at least k rows");
    cluster.shutdown();
}

/// Batch scatter-gather: `/query_batch` over the cluster answers every
/// query byte-identically to the single-process batch engine, with
/// per-query merged/shipped accounting from the replay.
#[test]
fn coordinator_batch_matches_single_process() {
    let planted = generate_planted(&PlantedConfig {
        queries: 2,
        true_per_query: 4,
        noise_per_query: 8,
        traps_per_query: 4,
        rows: 200,
        trap_keys: 8,
        seed: 7,
    });
    let builder = SketchBuilder::new(SketchConfig::with_size(128));
    let sketches: Vec<_> = planted.corpus.iter().map(|p| builder.build(p)).collect();

    let dir = TempDir::new("batch");
    let union_store = dir.0.join("union");
    pack_corpus(
        &union_store,
        &sketches,
        &PackOptions {
            shards: 2,
            threads: 2,
        },
    )
    .unwrap();
    let cluster = Cluster::boot(&union_store, &dir.0.join("parts"), 3);
    let mut client = HttpClient::connect(cluster.coordinator.addr()).unwrap();

    let body = format!(
        "{{\"queries\":[{{\"id\":\"a\",{}}},{{\"id\":\"b\",{}}}],\
         \"k\":3,\"estimator\":\"spearman\",\"scorer\":\"s3\"}}",
        keys_values_json(&planted.queries[0]),
        keys_values_json(&planted.queries[1]),
    );
    let req = api::BatchRequest::parse(body.as_bytes(), &QueryParams::default()).unwrap();
    let opts = req.params.to_options();

    let union_snap = IndexSnapshot::from_store(&union_store, 2).unwrap();
    let query_sketches: Vec<_> = req
        .queries
        .iter()
        .map(|q| union_snap.build_query(&q.id, q.keys.clone(), q.values.clone()))
        .collect();
    let answers = engine::top_k_batch_with_reports(
        union_snap.index(),
        &query_sketches,
        &opts,
        req.params.alpha,
    );

    let mut merged = Vec::new();
    let mut shipped = Vec::new();
    let mut states = Vec::new();
    for (qi, q) in req.queries.iter().enumerate() {
        let single = api::QueryRequest {
            body: q.clone(),
            params: req.params,
            trace: false,
        };
        let (outcome, s) = replay_merge(&cluster.worker_dirs, &single, &opts);
        assert_eq!(
            outcome
                .winners
                .iter()
                .map(|w| &w.result)
                .collect::<Vec<_>>(),
            answers[qi].iter().map(|r| &r.result).collect::<Vec<_>>(),
            "query {qi}: replayed merge differs from the batch engine"
        );
        merged.push(outcome.merged);
        shipped.push(outcome.shipped);
        states = s;
    }
    let expected =
        api::render_coordinator_batch_response(&states, &req.params, &merged, &shipped, &answers);

    let resp = client.post("/query_batch", &body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(resp.body, expected);

    // Repeat is a cache hit, byte-identical.
    let resp2 = client.post("/query_batch", &body).unwrap();
    assert_eq!(resp, resp2);
    assert!(
        cluster
            .coordinator
            .stats()
            .cache_hits
            .load(Ordering::Relaxed)
            >= 1
    );
    cluster.shutdown();
}
