//! Observability contract tests:
//!
//! * **traced-vs-untraced byte identity** — adding `"trace":true` to a
//!   request must change nothing about the result payload: stripping
//!   the spliced trace object back out of a traced response yields the
//!   untraced response byte-for-byte, on the miss path, on the cache-hit
//!   path, for every scorer, both plan modes, against a single server
//!   and scatter-gather clusters at several shard counts (proptest over
//!   planted corpora);
//! * **span accounting** — the depth-0 span durations of a traced
//!   `/query` sum to no more than the request total;
//! * **/metrics scrape conformance** — the Prometheus text exposition
//!   parses line by line (HELP/TYPE/sample grammar, `sketch_`-prefixed
//!   identifiers, quoted label values), each family's TYPE appears
//!   exactly once, and the latency histogram's cumulative buckets are
//!   monotone with the `+Inf` bucket equal to `_count`;
//! * **coordinator /metrics** — per-shard health/generation gauges, with
//!   a killed worker visible as `sketch_shard_healthy{shard="…"} 0`;
//! * **slow-query log** — a server with a zero threshold traces every
//!   request internally and counts it slow, while its response bytes
//!   stay identical to a server that never traces.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use proptest::prelude::*;
use sketch_datagen::{generate_planted, PlantedConfig};
use sketch_server::{CoordinatorConfig, CoordinatorHandle, HttpClient, ServerConfig, ServerHandle};
use sketch_store::{pack_corpus, PackOptions};
use sketch_table::ColumnPair;

use correlation_sketches::{SketchBuilder, SketchConfig};

static CASE: AtomicUsize = AtomicUsize::new(0);

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "sketch-obs-it-{tag}-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn planted(seed: u64, noise: usize, rows: usize) -> (Vec<ColumnPair>, PathBuf, TempDir) {
    let planted = generate_planted(&PlantedConfig {
        queries: 1,
        true_per_query: 3,
        noise_per_query: noise,
        traps_per_query: 3,
        rows,
        trap_keys: 8,
        seed,
    });
    let builder = SketchBuilder::new(SketchConfig::with_size(128));
    let sketches: Vec<_> = planted.corpus.iter().map(|p| builder.build(p)).collect();
    let dir = TempDir::new("planted");
    let union_store = dir.0.join("union");
    pack_corpus(
        &union_store,
        &sketches,
        &PackOptions {
            shards: 2,
            threads: 2,
        },
    )
    .unwrap();
    (planted.queries, union_store, dir)
}

fn keys_values_json(pair: &ColumnPair) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("\"keys\":[");
    for (i, k) in pair.keys.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        correlation_sketches::json::push_string(&mut out, k);
    }
    out.push_str("],\"values\":[");
    for (i, v) in pair.values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v:?}");
    }
    out.push(']');
    out
}

fn query_json(pair: &ColumnPair, params: &str) -> String {
    format!("{{\"id\":\"q\",{}{params}}}", keys_values_json(pair))
}

/// Remove the spliced `,"trace":{…}` suffix from a traced response
/// body, recovering what the untraced twin must have answered.
fn strip_trace(body: &str) -> String {
    let pos = body
        .rfind(",\"trace\":{")
        .unwrap_or_else(|| panic!("no trace object in {body}"));
    assert!(body.ends_with('}'), "{body}");
    format!("{}}}", &body[..pos])
}

/// First `"field":<digits>` after the start of `hay` — a raw scanner
/// for fields nested inside the trace object (`api::extract_u64` parses
/// whole response bodies, not fragments).
fn scan_u64(hay: &str, field: &str) -> u64 {
    let pat = format!("\"{field}\":");
    let pos = hay
        .find(&pat)
        .unwrap_or_else(|| panic!("no {field} in {hay}"));
    let digits: String = hay[pos + pat.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().unwrap()
}

/// `(depth, dur_us)` for every span in a traced response body.
fn span_depth_durs(body: &str) -> Vec<(u64, u64)> {
    let trace = &body[body.rfind(",\"trace\":{").expect("trace object")..];
    let mut out = Vec::new();
    let mut rest = trace;
    while let Some(pos) = rest.find("\"depth\":") {
        rest = &rest[pos..];
        out.push((scan_u64(rest, "depth"), scan_u64(rest, "dur_us")));
        rest = &rest[8..];
    }
    out
}

/// The identity under test, exercised on one endpoint: a traced miss, a
/// traced hit, and an untraced hit must carry the same result payload,
/// and the traced spans must account within the request total.
fn assert_trace_identity(client: &mut HttpClient, pair: &ColumnPair, params: &str) {
    let untraced = query_json(pair, params);
    let traced = query_json(pair, &format!("{params},\"trace\":true"));

    // Miss path: the traced request executes the full pipeline.
    let t1 = client.post("/query", &traced).unwrap();
    assert_eq!(t1.status, 200, "{}", t1.body);

    // The cache stored only the untraced body; the untraced twin is a
    // hit and must read back exactly the traced payload minus the trace.
    let u = client.post("/query", &untraced).unwrap();
    assert_eq!(u.status, 200, "{}", u.body);
    assert_eq!(strip_trace(&t1.body), u.body, "traced miss diverged");
    assert!(
        !u.body.contains("\"trace\":{"),
        "untraced response leaked a trace: {}",
        u.body
    );

    // Hit path: tracing a cached request splices a fresh trace around
    // the identical payload.
    let t2 = client.post("/query", &traced).unwrap();
    assert_eq!(t2.status, 200, "{}", t2.body);
    assert_eq!(strip_trace(&t2.body), u.body, "traced hit diverged");

    // Span accounting: depth-0 spans are disjoint wall-clock intervals
    // inside the request, so their durations sum within the total.
    for resp in [&t1, &t2] {
        let trace = &resp.body[resp.body.rfind(",\"trace\":{").unwrap()..];
        let total = scan_u64(trace, "total_us");
        let spans = span_depth_durs(&resp.body);
        assert!(!spans.is_empty(), "trace carried no spans: {trace}");
        let top: u64 = spans.iter().filter(|(d, _)| *d == 0).map(|(_, v)| v).sum();
        assert!(
            top <= total,
            "depth-0 spans sum to {top}us > total {total}us: {trace}"
        );
    }
}

/// A booted scatter-gather cluster over one partitioned corpus.
struct Cluster {
    workers: Vec<ServerHandle>,
    coordinator: CoordinatorHandle,
}

impl Cluster {
    fn boot(union_store: &Path, out: &Path, shards: usize) -> Self {
        let manifest = sketch_store::shard_corpus(union_store, out, shards, 2).unwrap();
        let mut workers = Vec::new();
        let mut addrs = Vec::new();
        for shard in &manifest.shards {
            let mut config = ServerConfig::new(out.join(&shard.dir));
            config.threads = 4;
            config.poll_interval = Duration::from_millis(50);
            let handle = sketch_server::start(config).unwrap();
            addrs.push(handle.addr().to_string());
            workers.push(handle);
        }
        let mut config = CoordinatorConfig::new(addrs);
        config.threads = 2;
        config.poll_interval = Duration::from_millis(50);
        let coordinator = sketch_server::start_coordinator(config).unwrap();
        Self {
            workers,
            coordinator,
        }
    }

    fn shutdown(self) {
        let _ = self.coordinator.shutdown();
        for w in self.workers {
            let _ = w.shutdown();
        }
    }
}

fn run_identity_case(seed: u64, noise: usize, rows: usize) {
    let (queries, union_store, dir) = planted(seed, noise, rows);
    let query = &queries[0];
    let grid: Vec<String> = ["s1", "s2", "s3", "s4"]
        .iter()
        .flat_map(|scorer| {
            ["exhaustive", "two-pass"].iter().map(move |plan| {
                format!(
                    ",\"k\":4,\"estimator\":\"spearman\",\
                     \"scorer\":\"{scorer}\",\"plan\":\"{plan}\""
                )
            })
        })
        .collect();

    // Single server.
    let mut config = ServerConfig::new(&union_store);
    config.threads = 4;
    let handle = sketch_server::start(config).unwrap();
    let mut client = HttpClient::connect(handle.addr()).unwrap();
    for params in &grid {
        assert_trace_identity(&mut client, query, params);
    }
    // Every traced request above was counted.
    let traced = handle.stats().traced.load(Ordering::Relaxed);
    assert_eq!(traced, 2 * grid.len() as u64);
    drop(client);
    let _ = handle.shutdown();

    // Scatter-gather clusters: the identity must survive the
    // scatter/gather/merge pipeline at several shard counts.
    for shards in [1usize, 2, 3] {
        let cluster = Cluster::boot(&union_store, &dir.0.join(format!("parts-{shards}")), shards);
        let mut client = HttpClient::connect(cluster.coordinator.addr()).unwrap();
        for params in &grid {
            assert_trace_identity(&mut client, query, params);
        }
        cluster.shutdown();
    }
}

fn identity_cases() -> ProptestConfig {
    let cases =
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().ok().filter(|&c| c > 0).unwrap_or_else(|| {
                panic!("invalid PROPTEST_CASES '{v}' (need a positive integer)")
            }),
            Err(_) => 2,
        };
    ProptestConfig::with_cases(cases)
}

proptest! {
    #![proptest_config(identity_cases())]

    /// Arbitrary planted corpora: `"trace":true` never changes the
    /// result payload, at every scorer × plan × topology point.
    #[test]
    fn traced_and_untraced_payloads_are_byte_identical(
        seed in 0u64..1_000_000,
        noise in 4usize..10,
        rows in 120usize..240,
    ) {
        run_identity_case(seed, noise, rows);
    }
}

// ---------------------------------------------------------------------
// /metrics scrape conformance
// ---------------------------------------------------------------------

fn is_metric_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        && !s.starts_with(|c: char| c.is_ascii_digit())
}

/// One parsed sample line: `name`, label pairs, numeric value.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// Parse the exposition body, panicking on anything outside the
/// text-format 0.0.4 grammar, and return the samples plus the per-family
/// TYPE declarations in order of appearance.
fn parse_exposition(body: &str) -> (Vec<Sample>, Vec<(String, String)>) {
    let mut samples = Vec::new();
    let mut types = Vec::new();
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap();
            assert!(is_metric_ident(name), "bad HELP name: {line}");
            assert!(name.starts_with("sketch_"), "unprefixed family: {line}");
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.splitn(2, ' ');
            let name = it.next().unwrap();
            let kind = it.next().unwrap_or_else(|| panic!("bad TYPE: {line}"));
            assert!(is_metric_ident(name), "bad TYPE name: {line}");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown TYPE kind: {line}"
            );
            types.push((name.to_string(), kind.to_string()));
            continue;
        }
        assert!(!line.starts_with('#'), "unknown comment form: {line}");
        // Sample: name[{label="value",…}] value
        let (name_labels, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("no value on sample line: {line}"));
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("non-numeric value: {line}"));
        let (name, labels) = match name_labels.split_once('{') {
            None => (name_labels.to_string(), Vec::new()),
            Some((name, rest)) => {
                let inner = rest
                    .strip_suffix('}')
                    .unwrap_or_else(|| panic!("unterminated label block: {line}"));
                let labels = inner
                    .split(',')
                    .map(|pair| {
                        let (k, v) = pair
                            .split_once('=')
                            .unwrap_or_else(|| panic!("bad label pair '{pair}': {line}"));
                        assert!(is_metric_ident(k), "bad label name '{k}': {line}");
                        let v = v
                            .strip_prefix('"')
                            .and_then(|v| v.strip_suffix('"'))
                            .unwrap_or_else(|| panic!("unquoted label value '{v}': {line}"));
                        (k.to_string(), v.to_string())
                    })
                    .collect();
                (name.to_string(), labels)
            }
        };
        assert!(is_metric_ident(&name), "bad sample name: {line}");
        assert!(name.starts_with("sketch_"), "unprefixed sample: {line}");
        samples.push(Sample {
            name,
            labels,
            value,
        });
    }
    (samples, types)
}

fn sample_value(samples: &[Sample], name: &str, labels: &[(&str, &str)]) -> f64 {
    samples
        .iter()
        .find(|s| {
            s.name == name
                && labels
                    .iter()
                    .all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
        })
        .unwrap_or_else(|| panic!("no sample {name}{labels:?}"))
        .value
}

/// The histogram contract: cumulative `_bucket` counts are monotone,
/// the last bucket is `+Inf`, and it equals `_count`.
fn assert_histogram(samples: &[Sample], family: &str) {
    let buckets: Vec<&Sample> = samples
        .iter()
        .filter(|s| s.name == format!("{family}_bucket"))
        .collect();
    assert!(!buckets.is_empty(), "{family} has no buckets");
    let mut prev = 0.0;
    for b in &buckets {
        assert!(
            b.value >= prev,
            "{family} cumulative buckets not monotone at {:?}",
            b.labels
        );
        prev = b.value;
    }
    let last = buckets.last().unwrap();
    assert_eq!(
        last.labels
            .iter()
            .find(|(k, _)| k == "le")
            .map(|(_, v)| v.as_str()),
        Some("+Inf"),
        "{family} final bucket is not +Inf"
    );
    let count = sample_value(samples, &format!("{family}_count"), &[]);
    assert_eq!(last.value, count, "{family} +Inf bucket != _count");
    // _sum exists and is non-negative.
    assert!(sample_value(samples, &format!("{family}_sum"), &[]) >= 0.0);
}

#[test]
fn metrics_exposition_is_scrape_conformant() {
    let (queries, union_store, _dir) = planted(11, 6, 160);
    let mut config = ServerConfig::new(&union_store);
    config.threads = 2;
    let handle = sketch_server::start(config).unwrap();
    let mut client = HttpClient::connect(handle.addr()).unwrap();

    // Traffic across the endpoints the counters must reflect: two
    // distinct queries, a repeat (cache hit), an error, and /stats.
    let a = query_json(&queries[0], ",\"k\":3");
    let b = query_json(&queries[0], ",\"k\":3,\"scorer\":\"s2\"");
    for body in [&a, &b, &a] {
        let resp = client.post("/query", body).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
    }
    assert_eq!(client.post("/query", "{oops").unwrap().status, 400);
    let stats = client.get("/stats").unwrap();
    assert_eq!(stats.status, 200);
    // The /stats satellites ride along: uptime and start time.
    assert!(stats.body.contains("\"uptime_s\":"), "{}", stats.body);
    assert!(stats.body.contains("\"started_unix\":"), "{}", stats.body);

    // Raw scrape once to pin the content type on the wire.
    {
        use std::io::{Read as _, Write as _};
        let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
        raw.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut head = Vec::new();
        raw.read_to_end(&mut head).unwrap();
        let head = String::from_utf8_lossy(&head);
        assert!(
            head.contains("Content-Type: text/plain; version=0.0.4"),
            "scrape head missing Prometheus content type:\n{head}"
        );
    }

    let scrape = client.get("/metrics").unwrap();
    assert_eq!(scrape.status, 200);
    let (samples, types) = parse_exposition(&scrape.body);

    // Each family declares its TYPE exactly once, and every sample
    // belongs to a declared family.
    let mut seen = std::collections::HashSet::new();
    for (name, _) in &types {
        assert!(seen.insert(name.clone()), "duplicate TYPE for {name}");
    }
    for s in &samples {
        let family = s
            .name
            .strip_suffix("_bucket")
            .or_else(|| s.name.strip_suffix("_sum"))
            .or_else(|| s.name.strip_suffix("_count"))
            .unwrap_or(&s.name);
        assert!(
            seen.contains(family) || seen.contains(&s.name),
            "sample {} has no TYPE declaration",
            s.name
        );
    }

    // The counters reflect the traffic.
    assert!(sample_value(&samples, "sketch_requests_total", &[("endpoint", "query")]) >= 4.0);
    assert!(sample_value(&samples, "sketch_errors_total", &[]) >= 1.0);
    assert!(sample_value(&samples, "sketch_cache_hits_total", &[]) >= 1.0);
    assert!(sample_value(&samples, "sketch_cache_misses_total", &[]) >= 2.0);
    assert_eq!(sample_value(&samples, "sketch_generation", &[]), 0.0);
    assert!(sample_value(&samples, "sketch_sketches", &[]) >= 1.0);
    assert!(sample_value(&samples, "sketch_started_time_seconds", &[]) > 0.0);

    assert_histogram(&samples, "sketch_query_latency_seconds");
    // Only the three answered queries feed the histogram — the 400
    // rejection is deliberately excluded from latency.
    assert!(
        sample_value(&samples, "sketch_query_latency_seconds_count", &[]) >= 3.0,
        "latency histogram missed requests"
    );

    // A second scrape counts the first: /metrics observes itself.
    let scrape2 = client.get("/metrics").unwrap();
    let (samples2, _) = parse_exposition(&scrape2.body);
    assert!(
        sample_value(
            &samples2,
            "sketch_requests_total",
            &[("endpoint", "metrics")]
        ) >= 2.0
    );

    let _ = handle.shutdown();
}

#[test]
fn coordinator_metrics_track_killed_worker_health() {
    let (queries, union_store, dir) = planted(23, 6, 160);
    let cluster = Cluster::boot(&union_store, &dir.0.join("parts"), 2);
    let mut client = HttpClient::connect(cluster.coordinator.addr()).unwrap();

    let body = query_json(&queries[0], ",\"k\":3");
    let resp = client.post("/query", &body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);

    let scrape = client.get("/metrics").unwrap();
    assert_eq!(scrape.status, 200);
    let (samples, _) = parse_exposition(&scrape.body);
    assert_eq!(sample_value(&samples, "sketch_shards", &[]), 2.0);
    for shard in ["0", "1"] {
        assert_eq!(
            sample_value(&samples, "sketch_shard_healthy", &[("shard", shard)]),
            1.0,
            "shard {shard} should start healthy"
        );
    }
    // The coordinator has no single corpus generation: only per-shard
    // generation gauges are exposed.
    assert!(
        !samples.iter().any(|s| s.name == "sketch_generation"),
        "coordinator must not expose a scalar generation"
    );

    // Kill worker 1; a degraded query plus the health poller must flip
    // its gauge to 0 while shard 0 stays healthy.
    let mut workers = cluster.workers;
    let _ = workers.remove(1).shutdown();
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut attempt = 0u32;
    loop {
        // Keep traffic flowing so degradation is observed promptly —
        // under fresh ids, so every probe misses the cache and actually
        // scatters (degraded answers are produced, and counted, only on
        // the scatter path).
        attempt += 1;
        let fresh = format!(
            "{{\"id\":\"probe-{attempt}\",{},\"k\":3}}",
            keys_values_json(&queries[0])
        );
        let resp = client.post("/query", &fresh).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        let scrape = client.get("/metrics").unwrap();
        let (samples, _) = parse_exposition(&scrape.body);
        if sample_value(&samples, "sketch_shard_healthy", &[("shard", "1")]) == 0.0 {
            assert_eq!(
                sample_value(&samples, "sketch_shard_healthy", &[("shard", "0")]),
                1.0
            );
            assert!(sample_value(&samples, "sketch_degraded_responses_total", &[]) >= 1.0);
            break;
        }
        assert!(
            Instant::now() < deadline,
            "killed worker never showed unhealthy in /metrics"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    let _ = cluster.coordinator.shutdown();
    for w in workers {
        let _ = w.shutdown();
    }
}

#[test]
fn slow_query_tracing_counts_without_changing_bytes() {
    let (queries, union_store, _dir) = planted(31, 6, 160);

    let plain = sketch_server::start(ServerConfig::new(&union_store)).unwrap();
    let mut slow_config = ServerConfig::new(&union_store);
    // Zero threshold: every request is at-or-over it, so every request
    // runs with tracing enabled and lands in the slow-query log.
    slow_config.slow_query = Some(Duration::ZERO);
    let slow = sketch_server::start(slow_config).unwrap();

    let mut plain_client = HttpClient::connect(plain.addr()).unwrap();
    let mut slow_client = HttpClient::connect(slow.addr()).unwrap();

    let body = query_json(&queries[0], ",\"k\":3,\"scorer\":\"s3\"");
    let want = plain_client.post("/query", &body).unwrap();
    assert_eq!(want.status, 200, "{}", want.body);
    for _ in 0..3 {
        let got = slow_client.post("/query", &body).unwrap();
        assert_eq!(got.status, 200);
        // Internal tracing never leaks into the response.
        assert_eq!(got.body, want.body, "slow-query tracing changed the bytes");
    }
    assert!(slow.stats().slow_queries.load(Ordering::Relaxed) >= 3);
    // Nothing asked for a trace in the response, so none were attached.
    assert_eq!(slow.stats().traced.load(Ordering::Relaxed), 0);
    assert_eq!(plain.stats().slow_queries.load(Ordering::Relaxed), 0);

    let _ = plain.shutdown();
    let _ = slow.shutdown();
}
