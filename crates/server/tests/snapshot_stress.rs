//! Concurrent snapshot-swap stress: queries racing
//! `refresh_from_store`-driven swaps (and post-compaction rebuilds)
//! across {2, 7, 16} query threads must never observe a torn index —
//! every observed answer must be bit-identical to an independent
//! in-memory rebuild over the exact live corpus of its generation.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use correlation_sketches::{CorrelationSketch, SketchBuilder, SketchConfig};
use sketch_index::{engine, QueryOptions, ReportedResult, SketchIndex};
use sketch_server::snapshot::{refresh, IndexSnapshot, SnapshotCell};
use sketch_store::PackOptions;
use sketch_table::ColumnPair;

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("sketch-serve-stress-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn builder() -> SketchBuilder {
    SketchBuilder::new(SketchConfig::with_size(48))
}

fn sketch(table: &str, lo: usize) -> CorrelationSketch {
    builder().build(&ColumnPair::new(
        table,
        "k",
        "v",
        (lo..lo + 60).map(|i| format!("key-{i}")).collect(),
        (lo..lo + 60).map(|i| ((i as f64) * 0.23).sin()).collect(),
    ))
}

fn run_stress(query_threads: usize) {
    let dir = TempDir::new(&format!("t{query_threads}"));
    // The authoritative mirror of the store's live view, in live order
    // (base survivors in pack order, then surviving appends in append
    // order) — the order contract `read_corpus` guarantees.
    let mut live: Vec<CorrelationSketch> =
        (0..12).map(|t| sketch(&format!("t{t}"), t * 7)).collect();
    sketch_store::pack_corpus(
        &dir.0,
        &live,
        &PackOptions {
            shards: 3,
            threads: 1,
        },
    )
    .unwrap();

    let cell = SnapshotCell::new(IndexSnapshot::from_store(&dir.0, 1).unwrap());
    let query = builder().build(&ColumnPair::new(
        "q",
        "k",
        "v",
        (0..60).map(|i| format!("key-{i}")).collect(),
        (0..60).map(|i| (i as f64) * 1.5).collect(),
    ));
    let opts = QueryOptions {
        k: 20,
        ..QueryOptions::default()
    };

    // generation -> expected answer, recorded by the mutator *before*
    // the swap that makes the generation observable.
    let expected: Mutex<HashMap<u64, Vec<ReportedResult>>> = Mutex::new(HashMap::new());
    let record = |generation: u64,
                  live: &[CorrelationSketch],
                  expected: &Mutex<HashMap<u64, Vec<ReportedResult>>>| {
        let rebuilt = SketchIndex::from_sketches(live.iter().cloned()).unwrap();
        let answer = engine::top_k_with_reports(&rebuilt, &query, &opts, 0.05);
        expected.lock().unwrap().insert(generation, answer);
    };
    record(0, &live, &expected);

    let stop = AtomicBool::new(false);
    let observed: Mutex<Vec<u64>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..query_threads {
            scope.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    let snap = cell.load();
                    let generation = snap.generation();
                    let got = engine::top_k_with_reports(snap.index(), &query, &opts, 0.05);
                    let map = expected.lock().unwrap();
                    let want = map
                        .get(&generation)
                        .unwrap_or_else(|| panic!("unknown generation {generation}"));
                    assert_eq!(&got, want, "torn answer at generation {generation}");
                    drop(map);
                    observed.lock().unwrap().push(generation);
                }
            });
        }

        // The mutator: appends, removes, and compactions, each followed
        // by a refresh of the cell — racing the query threads above.
        let mut next_table = 100usize;
        for round in 0..8u64 {
            let generation = round * 3;
            // Append two.
            let a = sketch(&format!("t{next_table}"), next_table % 90);
            let b = sketch(&format!("t{}", next_table + 1), (next_table * 3) % 90);
            next_table += 2;
            sketch_store::append_corpus(&dir.0, &[a.clone(), b.clone()], 1).unwrap();
            live.push(a);
            live.push(b);
            record(generation + 1, &live, &expected);
            refresh(&cell, &dir.0, 1).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(2));

            // Remove the oldest survivor.
            let victim = live.remove(0);
            sketch_store::remove_from_corpus(&dir.0, &[victim.id().to_string()], 1).unwrap();
            record(generation + 2, &live, &expected);
            refresh(&cell, &dir.0, 1).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(2));

            // Compact every round: exercises the rebuild path. The live
            // view is unchanged, but the generation advances.
            sketch_store::compact_corpus(
                &dir.0,
                &PackOptions {
                    shards: 2,
                    threads: 1,
                },
            )
            .unwrap();
            // After a compact the base is rewritten in live order, so
            // the mirror stays valid as-is.
            record(generation + 3, &live, &expected);
            refresh(&cell, &dir.0, 1).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        stop.store(true, Ordering::Relaxed);
    });

    let observed = observed.into_inner().unwrap();
    assert!(
        observed.len() >= query_threads * 4,
        "only {} observations across {query_threads} threads",
        observed.len()
    );
    // The run must have seen swaps actually land, not just generation 0.
    let distinct: std::collections::HashSet<u64> = observed.iter().copied().collect();
    assert!(
        distinct.len() >= 2,
        "queries only ever saw generations {distinct:?}"
    );
    assert_eq!(cell.load().generation(), 24);
}

#[test]
fn snapshot_swaps_are_tear_free_2_threads() {
    run_stress(2);
}

#[test]
fn snapshot_swaps_are_tear_free_7_threads() {
    run_stress(7);
}

#[test]
fn snapshot_swaps_are_tear_free_16_threads() {
    run_stress(16);
}
