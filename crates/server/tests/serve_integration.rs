//! End-to-end server test: boot on an ephemeral port, mutate the corpus
//! underneath it (`append` / `rm` / `compact`), and assert that every
//! served response is **byte-identical** to a fresh single-process
//! `top_k_with_reports` answer at the same generation — cache hit or
//! miss, before and during mutation.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use correlation_sketches::{CorrelationSketch, SketchBuilder, SketchConfig};
use sketch_server::{api, HttpClient, IndexSnapshot, QueryParams, ServerConfig};
use sketch_store::PackOptions;
use sketch_table::ColumnPair;

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("sketch-serve-it-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn sketch(table: &str, lo: usize, n: usize, scale: f64) -> CorrelationSketch {
    SketchBuilder::new(SketchConfig::with_size(64)).build(&ColumnPair::new(
        table,
        "k",
        "v",
        (lo..lo + n).map(|i| format!("key-{i}")).collect(),
        (lo..lo + n)
            .map(|i| ((i as f64) * 0.17).sin() * scale)
            .collect(),
    ))
}

fn corpus(n: usize) -> Vec<CorrelationSketch> {
    (0..n)
        .map(|t| sketch(&format!("t{t}"), (t * 13) % 120, 80, (t + 1) as f64))
        .collect()
}

/// A query over keys 0..80 with a sine signal; `extra` injects extra
/// request fields (e.g. a scorer override), empty for the defaults.
fn query_json(extra: &str) -> String {
    let keys: Vec<String> = (0..80).map(|i| format!("\"key-{i}\"")).collect();
    let values: Vec<String> = (0..80)
        .map(|i| format!("{:?}", ((i as f64) * 0.17).sin() * 3.0))
        .collect();
    format!(
        "{{\"keys\":[{}],\"values\":[{}]{extra}}}",
        keys.join(","),
        values.join(",")
    )
}

/// What a fresh single process would answer for this request body
/// against the store as it is on disk right now, rendered exactly like
/// the server renders it.
fn expected_body(store: &Path, body: &str) -> String {
    let snap = IndexSnapshot::from_store(store, 2).unwrap();
    let req = api::QueryRequest::parse(body.as_bytes(), &QueryParams::default()).unwrap();
    let sketch = snap.build_query(&req.body.id, req.body.keys.clone(), req.body.values.clone());
    let results = sketch_index::engine::top_k_with_reports(
        snap.index(),
        &sketch,
        &req.params.to_options(),
        req.params.alpha,
    );
    api::render_query_response(snap.generation(), &req.params, &results)
}

fn wait_for_generation(handle: &sketch_server::ServerHandle, generation: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.generation() != generation {
        assert!(
            Instant::now() < deadline,
            "server never reached generation {generation} (at {})",
            handle.generation()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn served_answers_stay_byte_identical_under_mutation() {
    let dir = TempDir::new("mutation");
    sketch_store::pack_corpus(
        &dir.0,
        &corpus(16),
        &PackOptions {
            shards: 4,
            threads: 2,
        },
    )
    .unwrap();

    let mut config = ServerConfig::new(&dir.0);
    config.threads = 4;
    config.poll_interval = Duration::from_millis(25);
    let handle = sketch_server::start(config).unwrap();
    let addr = handle.addr();

    // Two request bodies hammer the server throughout: the default
    // point-estimate ranking and a CI-aware scored ranking — both must
    // stay byte-identical to fresh single-process answers at every
    // generation.
    let bodies: [String; 2] = [
        query_json(""),
        query_json(",\"scorer\":\"s4\",\"confidence\":0.9"),
    ];

    // Authoritative per-(body, generation) answers, computed from a
    // *fresh* single-process store load while the store sits at that
    // generation.
    let expected: Mutex<HashMap<(usize, u64), String>> = Mutex::new(HashMap::new());
    let record = |generation: u64| {
        let mut map = expected.lock().unwrap();
        for (bi, body) in bodies.iter().enumerate() {
            map.insert((bi, generation), expected_body(&dir.0, body));
        }
    };
    record(0);

    // Background clients hammer both queries through every mutation;
    // each observation must match the expected body of its generation.
    let stop = std::sync::atomic::AtomicBool::new(false);
    let observations: Mutex<Vec<(usize, u64, String)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for c in 0..4 {
            let bodies = &bodies;
            let observations = &observations;
            let stop = &stop;
            scope.spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                // Two clients per body; scored and unscored interleave.
                let bi = c % bodies.len();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let resp = client.post("/query", &bodies[bi]).unwrap();
                    assert_eq!(resp.status, 200, "{}", resp.body);
                    let generation = api::extract_u64(&resp.body, "generation").unwrap();
                    observations
                        .lock()
                        .unwrap()
                        .push((bi, generation, resp.body));
                }
            });
        }

        // Let clients observe generation 0 first.
        std::thread::sleep(Duration::from_millis(100));

        // Mutation 1: append two sketches -> generation 1.
        sketch_store::append_corpus(
            &dir.0,
            &[
                sketch("fresh-a", 0, 80, 2.5),
                sketch("fresh-b", 40, 80, 4.0),
            ],
            1,
        )
        .unwrap();
        record(1);
        wait_for_generation(&handle, 1);
        std::thread::sleep(Duration::from_millis(60));

        // Mutation 2: tombstone two of the originals -> generation 2.
        sketch_store::remove_from_corpus(&dir.0, &["t0/k/v".to_string(), "t5/k/v".to_string()], 1)
            .unwrap();
        record(2);
        wait_for_generation(&handle, 2);
        std::thread::sleep(Duration::from_millis(60));

        // Mutation 3: compact -> generation 3, forcing the rebuild path.
        sketch_store::compact_corpus(
            &dir.0,
            &PackOptions {
                shards: 3,
                threads: 2,
            },
        )
        .unwrap();
        record(3);
        wait_for_generation(&handle, 3);
        std::thread::sleep(Duration::from_millis(60));

        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });

    // Every observation, at every generation, cache hit or miss, scored
    // or not, must be byte-identical to the fresh single-process answer.
    let expected = expected.into_inner().unwrap();
    let observations = observations.into_inner().unwrap();
    assert!(
        observations.len() >= 20,
        "clients made only {} observations",
        observations.len()
    );
    let mut seen_generations: Vec<u64> = Vec::new();
    for (bi, generation, body) in &observations {
        let want = expected
            .get(&(*bi, *generation))
            .unwrap_or_else(|| panic!("unexpected generation {generation}"));
        assert_eq!(&body, &want, "generation {generation} answer diverged");
        if !seen_generations.contains(generation) {
            seen_generations.push(*generation);
        }
    }
    // The run must actually have exercised mutation visibility: at
    // least the first and last generations are observed (intermediate
    // ones can be skipped on a slow machine).
    assert!(seen_generations.contains(&0), "{seen_generations:?}");
    assert!(seen_generations.contains(&3), "{seen_generations:?}");

    // The same queries repeated at a settled generation are cache hits
    // and still byte-identical — for the scored request too, proving
    // scorer and confidence are part of the cache identity.
    let hits_before = handle
        .stats()
        .cache_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    let mut client = HttpClient::connect(addr).unwrap();
    for (bi, body) in bodies.iter().enumerate() {
        let a = client.post("/query", body).unwrap();
        let b = client.post("/query", body).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.body, expected[&(bi, 3)]);
    }
    assert_ne!(
        expected[&(0, 3)],
        expected[&(1, 3)],
        "scored and unscored responses must not collide"
    );
    let hits_after = handle
        .stats()
        .cache_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(hits_after > hits_before);

    // The rebuild path (post-compact) was exercised.
    assert!(
        handle
            .stats()
            .rebuilds
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );

    let summary = handle.shutdown();
    assert!(summary.contains("\"generation\":3"), "{summary}");
    // After graceful shutdown nothing is listening any more.
    std::thread::sleep(Duration::from_millis(50));
    assert!(std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(250)).is_err());
}

#[test]
fn batch_answers_match_engine_and_cache() {
    let dir = TempDir::new("batch");
    sketch_store::pack_corpus(
        &dir.0,
        &corpus(10),
        &PackOptions {
            shards: 2,
            threads: 1,
        },
    )
    .unwrap();
    let handle = sketch_server::start(ServerConfig::new(&dir.0)).unwrap();
    let mut client = HttpClient::connect(handle.addr()).unwrap();

    let q1: Vec<String> = (0..60).map(|i| format!("\"key-{i}\"")).collect();
    let q2: Vec<String> = (20..80).map(|i| format!("\"key-{i}\"")).collect();
    let vals = |n: usize, f: f64| {
        (0..n)
            .map(|i| format!("{:?}", (i as f64 * f).cos()))
            .collect::<Vec<_>>()
            .join(",")
    };
    let body = format!(
        "{{\"queries\":[{{\"id\":\"a\",\"keys\":[{}],\"values\":[{}]}},\
         {{\"id\":\"b\",\"keys\":[{}],\"values\":[{}]}}],\"k\":5}}",
        q1.join(","),
        vals(60, 0.21),
        q2.join(","),
        vals(60, 0.13)
    );

    let resp = client.post("/query_batch", &body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);

    // Reproduce single-process: parse the same request, run the batch
    // engine on a fresh load, render identically.
    let req = api::BatchRequest::parse(body.as_bytes(), &QueryParams::default()).unwrap();
    let snap = IndexSnapshot::from_store(&dir.0, 1).unwrap();
    let sketches: Vec<_> = req
        .queries
        .iter()
        .map(|q| snap.build_query(&q.id, q.keys.clone(), q.values.clone()))
        .collect();
    let answers = sketch_index::engine::top_k_batch_with_reports(
        snap.index(),
        &sketches,
        &req.params.to_options(),
        req.params.alpha,
    );
    assert_eq!(
        resp.body,
        api::render_batch_response(snap.generation(), &req.params, &answers)
    );

    // And the batch is answered from cache on repeat, byte-identically.
    let resp2 = client.post("/query_batch", &body).unwrap();
    assert_eq!(resp, resp2);
    assert!(
        handle
            .stats()
            .cache_hits
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );

    // Batch answers are also identical to looping the single-query
    // endpoint (the engine equivalence, observed over HTTP).
    for (i, q) in req.queries.iter().enumerate() {
        let single = format!(
            "{{\"id\":{:?},\"keys\":[{}],\"values\":[{}],\"k\":5}}",
            q.id,
            q.keys
                .iter()
                .map(|k| format!("{k:?}"))
                .collect::<Vec<_>>()
                .join(","),
            q.values
                .iter()
                .map(|v| format!("{v:?}"))
                .collect::<Vec<_>>()
                .join(","),
        );
        let resp = client.post("/query", &single).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert_eq!(
            resp.body,
            api::render_query_response(snap.generation(), &req.params, &answers[i])
        );
    }

    let _ = handle.shutdown();
}

#[test]
fn health_stats_corpus_and_error_paths() {
    let dir = TempDir::new("endpoints");
    sketch_store::pack_corpus(
        &dir.0,
        &corpus(6),
        &PackOptions {
            shards: 2,
            threads: 1,
        },
    )
    .unwrap();
    let handle = sketch_server::start(ServerConfig::new(&dir.0)).unwrap();
    let mut client = HttpClient::connect(handle.addr()).unwrap();

    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(api::extract_u64(&health.body, "generation").unwrap(), 0);
    assert_eq!(api::extract_u64(&health.body, "sketches").unwrap(), 6);

    // Load balancers append query parameters to probe URLs; routing
    // must ignore everything after '?'.
    let probed = client.get("/healthz?probe=1").unwrap();
    assert_eq!(probed.status, 200);
    assert_eq!(probed.body, health.body);

    let corpus_resp = client.get("/corpus").unwrap();
    assert_eq!(corpus_resp.status, 200);
    assert_eq!(
        api::extract_u64(&corpus_resp.body, "served_generation").unwrap(),
        0
    );
    let v = correlation_sketches::json::parse(&corpus_resp.body).unwrap();
    let store = v
        .as_object("corpus")
        .unwrap()
        .get("store")
        .unwrap()
        .as_object("store")
        .unwrap();
    assert_eq!(store.get("live").unwrap().as_u64("live").unwrap(), 6);
    assert_eq!(
        store
            .get("shards")
            .unwrap()
            .as_array("shards")
            .unwrap()
            .len(),
        2
    );

    // Error paths: malformed JSON, bad shapes, unknown routes, wrong
    // methods — all typed JSON errors, connection stays usable where
    // keep-alive is preserved.
    let resp = client.post("/query", "{oops").unwrap();
    assert_eq!(resp.status, 400);
    assert!(api::is_error_body(&resp.body));
    let resp = client
        .post("/query", "{\"keys\":[\"a\"],\"values\":[1,2]}")
        .unwrap();
    assert_eq!(resp.status, 400);
    let resp = client.get("/nope").unwrap();
    assert_eq!(resp.status, 404);
    let resp = client.post("/healthz", "{}").unwrap();
    assert_eq!(resp.status, 405);
    let resp = client.get("/query").unwrap();
    assert_eq!(resp.status, 405);
    // Any unsupported method on an endpoint that exists is 405, not
    // 404 — an uptime probe issuing HEAD must not read "no such
    // endpoint".
    let resp = client.request_with_method("PUT", "/query").unwrap();
    assert_eq!(resp.status, 405);
    let resp = client.request_with_method("HEAD", "/healthz").unwrap();
    assert_eq!(resp.status, 405);

    // The connection survived all of that (keep-alive).
    let again = client.get("/healthz").unwrap();
    assert_eq!(again.status, 200);

    let stats = client.get("/stats").unwrap();
    assert_eq!(stats.status, 200);
    let v = correlation_sketches::json::parse(&stats.body).unwrap();
    let obj = v.as_object("stats").unwrap();
    assert!(obj.get("requests").unwrap().as_u64("r").unwrap() >= 8);
    assert!(obj.get("errors").unwrap().as_u64("e").unwrap() >= 5);

    let _ = handle.shutdown();
}
