//! Fault injection and mutation coverage for the scatter-gather
//! coordinator — the states the oracle battery (`prop_shard`) cannot
//! reach with healthy workers:
//!
//! * a **killed** worker: the coordinator answers 200 with a typed
//!   `degraded` entry naming the shard and its last observed
//!   generation, the merged answer is byte-identical to the public-API
//!   replay over the surviving shards, `/healthz` flips to `degraded`,
//!   and nothing hangs;
//! * a **stalled** worker (accepts the request, never answers): same
//!   contract, bounded by `worker_timeout` — never a hang, never a
//!   silently short list;
//! * a **mutation under shards**: appending to one worker's store while
//!   the coordinator serves produces per-generation byte-identical
//!   responses, and the generation-vector cache key means answers from
//!   different generation mixtures can never alias;
//! * **graceful shutdown** drains and leaves the port closed.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sketch_datagen::{generate_planted, PlantedConfig};
use sketch_index::{engine, merge_shard_candidates, ShardCandidate, ShardRows};
use sketch_server::{
    api, CoordinatorConfig, CoordinatorHandle, HttpClient, IndexSnapshot, QueryParams,
    ServerConfig, ServerHandle,
};
use sketch_store::{pack_corpus, PackOptions, PartitionManifest};
use sketch_table::ColumnPair;

use correlation_sketches::{JoinSample, SketchBuilder, SketchConfig};

static CASE: AtomicUsize = AtomicUsize::new(0);

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "sketch-coord-int-{tag}-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn planted_sketches(
    seed: u64,
) -> (
    Vec<ColumnPair>,
    Vec<correlation_sketches::CorrelationSketch>,
) {
    let planted = generate_planted(&PlantedConfig {
        queries: 1,
        true_per_query: 4,
        noise_per_query: 8,
        traps_per_query: 4,
        rows: 200,
        trap_keys: 8,
        seed,
    });
    let builder = SketchBuilder::new(SketchConfig::with_size(128));
    let sketches = planted.corpus.iter().map(|p| builder.build(p)).collect();
    (planted.queries, sketches)
}

fn keys_values_json(pair: &ColumnPair) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("\"keys\":[");
    for (i, k) in pair.keys.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        correlation_sketches::json::push_string(&mut out, k);
    }
    out.push_str("],\"values\":[");
    for (i, v) in pair.values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v:?}");
    }
    out.push(']');
    out
}

fn query_json(pair: &ColumnPair, params: &str) -> String {
    format!("{{\"id\":\"q\",{}{params}}}", keys_values_json(pair))
}

/// A booted cluster plus the partition facts the tests assert against.
struct Cluster {
    workers: Vec<ServerHandle>,
    worker_dirs: Vec<PathBuf>,
    manifest: PartitionManifest,
    coordinator: CoordinatorHandle,
}

/// Partition + boot, with fault-friendly deadlines (`worker_timeout`
/// 400 ms so a dead or stalled worker costs well under a second) and an
/// optional extra (fake) worker address appended after the real ones.
fn boot_cluster(union_store: &Path, out: &Path, shards: usize, extra: &[String]) -> Cluster {
    let manifest = sketch_store::shard_corpus(union_store, out, shards, 2).unwrap();
    let mut workers = Vec::new();
    let mut worker_dirs = Vec::new();
    let mut addrs = Vec::new();
    for shard in &manifest.shards {
        let dir = out.join(&shard.dir);
        let mut config = ServerConfig::new(&dir);
        // One conn.rs thread serves one keep-alive connection at a
        // time, and the coordinator holds pooled connections (scatter,
        // reports, poller) — give workers headroom so a pinned thread
        // never reads as a dead shard.
        config.threads = 4;
        config.poll_interval = Duration::from_millis(50);
        let handle = sketch_server::start(config).unwrap();
        addrs.push(handle.addr().to_string());
        workers.push(handle);
        worker_dirs.push(dir);
    }
    addrs.extend_from_slice(extra);
    let mut config = CoordinatorConfig::new(addrs);
    config.threads = 2;
    config.poll_interval = Duration::from_millis(50);
    config.worker_timeout = Duration::from_millis(800);
    let coordinator = sketch_server::start_coordinator(config).unwrap();
    Cluster {
        workers,
        worker_dirs,
        manifest,
        coordinator,
    }
}

/// What the coordinator should believe about one shard when building
/// the expected answer.
enum Shard {
    Live(PathBuf),
    Dead { generation: u64, sketches: usize },
}

/// The full expected `/query` bytes, rebuilt from the public API alone:
/// per-shard candidate rows ([`engine::shard_candidates`]) for live
/// shards, empty rows at the last-known size for dead ones, merged by
/// [`merge_shard_candidates`], reports for the surviving winners via
/// [`engine::report_for_doc`] — exactly the coordinator's two phases.
fn expected_response(shards: &[Shard], body: &str) -> String {
    let req = api::QueryRequest::parse(body.as_bytes(), &QueryParams::default()).unwrap();
    let opts = req.params.to_options();
    let snaps: Vec<Option<IndexSnapshot>> = shards
        .iter()
        .map(|s| match s {
            Shard::Live(dir) => Some(IndexSnapshot::from_store(dir, 1).unwrap()),
            Shard::Dead { .. } => None,
        })
        .collect();
    let sketches: Vec<Option<correlation_sketches::CorrelationSketch>> = snaps
        .iter()
        .map(|s| {
            s.as_ref().map(|snap| {
                snap.build_query(&req.body.id, req.body.keys.clone(), req.body.values.clone())
            })
        })
        .collect();
    let rows: Vec<Vec<ShardCandidate>> = snaps
        .iter()
        .zip(&sketches)
        .map(|(snap, sketch)| match (snap, sketch) {
            (Some(snap), Some(sketch)) => engine::shard_candidates(snap.index(), sketch, &opts),
            _ => Vec::new(),
        })
        .collect();
    let shard_rows: Vec<ShardRows<'_>> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| ShardRows {
            rows: r,
            sketches: match (&shards[i], &snaps[i]) {
                (Shard::Dead { sketches, .. }, _) => *sketches,
                (Shard::Live(_), Some(snap)) => snap.index().len(),
                (Shard::Live(_), None) => unreachable!(),
            },
        })
        .collect();
    let outcome = merge_shard_candidates(&shard_rows, &opts);

    let mut sample = JoinSample::default();
    let results: Vec<sketch_index::ReportedResult> = outcome
        .winners
        .into_iter()
        .map(|w| {
            let snap = snaps[w.shard]
                .as_ref()
                .expect("winners come from live shards");
            let sketch = sketches[w.shard].as_ref().unwrap();
            let report = engine::report_for_doc(
                snap.index(),
                sketch,
                w.local_doc,
                &opts,
                req.params.alpha,
                &mut sample,
            );
            sketch_index::ReportedResult {
                result: w.result,
                report,
            }
        })
        .collect();

    let states: Vec<api::ShardState> = shards
        .iter()
        .zip(&snaps)
        .map(|(s, snap)| match s {
            Shard::Live(_) => api::ShardState {
                generation: snap.as_ref().unwrap().generation(),
                degraded: false,
            },
            Shard::Dead { generation, .. } => api::ShardState {
                generation: *generation,
                degraded: true,
            },
        })
        .collect();
    api::render_coordinator_response(
        &states,
        &req.params,
        outcome.merged,
        outcome.shipped,
        &results,
    )
}

/// Poll the coordinator's `/healthz` until `pred` holds.
fn wait_for_healthz(addr: std::net::SocketAddr, pred: impl Fn(&str) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut client = HttpClient::connect(addr).unwrap();
        let resp = client.get("/healthz").unwrap();
        if pred(&resp.body) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "healthz never converged; last: {}",
            resp.body
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn killed_worker_yields_typed_degraded_partial_result() {
    let (queries, sketches) = planted_sketches(11);
    let dir = TempDir::new("kill");
    let union_store = dir.0.join("union");
    pack_corpus(
        &union_store,
        &sketches,
        &PackOptions {
            shards: 2,
            threads: 2,
        },
    )
    .unwrap();
    let mut cluster = boot_cluster(&union_store, &dir.0.join("parts"), 3, &[]);
    assert_eq!(cluster.workers.len(), 3, "corpus too small for 3 shards");

    let body = query_json(
        &queries[0],
        ",\"k\":3,\"estimator\":\"spearman\",\"scorer\":\"s2\"",
    );
    let mut client = HttpClient::connect(cluster.coordinator.addr()).unwrap();
    let healthy = client.post("/query", &body).unwrap();
    assert_eq!(healthy.status, 200);
    assert!(healthy.body.contains("\"degraded\":[]"));

    // Kill the middle worker; the poller must notice.
    let dead = cluster.workers.remove(1);
    let _ = dead.shutdown();
    wait_for_healthz(cluster.coordinator.addr(), |b| {
        b.contains("\"status\":\"degraded\"")
            && b.contains("{\"shard\":1,\"generation\":0,\"sketches\":")
    });

    // Same query: the (fingerprint, generation-vector) key still holds
    // — generations did not change — so the cached *complete* answer is
    // served; it is still byte-correct for this data. A query the cache
    // has never seen must go out degraded.
    let cached = client.post("/query", &body).unwrap();
    assert_eq!(
        cached, healthy,
        "complete cached answer must survive a worker death"
    );

    let fresh_body = query_json(
        &queries[0],
        ",\"k\":4,\"estimator\":\"spearman\",\"scorer\":\"s2\"",
    );
    let t0 = Instant::now();
    let resp = client.post("/query", &fresh_body).unwrap();
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "degraded query took {elapsed:?} — a dead worker must not stall the answer"
    );
    assert_eq!(resp.status, 200);
    assert!(
        resp.body
            .contains("\"degraded\":[{\"shard\":1,\"generation\":0}]"),
        "degraded entry must name the missing shard and generation: {}",
        resp.body
    );
    let expected = expected_response(
        &[
            Shard::Live(cluster.worker_dirs[0].clone()),
            Shard::Dead {
                generation: 0,
                sketches: cluster.manifest.shards[1].count as usize,
            },
            Shard::Live(cluster.worker_dirs[2].clone()),
        ],
        &fresh_body,
    );
    assert_eq!(
        resp.body, expected,
        "degraded answer must equal the replay over the surviving shards"
    );
    assert!(cluster.coordinator.stats().degraded.load(Ordering::Relaxed) >= 1);

    // Degraded answers are never cached: asking again re-scatters and
    // answers identically (deterministic), still degraded.
    let again = client.post("/query", &fresh_body).unwrap();
    assert_eq!(again, resp);

    let _ = cluster.coordinator.shutdown();
    for w in cluster.workers {
        let _ = w.shutdown();
    }
}

/// A fake worker that answers `/healthz` but goes silent on any shard
/// query — the worst failure mode, because the socket stays open.
fn spawn_stalling_worker(stop: &Arc<AtomicBool>) -> (String, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    listener.set_nonblocking(true).unwrap();
    let stop = Arc::clone(stop);
    let handle = std::thread::spawn(move || {
        while !stop.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || stall_conn(stream, &stop));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => break,
            }
        }
    });
    (addr.to_string(), handle)
}

fn stall_conn(mut stream: TcpStream, stop: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    while !stop.load(Ordering::Relaxed) {
        while let Some(line) = take_request(&mut buf) {
            if line.starts_with("GET /healthz") {
                let body = "{\"status\":\"ok\",\"generation\":0,\"sketches\":0}";
                let resp = format!(
                    "HTTP/1.1 200 OK\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                );
                if stream.write_all(resp.as_bytes()).is_err() {
                    return;
                }
            } else {
                // The point of this worker: swallow the request, never
                // answer, keep the socket open until the test ends.
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(10));
                }
                return;
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => return,
        }
    }
}

/// Pop one complete HTTP request off `buf`, returning its request line.
fn take_request(buf: &mut Vec<u8>) -> Option<String> {
    let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
    let mut content_length = 0usize;
    for line in head.split("\r\n").skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    let total = head_end + 4 + content_length;
    if buf.len() < total {
        return None;
    }
    let line = head.split("\r\n").next().unwrap_or("").to_string();
    buf.drain(..total);
    Some(line)
}

#[test]
fn stalled_worker_degrades_within_deadline_never_hangs() {
    let (queries, sketches) = planted_sketches(23);
    let dir = TempDir::new("stall");
    let union_store = dir.0.join("union");
    pack_corpus(
        &union_store,
        &sketches,
        &PackOptions {
            shards: 2,
            threads: 2,
        },
    )
    .unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let (fake_addr, fake) = spawn_stalling_worker(&stop);
    // Two real partitions plus the stalling fake as shard 2 (it claims
    // zero sketches, so union doc offsets are unaffected).
    let cluster = boot_cluster(&union_store, &dir.0.join("parts"), 2, &[fake_addr]);
    assert_eq!(cluster.workers.len(), 2);

    let body = query_json(
        &queries[0],
        ",\"k\":3,\"estimator\":\"spearman\",\"scorer\":\"s3\"",
    );
    let mut client = HttpClient::connect(cluster.coordinator.addr()).unwrap();
    let t0 = Instant::now();
    let resp = client.post("/query", &body).unwrap();
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "stalled worker must be cut off by worker_timeout, took {elapsed:?}"
    );
    assert_eq!(resp.status, 200);
    assert!(
        resp.body
            .contains("\"degraded\":[{\"shard\":2,\"generation\":0}]"),
        "stall must surface as a typed degraded entry: {}",
        resp.body
    );
    let expected = expected_response(
        &[
            Shard::Live(cluster.worker_dirs[0].clone()),
            Shard::Live(cluster.worker_dirs[1].clone()),
            Shard::Dead {
                generation: 0,
                sketches: 0,
            },
        ],
        &body,
    );
    assert_eq!(resp.body, expected);

    stop.store(true, Ordering::Relaxed);
    let _ = fake.join();
    let _ = cluster.coordinator.shutdown();
    for w in cluster.workers {
        let _ = w.shutdown();
    }
}

#[test]
fn mutation_under_shards_is_generation_exact_and_never_aliases() {
    let (queries, sketches) = planted_sketches(37);
    let dir = TempDir::new("mutate");
    let union_store = dir.0.join("union");
    pack_corpus(
        &union_store,
        &sketches,
        &PackOptions {
            shards: 2,
            threads: 2,
        },
    )
    .unwrap();
    let cluster = boot_cluster(&union_store, &dir.0.join("parts"), 3, &[]);
    assert_eq!(cluster.workers.len(), 3);

    let body = query_json(
        &queries[0],
        ",\"k\":3,\"estimator\":\"spearman\",\"scorer\":\"s2\"",
    );
    let mut client = HttpClient::connect(cluster.coordinator.addr()).unwrap();
    let resp_a = client.post("/query", &body).unwrap();
    assert_eq!(resp_a.status, 200);
    let expected_a = expected_response(
        &[
            Shard::Live(cluster.worker_dirs[0].clone()),
            Shard::Live(cluster.worker_dirs[1].clone()),
            Shard::Live(cluster.worker_dirs[2].clone()),
        ],
        &body,
    );
    assert_eq!(resp_a.body, expected_a);

    // Append a perfectly correlated partner to worker 0's store while
    // the cluster serves: it must enter the top-k, and the coordinator
    // must notice the generation bump without a restart.
    let appended = ColumnPair::new(
        "appended-perfect",
        "k",
        "v",
        queries[0].keys.clone(),
        queries[0].values.clone(),
    );
    let builder = SketchBuilder::new(SketchConfig::with_size(128));
    sketch_store::append_corpus(&cluster.worker_dirs[0], &[builder.build(&appended)], 1).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while cluster.coordinator.generations() != vec![1, 0, 0] {
        assert!(
            Instant::now() < deadline,
            "coordinator never observed the append: {:?}",
            cluster.coordinator.generations()
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Same request bytes, new generation vector: a different cache key,
    // so the pre-mutation answer can never alias in.
    let resp_b = client.post("/query", &body).unwrap();
    assert_eq!(resp_b.status, 200);
    assert_ne!(
        resp_b.body, resp_a.body,
        "the appended perfect partner must change the answer"
    );
    assert!(resp_b.body.contains("\"generations\":[1,0,0]"));
    assert!(
        resp_b.body.contains("appended-perfect"),
        "appended partner missing from: {}",
        resp_b.body
    );
    let expected_b = expected_response(
        &[
            Shard::Live(cluster.worker_dirs[0].clone()),
            Shard::Live(cluster.worker_dirs[1].clone()),
            Shard::Live(cluster.worker_dirs[2].clone()),
        ],
        &body,
    );
    assert_eq!(resp_b.body, expected_b);

    // Cross-check against a single process over the equivalent union:
    // worker 0's live view is its base rows plus the append, so the
    // union corpus in global doc order is [shard0.., appended, shard1..,
    // shard2..]. The sharded answer must be bit-equal in results to
    // that single store's top-k.
    let c0 = cluster.manifest.shards[0].count as usize;
    let mut union2: Vec<_> = sketches[..c0].to_vec();
    union2.push(builder.build(&appended));
    union2.extend_from_slice(&sketches[c0..]);
    let union2_store = dir.0.join("union2");
    pack_corpus(
        &union2_store,
        &union2,
        &PackOptions {
            shards: 2,
            threads: 2,
        },
    )
    .unwrap();
    let req = api::QueryRequest::parse(body.as_bytes(), &QueryParams::default()).unwrap();
    let opts = req.params.to_options();
    let snap = IndexSnapshot::from_store(&union2_store, 2).unwrap();
    let sketch = snap.build_query(&req.body.id, req.body.keys.clone(), req.body.values.clone());
    let single = engine::top_k_with_reports(snap.index(), &sketch, &opts, req.params.alpha);
    let single_render = api::render_query_response(0, &req.params, &single);
    let results_field = |body: &str| {
        let start = body.find("\"results\":").expect("results field");
        body[start..].to_string()
    };
    assert_eq!(
        results_field(&resp_b.body),
        results_field(&single_render),
        "post-mutation sharded results must match the single-process union"
    );

    // Replaying the identical request is a pure cache hit, byte-equal.
    let hits_before = cluster
        .coordinator
        .stats()
        .cache_hits
        .load(Ordering::Relaxed);
    let resp_b2 = client.post("/query", &body).unwrap();
    assert_eq!(resp_b2, resp_b);
    assert!(
        cluster
            .coordinator
            .stats()
            .cache_hits
            .load(Ordering::Relaxed)
            > hits_before
    );

    let _ = cluster.coordinator.shutdown();
    for w in cluster.workers {
        let _ = w.shutdown();
    }
}

#[test]
fn graceful_shutdown_drains_and_closes() {
    let (queries, sketches) = planted_sketches(53);
    let dir = TempDir::new("drain");
    let union_store = dir.0.join("union");
    pack_corpus(
        &union_store,
        &sketches,
        &PackOptions {
            shards: 1,
            threads: 1,
        },
    )
    .unwrap();
    let cluster = boot_cluster(&union_store, &dir.0.join("parts"), 2, &[]);

    let body = query_json(&queries[0], ",\"k\":2");
    let addr = cluster.coordinator.addr();
    let mut client = HttpClient::connect(addr).unwrap();
    assert_eq!(client.post("/query", &body).unwrap().status, 200);

    let summary = cluster.coordinator.shutdown();
    assert!(summary.contains("\"requests\":"), "final stats: {summary}");
    // The port is really closed: a fresh connection cannot complete a
    // request any more.
    let refused = match HttpClient::connect(addr) {
        Err(_) => true,
        Ok(mut c) => c.post("/query", &body).is_err(),
    };
    assert!(refused, "coordinator port still answering after shutdown");
    for w in cluster.workers {
        let _ = w.shutdown();
    }
}
