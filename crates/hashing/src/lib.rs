//! Hash functions used by Correlation Sketches (Santos et al., SIGMOD 2021).
//!
//! The sketch construction in the paper composes two hash functions:
//!
//! * `h` — a (practically) collision-free hash that maps key values to
//!   distinct integers, used as the tuple identifier stored in the sketch.
//!   The paper uses the 32-bit **MurmurHash3** function ([`murmur3_x86_32`]);
//!   this crate additionally provides the 128-bit x64 variant
//!   ([`murmur3_x64_128`]) whose upper 64 bits give a far lower collision
//!   probability for large corpora.
//! * `h_u` — a hash that maps the integers produced by `h` uniformly at
//!   random into the unit interval `[0, 1)`. The paper uses **Fibonacci
//!   hashing** (golden-ratio multiplicative hashing, Knuth TAOCP §6.4),
//!   implemented here as [`fibonacci::fib_hash_u64`] /
//!   [`fibonacci::unit_hash_u64`].
//!
//! The composition `g(k) = h_u(h(k))` maps keys uniformly into `[0, 1)`; a
//! sketch keeps the tuples whose keys have the *n smallest* values of
//! `g(k)`. Because the same `g` is used for every table, two sketches built
//! independently are biased towards containing the *same* keys, which is
//! what makes sketch joins large enough to estimate correlations
//! (Section 3.1 of the paper).
//!
//! Everything in this crate is implemented from scratch (no external hashing
//! crates) and verified against the reference MurmurHash3 test vectors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fibonacci;
pub mod key;
pub mod murmur3;

pub use fibonacci::{fib_hash_u32, fib_hash_u64, unit_hash_u32, unit_hash_u64};
pub use key::{HashBits, KeyHash, KeyHasher, TupleHasher};
pub use murmur3::{fmix32, fmix64, murmur3_x64_128, murmur3_x86_32};
