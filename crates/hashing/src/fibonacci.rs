//! Fibonacci (golden-ratio multiplicative) hashing — the unit-interval hash
//! `h_u` of the paper (Section 3.4, citing Knuth TAOCP vol. 3 §6.4).
//!
//! Multiplying by `2^w / φ` (where φ is the golden ratio) and keeping the
//! low `w` bits scrambles consecutive integers into a low-discrepancy,
//! uniform-looking sequence. Interpreting the scrambled word as a fixed
//! point fraction yields a value in `[0, 1)`.

/// `⌊2^64 / φ⌋`, the 64-bit Fibonacci hashing multiplier (odd).
pub const FIB_MULT_64: u64 = 0x9e37_79b9_7f4a_7c15;

/// `⌊2^32 / φ⌋`, the 32-bit Fibonacci hashing multiplier (odd).
pub const FIB_MULT_32: u32 = 0x9e37_79b9;

/// Scale factor that maps the top 53 bits of a u64 into `[0, 1)` without
/// precision loss (f64 has a 53-bit significand).
const INV_2_53: f64 = 1.0 / ((1u64 << 53) as f64);

/// Fibonacci hash of a 64-bit integer: `x * ⌊2^64/φ⌋ mod 2^64`.
///
/// This is a bijection on `u64` (the multiplier is odd), so it cannot
/// introduce collisions on top of the key hash `h`.
#[inline]
#[must_use]
pub const fn fib_hash_u64(x: u64) -> u64 {
    x.wrapping_mul(FIB_MULT_64)
}

/// Fibonacci hash of a 32-bit integer: `x * ⌊2^32/φ⌋ mod 2^32`.
#[inline]
#[must_use]
pub const fn fib_hash_u32(x: u32) -> u32 {
    x.wrapping_mul(FIB_MULT_32)
}

/// The paper's `h_u`: maps an integer tuple identifier `h(k)` uniformly into
/// the unit interval `[0, 1)`.
///
/// The top 53 bits of the Fibonacci hash are used so that every
/// representable output is an exact multiple of `2^-53`; this keeps the
/// mapping order-isomorphic to the underlying integer hash (ties in `f64`
/// imply ties in the top 53 bits).
#[inline]
#[must_use]
pub fn unit_hash_u64(x: u64) -> f64 {
    (fib_hash_u64(x) >> 11) as f64 * INV_2_53
}

/// 32-bit variant of [`unit_hash_u64`], matching the paper's 32-bit setup:
/// maps `h(k)` (a u32) to `[0, 1)` with 32 bits of resolution.
#[inline]
#[must_use]
pub fn unit_hash_u32(x: u32) -> f64 {
    f64::from(fib_hash_u32(x)) / f64::from(u32::MAX) / (1.0 + f64::EPSILON)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_hash_is_in_unit_interval() {
        for x in [0u64, 1, 2, u64::MAX, u64::MAX - 1, 0xdead_beef] {
            let u = unit_hash_u64(x);
            assert!((0.0..1.0).contains(&u), "x={x} u={u}");
        }
        for x in [0u32, 1, 2, u32::MAX, 0xdead_beef] {
            let u = unit_hash_u32(x);
            assert!((0.0..1.0).contains(&u), "x={x} u={u}");
        }
    }

    #[test]
    fn fib_hash_u64_is_injective_on_samples() {
        let mut outs: Vec<u64> = (0u64..100_000).map(fib_hash_u64).collect();
        outs.sort_unstable();
        outs.dedup();
        assert_eq!(outs.len(), 100_000);
    }

    #[test]
    fn unit_hash_spreads_consecutive_integers() {
        // Consecutive inputs must land far apart — the whole point of
        // golden-ratio hashing. Check the minimum pairwise gap of the first
        // few mapped points is large (≈ 1/φ² spacing behaviour).
        let us: Vec<f64> = (0u64..8).map(unit_hash_u64).collect();
        for i in 0..us.len() {
            for j in (i + 1)..us.len() {
                assert!(
                    (us[i] - us[j]).abs() > 0.05,
                    "points {i},{j} too close: {} vs {}",
                    us[i],
                    us[j]
                );
            }
        }
    }

    #[test]
    fn unit_hash_is_approximately_uniform() {
        // Bucket 1M hashed integers into 64 bins; every bin should be within
        // 5% of the expected count. Fibonacci hashing of a contiguous range
        // is low-discrepancy, so this is a very safe bound.
        const N: u64 = 1_000_000;
        const BINS: usize = 64;
        let mut counts = [0u32; BINS];
        for x in 0..N {
            let u = unit_hash_u64(x);
            let b = ((u * BINS as f64) as usize).min(BINS - 1);
            counts[b] += 1;
        }
        let expected = N as f64 / BINS as f64;
        for (b, &c) in counts.iter().enumerate() {
            let rel = (f64::from(c) - expected).abs() / expected;
            assert!(rel < 0.05, "bin {b}: count {c} vs expected {expected}");
        }
    }

    #[test]
    fn unit_hash_u64_preserves_distinctness() {
        let mut us: Vec<u64> = (0u64..100_000)
            .map(|x| unit_hash_u64(x).to_bits())
            .collect();
        us.sort_unstable();
        us.dedup();
        // 53 bits of resolution over 100k samples: collisions are possible in
        // principle but astronomically unlikely.
        assert_eq!(us.len(), 100_000);
    }
}
