//! Composition of the two hash functions into the tuple-identifier scheme
//! used by sketch construction: `g(k) = h_u(h(k))`.
//!
//! [`TupleHasher`] bundles a MurmurHash3 key hash `h` (32- or 64-bit) with
//! the Fibonacci unit-interval hash `h_u`. Every sketch in a corpus must be
//! built with the *same* `TupleHasher` configuration — otherwise sketches
//! are not joinable (the key identifiers would disagree). The configuration
//! is therefore serializable and carries an explicit seed.

use crate::fibonacci::{unit_hash_u32, unit_hash_u64};
use crate::murmur3::{murmur3_x64_128, murmur3_x86_32};

/// Width of the key-identifier hash `h`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HashBits {
    /// 32-bit MurmurHash3 (`murmur3_x86_32`) — the paper's configuration.
    ///
    /// Collisions start to matter beyond ~65k distinct keys per corpus
    /// (birthday bound), exactly as in the reference implementation.
    B32,
    /// 64-bit identifiers (low word of `murmur3_x64_128`) — the default.
    #[default]
    B64,
}

/// A hashed key: the tuple identifier `h(k)` stored inside a sketch.
///
/// Stored as `u64` regardless of [`HashBits`]; in 32-bit mode the upper
/// word is zero so identifiers from the two modes never mix silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KeyHash(pub u64);

impl KeyHash {
    /// Raw identifier value.
    #[inline]
    #[must_use]
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for KeyHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Anything that can hash raw key bytes to a [`KeyHash`].
///
/// Abstracting over this lets tests substitute adversarial or weak hashers
/// (e.g. the identity hash) to demonstrate how sketch quality depends on
/// hash quality.
pub trait KeyHasher {
    /// Hash raw key bytes into a tuple identifier.
    fn hash_bytes(&self, key: &[u8]) -> KeyHash;

    /// Map a tuple identifier into the unit interval (`h_u`).
    fn unit_hash(&self, id: KeyHash) -> f64;

    /// The full composition `g(k) = h_u(h(k))`, returning both the
    /// identifier and its unit-interval position.
    fn g(&self, key: &[u8]) -> (KeyHash, f64) {
        let id = self.hash_bytes(key);
        (id, self.unit_hash(id))
    }
}

/// The concrete hasher configuration used across a sketch corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TupleHasher {
    bits: HashBits,
    seed: u64,
}

impl Default for TupleHasher {
    fn default() -> Self {
        Self::new_64(0)
    }
}

impl TupleHasher {
    /// 64-bit configuration (recommended): `h` = low word of
    /// `murmur3_x64_128`, `h_u` = 64-bit Fibonacci hashing.
    #[must_use]
    pub const fn new_64(seed: u64) -> Self {
        Self {
            bits: HashBits::B64,
            seed,
        }
    }

    /// The paper's configuration: `h` = `murmur3_x86_32`, `h_u` = 32-bit
    /// Fibonacci hashing.
    #[must_use]
    pub const fn paper_32(seed: u32) -> Self {
        Self {
            bits: HashBits::B32,
            seed: seed as u64,
        }
    }

    /// Hash width of this configuration.
    #[must_use]
    pub const fn bits(&self) -> HashBits {
        self.bits
    }

    /// Seed of this configuration.
    #[must_use]
    pub const fn seed(&self) -> u64 {
        self.seed
    }
}

impl KeyHasher for TupleHasher {
    #[inline]
    fn hash_bytes(&self, key: &[u8]) -> KeyHash {
        match self.bits {
            HashBits::B32 => KeyHash(u64::from(murmur3_x86_32(key, self.seed as u32))),
            HashBits::B64 => KeyHash(murmur3_x64_128(key, self.seed).0),
        }
    }

    #[inline]
    fn unit_hash(&self, id: KeyHash) -> f64 {
        match self.bits {
            HashBits::B32 => unit_hash_u32(id.0 as u32),
            HashBits::B64 => unit_hash_u64(id.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_same_hash_across_instances() {
        let a = TupleHasher::new_64(7);
        let b = TupleHasher::new_64(7);
        assert_eq!(a.hash_bytes(b"2021-01"), b.hash_bytes(b"2021-01"));
        assert_eq!(a.g(b"2021-01"), b.g(b"2021-01"));
    }

    #[test]
    fn different_seeds_disagree() {
        let a = TupleHasher::new_64(1);
        let b = TupleHasher::new_64(2);
        assert_ne!(a.hash_bytes(b"key"), b.hash_bytes(b"key"));
    }

    #[test]
    fn paper_mode_uses_32_bits() {
        let h = TupleHasher::paper_32(0);
        let id = h.hash_bytes(b"zip-10001");
        assert!(id.0 <= u64::from(u32::MAX));
        let u = h.unit_hash(id);
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn g_is_consistent_with_parts() {
        let h = TupleHasher::new_64(3);
        let (id, u) = h.g(b"station-42");
        assert_eq!(id, h.hash_bytes(b"station-42"));
        assert!((u - h.unit_hash(id)).abs() == 0.0);
    }

    #[test]
    fn display_is_fixed_width_hex() {
        assert_eq!(format!("{}", KeyHash(0xabc)), "0000000000000abc");
    }

    #[test]
    fn distinct_keys_rarely_collide_in_64_bit_mode() {
        let h = TupleHasher::new_64(0);
        let mut ids: Vec<u64> = (0..200_000u32)
            .map(|i| h.hash_bytes(format!("key-{i}").as_bytes()).0)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 200_000);
    }
}
