//! From-scratch implementation of MurmurHash3 (Austin Appleby, public
//! domain), the key-identifier hash `h` of the paper (Section 3.4).
//!
//! Two variants are provided:
//!
//! * [`murmur3_x86_32`] — the 32-bit variant used by the paper's reference
//!   implementation.
//! * [`murmur3_x64_128`] — the 128-bit x64 variant; its low 64 bits are used
//!   by [`crate::key::KeyHasher`] when 64-bit identifiers are requested.
//!
//! Both are verified against the reference test vectors from the original
//! `smhasher` suite (see the tests at the bottom of this module).

/// 32-bit finalization mix ("fmix32") of MurmurHash3.
///
/// Forces all bits of a hash block to avalanche; also useful standalone as a
/// fast high-quality integer mixer.
#[inline]
#[must_use]
pub const fn fmix32(mut h: u32) -> u32 {
    h ^= h >> 16;
    h = h.wrapping_mul(0x85eb_ca6b);
    h ^= h >> 13;
    h = h.wrapping_mul(0xc2b2_ae35);
    h ^= h >> 16;
    h
}

/// 64-bit finalization mix ("fmix64") of MurmurHash3.
#[inline]
#[must_use]
pub const fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^= k >> 33;
    k
}

/// MurmurHash3_x86_32: hashes `data` with the given `seed` into 32 bits.
///
/// This is the exact function the paper uses for `h` ("the well-known
/// 32-bits MurmurHash3 function", Section 3.4).
#[must_use]
pub fn murmur3_x86_32(data: &[u8], seed: u32) -> u32 {
    const C1: u32 = 0xcc9e_2d51;
    const C2: u32 = 0x1b87_3593;

    let mut h1 = seed;
    let n_blocks = data.len() / 4;

    // Body: process 4-byte blocks.
    for block in data.chunks_exact(4) {
        let mut k1 = u32::from_le_bytes([block[0], block[1], block[2], block[3]]);
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(15);
        k1 = k1.wrapping_mul(C2);

        h1 ^= k1;
        h1 = h1.rotate_left(13);
        h1 = h1.wrapping_mul(5).wrapping_add(0xe654_6b64);
    }

    // Tail: up to 3 remaining bytes.
    let tail = &data[n_blocks * 4..];
    let mut k1: u32 = 0;
    if !tail.is_empty() {
        if tail.len() >= 3 {
            k1 ^= u32::from(tail[2]) << 16;
        }
        if tail.len() >= 2 {
            k1 ^= u32::from(tail[1]) << 8;
        }
        k1 ^= u32::from(tail[0]);
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(15);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
    }

    // Finalization.
    h1 ^= data.len() as u32;
    fmix32(h1)
}

/// MurmurHash3_x64_128: hashes `data` with the given `seed` into 128 bits,
/// returned as `(low64, high64)` matching the reference output order
/// `(h1, h2)`.
#[must_use]
pub fn murmur3_x64_128(data: &[u8], seed: u64) -> (u64, u64) {
    const C1: u64 = 0x87c3_7b91_1142_53d5;
    const C2: u64 = 0x4cf5_ad43_2745_937f;

    let mut h1 = seed;
    let mut h2 = seed;
    let n_blocks = data.len() / 16;

    // Body: process 16-byte blocks as two u64 lanes.
    for block in data.chunks_exact(16) {
        let mut k1 = u64::from_le_bytes(block[0..8].try_into().expect("8-byte slice"));
        let mut k2 = u64::from_le_bytes(block[8..16].try_into().expect("8-byte slice"));

        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
        h1 = h1.rotate_left(27);
        h1 = h1.wrapping_add(h2);
        h1 = h1.wrapping_mul(5).wrapping_add(0x52dc_e729);

        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;
        h2 = h2.rotate_left(31);
        h2 = h2.wrapping_add(h1);
        h2 = h2.wrapping_mul(5).wrapping_add(0x3849_5ab5);
    }

    // Tail: up to 15 remaining bytes.
    let tail = &data[n_blocks * 16..];
    let mut k1: u64 = 0;
    let mut k2: u64 = 0;
    for (i, &byte) in tail.iter().enumerate().rev() {
        match i {
            0..=7 => k1 ^= u64::from(byte) << (8 * i),
            8..=15 => k2 ^= u64::from(byte) << (8 * (i - 8)),
            _ => unreachable!("tail is at most 15 bytes"),
        }
    }
    if tail.len() > 8 {
        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;
    }
    if !tail.is_empty() {
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
    }

    // Finalization.
    h1 ^= data.len() as u64;
    h2 ^= data.len() as u64;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    (h1, h2)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference vectors from the original MurmurHash3 (smhasher) suite and
    // the widely-cited Wikipedia table.
    #[test]
    fn x86_32_reference_vectors_seed_zero() {
        assert_eq!(murmur3_x86_32(b"", 0), 0x0000_0000);
        assert_eq!(murmur3_x86_32(b"", 1), 0x514e_28b7);
        assert_eq!(murmur3_x86_32(b"", 0xffff_ffff), 0x81f1_6f39);
    }

    #[test]
    fn x86_32_reference_vectors_seed_9747b28c() {
        let seed = 0x9747_b28c;
        assert_eq!(murmur3_x86_32(b"aaaa", seed), 0x5a97_808a);
        assert_eq!(murmur3_x86_32(b"aaa", seed), 0x283e_0130);
        assert_eq!(murmur3_x86_32(b"aa", seed), 0x5d21_1726);
        assert_eq!(murmur3_x86_32(b"a", seed), 0x7fa0_9ea6);
        assert_eq!(murmur3_x86_32(b"abcd", seed), 0xf047_8627);
        assert_eq!(murmur3_x86_32(b"abc", seed), 0xc84a_62dd);
        assert_eq!(murmur3_x86_32(b"ab", seed), 0x7487_5592);
        assert_eq!(murmur3_x86_32(b"Hello, world!", seed), 0x2488_4cba);
        assert_eq!(
            murmur3_x86_32(b"The quick brown fox jumps over the lazy dog", seed),
            0x2fa8_26cd
        );
    }

    #[test]
    fn x86_32_four_zero_bytes() {
        assert_eq!(murmur3_x86_32(&[0, 0, 0, 0], 0), 0x2362_f9de);
    }

    #[test]
    fn x64_128_empty_seed_zero_is_zero() {
        assert_eq!(murmur3_x64_128(b"", 0), (0, 0));
    }

    #[test]
    fn x64_128_reference_vectors() {
        // Vectors cross-checked against the C++ reference implementation.
        assert_eq!(
            murmur3_x64_128(b"hello", 0),
            (0xcbd8_a7b3_41bd_9b02, 0x5b1e_906a_48ae_1d19)
        );
        assert_eq!(
            murmur3_x64_128(b"hello, world", 0),
            (0x342f_ac62_3a5e_bc8e, 0x4cdc_bc07_9642_414d)
        );
        assert_eq!(
            murmur3_x64_128(b"The quick brown fox jumps over the lazy dog", 0),
            (0xe34b_bc7b_bc07_1b6c, 0x7a43_3ca9_c49a_9347)
        );
    }

    #[test]
    fn x64_128_seed_changes_output() {
        let a = murmur3_x64_128(b"correlation", 1);
        let b = murmur3_x64_128(b"correlation", 2);
        assert_ne!(a, b);
    }

    #[test]
    fn x86_32_all_tail_lengths_are_deterministic() {
        // Exercise every tail length (0..=3 residual bytes).
        let data = b"abcdefghijk";
        for len in 0..=data.len() {
            let h1 = murmur3_x86_32(&data[..len], 42);
            let h2 = murmur3_x86_32(&data[..len], 42);
            assert_eq!(h1, h2, "len={len}");
        }
    }

    #[test]
    fn x64_128_all_tail_lengths_are_deterministic() {
        let data = b"abcdefghijklmnopqrstuvwxyz0123456789";
        for len in 0..=data.len() {
            let h1 = murmur3_x64_128(&data[..len], 42);
            let h2 = murmur3_x64_128(&data[..len], 42);
            assert_eq!(h1, h2, "len={len}");
        }
    }

    #[test]
    fn fmix64_is_a_bijection_on_samples() {
        // fmix64 is invertible; sampled values must therefore be distinct.
        let mut outs: Vec<u64> = (0u64..10_000).map(fmix64).collect();
        outs.sort_unstable();
        outs.dedup();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn fmix32_zero_maps_to_zero() {
        assert_eq!(fmix32(0), 0);
        assert_eq!(fmix64(0), 0);
    }
}
