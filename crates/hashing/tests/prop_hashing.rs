//! Property-based tests for the hash substrate.

use proptest::prelude::*;
use sketch_hashing::{
    fib_hash_u64, murmur3_x64_128, murmur3_x86_32, unit_hash_u64, KeyHasher, TupleHasher,
};

proptest! {
    /// Hashing is a pure function of (bytes, seed).
    #[test]
    fn murmur3_is_deterministic(data in proptest::collection::vec(any::<u8>(), 0..256), seed in any::<u32>()) {
        prop_assert_eq!(murmur3_x86_32(&data, seed), murmur3_x86_32(&data, seed));
        prop_assert_eq!(
            murmur3_x64_128(&data, u64::from(seed)),
            murmur3_x64_128(&data, u64::from(seed))
        );
    }

    /// Appending a byte changes the hash (no trivial prefix collisions).
    #[test]
    fn extension_changes_hash(data in proptest::collection::vec(any::<u8>(), 0..128), byte in any::<u8>()) {
        let mut extended = data.clone();
        extended.push(byte);
        prop_assert_ne!(murmur3_x64_128(&data, 0), murmur3_x64_128(&extended, 0));
    }

    /// Single-bit flips flip roughly half the output bits (avalanche).
    #[test]
    fn avalanche_on_bit_flip(data in proptest::collection::vec(any::<u8>(), 1..64), bit in 0usize..8, idx_seed in any::<u64>()) {
        let idx = (idx_seed as usize) % data.len();
        let mut flipped = data.clone();
        flipped[idx] ^= 1 << bit;
        let a = murmur3_x86_32(&data, 0);
        let b = murmur3_x86_32(&flipped, 0);
        let diff = (a ^ b).count_ones();
        // Expect ~16 differing bits; demand at least 4 (p(<4) < 1e-5).
        prop_assert!(diff >= 4, "only {diff} bits differ");
    }

    /// The unit hash always lies in [0, 1).
    #[test]
    fn unit_hash_in_range(x in any::<u64>()) {
        let u = unit_hash_u64(x);
        prop_assert!((0.0..1.0).contains(&u));
    }

    /// Fibonacci hashing is injective (it is an odd multiplier mod 2^64).
    #[test]
    fn fib_hash_injective(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        prop_assert_ne!(fib_hash_u64(a), fib_hash_u64(b));
    }

    /// g(k) is consistent across hasher instances with the same config
    /// and inconsistent across seeds.
    #[test]
    fn tuple_hasher_config_determinism(key in proptest::collection::vec(any::<u8>(), 1..64), seed in any::<u64>()) {
        let a = TupleHasher::new_64(seed);
        let b = TupleHasher::new_64(seed);
        prop_assert_eq!(a.g(&key), b.g(&key));
        let c = TupleHasher::new_64(seed.wrapping_add(1));
        prop_assert_ne!(a.hash_bytes(&key), c.hash_bytes(&key));
    }

    /// 32-bit mode identifiers always fit in 32 bits.
    #[test]
    fn paper_mode_fits_u32(key in proptest::collection::vec(any::<u8>(), 0..64)) {
        let h = TupleHasher::paper_32(7);
        prop_assert!(h.hash_bytes(&key).value() <= u64::from(u32::MAX));
    }
}
