//! Single-pass sketch construction (paper Sections 3.1 and 3.4).
//!
//! The builder performs one pass over the key/value rows while maintaining
//! the tuples with minimum `g(k) = h_u(h(k))` — the paper's "tree-based
//! algorithm similar to the one described in [Beyer et al.]", realized here
//! as a max-heap over unit hashes plus a hash map for streaming
//! repeated-key aggregation. Both selection strategies discussed in the
//! paper are implemented:
//!
//! * [`SelectionStrategy::FixedSize`] — keep the `n` smallest (the paper's
//!   choice: predictable space and query latency);
//! * [`SelectionStrategy::Threshold`] — keep every key with `g(k) ≤ t`
//!   (the G-KMV-style variable-size strategy the paper lists as an
//!   alternative/future-work design, used here for ablations).

use std::cmp::Ordering;

use sketch_hashing::{KeyHash, TupleHasher};
use sketch_table::{Aggregation, ColumnPair};

use crate::sketch::CorrelationSketch;

/// Which tuples are retained in the sketch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectionStrategy {
    /// Keep the `n` tuples with smallest unit hash (the paper's strategy).
    FixedSize(usize),
    /// Keep every tuple with unit hash `≤ t` (G-KMV-style). Expected
    /// sketch size is `t · D` for `D` distinct keys.
    Threshold(f64),
}

impl SelectionStrategy {
    /// Human-readable description for reports.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            Self::FixedSize(n) => format!("fixed-size(n={n})"),
            Self::Threshold(t) => format!("threshold(t={t:.4})"),
        }
    }
}

/// Full configuration of a sketch build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SketchConfig {
    /// Tuple selection strategy.
    pub strategy: SelectionStrategy,
    /// Hash functions `h` and `h_u` (must be identical corpus-wide).
    pub hasher: TupleHasher,
    /// Aggregation applied to repeated keys (paper Figure 1 uses mean).
    pub aggregation: Aggregation,
}

impl SketchConfig {
    /// The paper's default setup: fixed sketch size `n`, mean aggregation,
    /// 64-bit hashing with seed 0.
    #[must_use]
    pub fn with_size(n: usize) -> Self {
        Self {
            strategy: SelectionStrategy::FixedSize(n),
            hasher: TupleHasher::default(),
            aggregation: Aggregation::Mean,
        }
    }

    /// G-KMV-style configuration with inclusion threshold `t ∈ (0, 1]`.
    #[must_use]
    pub fn with_threshold(t: f64) -> Self {
        Self {
            strategy: SelectionStrategy::Threshold(t),
            hasher: TupleHasher::default(),
            aggregation: Aggregation::Mean,
        }
    }

    /// Replace the aggregation.
    #[must_use]
    pub fn aggregation(mut self, agg: Aggregation) -> Self {
        self.aggregation = agg;
        self
    }

    /// Replace the hasher.
    #[must_use]
    pub fn hasher(mut self, hasher: TupleHasher) -> Self {
        self.hasher = hasher;
        self
    }
}

/// Heap entry ordered by `(unit hash, key hash)` — a strict total order,
/// so eviction decisions are unambiguous and a once-evicted key can never
/// re-enter (its unit hash can only compare `≥` the shrinking heap
/// maximum). This is what makes the streaming build equivalent to
/// aggregate-then-sketch (tested below).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct HeapKey {
    pub(crate) unit: f64,
    pub(crate) key: KeyHash,
}

impl Eq for HeapKey {}

impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.unit
            .total_cmp(&other.unit)
            .then(self.key.cmp(&other.key))
    }
}

impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Builds [`CorrelationSketch`]es from key/value streams in a single pass.
#[derive(Debug, Clone)]
pub struct SketchBuilder {
    config: SketchConfig,
}

impl SketchBuilder {
    /// Create a builder with the given configuration.
    #[must_use]
    pub fn new(config: SketchConfig) -> Self {
        Self { config }
    }

    /// The builder's configuration.
    #[must_use]
    pub fn config(&self) -> &SketchConfig {
        &self.config
    }

    /// Build a sketch for a table's `⟨K, X⟩` column pair.
    #[must_use]
    pub fn build(&self, pair: &ColumnPair) -> CorrelationSketch {
        self.build_from_rows(pair.id(), pair.rows())
    }

    /// Build a sketch from an arbitrary stream of `(key, value)` rows.
    ///
    /// One pass, `O(sketch size)` memory: repeated keys are aggregated
    /// in-stream (`x_k^t = f(x_k, x_k^{t−1})`, Section 3.1).
    #[must_use]
    pub fn build_from_rows<'a>(
        &self,
        id: String,
        rows: impl Iterator<Item = (&'a str, f64)>,
    ) -> CorrelationSketch {
        let mut streaming = crate::stream::StreamingSketchBuilder::new(id, self.config);
        for (key, value) in rows {
            streaming.push(key, value);
        }
        streaming.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketch_hashing::KeyHasher as _;
    use std::collections::HashSet;

    fn pair(keys: Vec<&str>, values: Vec<f64>) -> ColumnPair {
        ColumnPair::new(
            "t",
            "k",
            "v",
            keys.into_iter().map(String::from).collect(),
            values,
        )
    }

    fn range_pair(n: usize) -> ColumnPair {
        ColumnPair::new(
            "t",
            "k",
            "v",
            (0..n).map(|i| format!("key-{i}")).collect(),
            (0..n).map(|i| i as f64).collect(),
        )
    }

    #[test]
    fn sketch_keeps_n_smallest_unit_hashes() {
        let n = 50;
        let p = range_pair(2000);
        let cfg = SketchConfig::with_size(n);
        let s = SketchBuilder::new(cfg).build(&p);
        assert_eq!(s.len(), n);

        // Brute-force the n smallest unit hashes.
        let hasher = cfg.hasher;
        let mut all: Vec<(f64, KeyHash)> = p
            .keys
            .iter()
            .map(|k| {
                let (kh, u) = hasher.g(k.as_bytes());
                (u, kh)
            })
            .collect();
        all.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let expected: HashSet<KeyHash> = all[..n].iter().map(|(_, kh)| *kh).collect();
        let got: HashSet<KeyHash> = s.entries().iter().map(|e| e.key).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn streaming_aggregation_equals_aggregate_then_sketch() {
        // Repeated keys interleaved arbitrarily: the streaming build must
        // match pre-aggregating with the same function, for every
        // aggregation.
        let keys = vec![
            "a", "b", "a", "c", "b", "a", "d", "e", "c", "f", "a", "g", "b",
        ];
        let values = vec![
            1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0,
        ];
        for agg in Aggregation::ALL {
            let cfg = SketchConfig::with_size(4).aggregation(agg);
            let streamed = SketchBuilder::new(cfg).build(&pair(keys.clone(), values.clone()));

            // Pre-aggregate per distinct key (stream order), then sketch
            // the deduplicated pairs.
            let mut order: Vec<&str> = Vec::new();
            let mut groups: std::collections::HashMap<&str, Vec<f64>> = Default::default();
            for (k, v) in keys.iter().zip(&values) {
                if !groups.contains_key(*k) {
                    order.push(k);
                }
                groups.entry(k).or_default().push(*v);
            }
            let agg_keys: Vec<&str> = order.clone();
            let agg_vals: Vec<f64> = order
                .iter()
                .map(|k| agg.aggregate_slice(&groups[*k]).unwrap())
                .collect();
            // Keys are distinct after pre-aggregation, so build the
            // reference sketch with an identity aggregation (re-applying
            // e.g. Count would re-collapse the already-aggregated values).
            let ref_cfg = SketchConfig::with_size(4).aggregation(Aggregation::First);
            let preagg = SketchBuilder::new(ref_cfg).build(&pair(agg_keys, agg_vals));

            assert_eq!(streamed.entries(), preagg.entries(), "agg={agg}");
        }
    }

    #[test]
    fn evicted_key_cannot_resurface_with_fresh_state() {
        // Adversarial order: a key appears, gets evicted by smaller hashes,
        // then reappears — it must stay out (otherwise its aggregate would
        // be wrong). We synthesize this by replaying a large key set twice.
        let n = 8;
        let keys: Vec<String> = (0..200).map(|i| format!("key-{i}")).collect();
        let twice: Vec<&str> = keys
            .iter()
            .map(String::as_str)
            .chain(keys.iter().map(String::as_str))
            .collect();
        let values: Vec<f64> = (0..400).map(f64::from).collect();
        let cfg = SketchConfig::with_size(n).aggregation(Aggregation::Count);
        let s = SketchBuilder::new(cfg).build(&pair(twice, values));
        assert_eq!(s.len(), n);
        // Every retained key was seen exactly twice.
        for e in s.entries() {
            assert_eq!(e.value, 2.0, "key {:?} has wrong count", e.key);
        }
    }

    #[test]
    fn row_order_does_not_change_the_sketch_for_order_free_aggregations() {
        let p = range_pair(500);
        let mut rev_keys = p.keys.clone();
        rev_keys.reverse();
        let mut rev_vals = p.values.clone();
        rev_vals.reverse();
        let p_rev = ColumnPair::new("t", "k", "v", rev_keys, rev_vals);
        for agg in [
            Aggregation::Mean,
            Aggregation::Sum,
            Aggregation::Min,
            Aggregation::Max,
        ] {
            let cfg = SketchConfig::with_size(32).aggregation(agg);
            let a = SketchBuilder::new(cfg).build(&p);
            let b = SketchBuilder::new(cfg).build(&p_rev);
            assert_eq!(a.entries(), b.entries(), "agg={agg}");
        }
    }

    #[test]
    fn zero_size_sketch_is_empty() {
        let s = SketchBuilder::new(SketchConfig::with_size(0)).build(&range_pair(10));
        assert!(s.is_empty());
        assert!(s.is_saturated());
        assert_eq!(s.rows_scanned(), 10);
    }

    #[test]
    fn threshold_strategy_keeps_exactly_keys_below_t() {
        let t = 0.1;
        let p = range_pair(5000);
        let cfg = SketchConfig::with_threshold(t);
        let s = SketchBuilder::new(cfg).build(&p);
        assert!(s.is_saturated());
        // Every retained key's unit hash ≤ t, and the count matches a
        // brute-force filter.
        let hasher = cfg.hasher;
        let expected = p
            .keys
            .iter()
            .filter(|k| hasher.g(k.as_bytes()).1 <= t)
            .count();
        assert_eq!(s.len(), expected);
        for e in s.entries() {
            assert!(s.unit_hash(e) <= t);
        }
        // Expected size ≈ t·D within 20%.
        let expected_size = t * 5000.0;
        assert!((s.len() as f64 - expected_size).abs() < 0.2 * expected_size);
    }

    #[test]
    fn threshold_one_keeps_all_keys() {
        let p = range_pair(300);
        let s = SketchBuilder::new(SketchConfig::with_threshold(1.0)).build(&p);
        assert_eq!(s.len(), 300);
        assert!(!s.is_saturated());
    }

    #[test]
    fn different_seeds_select_different_keys() {
        let p = range_pair(1000);
        let a = SketchBuilder::new(SketchConfig::with_size(32).hasher(TupleHasher::new_64(1)))
            .build(&p);
        let b = SketchBuilder::new(SketchConfig::with_size(32).hasher(TupleHasher::new_64(2)))
            .build(&p);
        let ka: HashSet<KeyHash> = a.entries().iter().map(|e| e.key).collect();
        let kb: HashSet<KeyHash> = b.entries().iter().map(|e| e.key).collect();
        assert_ne!(ka, kb);
    }

    #[test]
    fn paper_32bit_mode_builds_valid_sketches() {
        let p = range_pair(1000);
        let cfg = SketchConfig::with_size(64).hasher(TupleHasher::paper_32(0));
        let s = SketchBuilder::new(cfg).build(&p);
        assert_eq!(s.len(), 64);
        for e in s.entries() {
            assert!(e.key.value() <= u64::from(u32::MAX));
        }
    }

    #[test]
    fn describe_strategies() {
        assert_eq!(
            SelectionStrategy::FixedSize(256).describe(),
            "fixed-size(n=256)"
        );
        assert!(SelectionStrategy::Threshold(0.5).describe().contains("0.5"));
    }
}
