//! Merging sketches built over *partitions of the same column pair*
//! (KMV's `⊕` combinator, paper Section 2.1, extended to carry values).
//!
//! Large tables are often ingested in shards; each shard can be sketched
//! independently and the shard sketches combined. The KMV side is exact:
//! if a key is among the `n` smallest unit hashes of the union, it is
//! among the `n` smallest of every partition it appears in, so every
//! retained key's value state is available from each contributing shard.
//!
//! The *value* side requires the aggregation to be **decomposable**:
//! `f(A ∪ B) = f(f(A), f(B))` — true for `Sum`, `Min`, `Max`, `Count`;
//! false for `Mean`, `First`, `Last` (they would need per-key counts or
//! stream positions, which the sketch does not store). Merging with a
//! non-decomposable aggregation is rejected at runtime.

use sketch_table::Aggregation;

use crate::builder::SelectionStrategy;
use crate::error::SketchError;
use crate::sketch::{CorrelationSketch, SketchEntry};

/// Can partition sketches with this aggregation be merged exactly?
#[must_use]
pub fn is_decomposable(agg: Aggregation) -> bool {
    matches!(
        agg,
        Aggregation::Sum | Aggregation::Min | Aggregation::Max | Aggregation::Count
    )
}

fn combine_values(agg: Aggregation, a: f64, b: f64) -> f64 {
    match agg {
        Aggregation::Sum | Aggregation::Count => a + b,
        Aggregation::Min => a.min(b),
        Aggregation::Max => a.max(b),
        // Checked by the caller.
        Aggregation::Mean | Aggregation::First | Aggregation::Last => {
            unreachable!("non-decomposable aggregation")
        }
    }
}

/// Merge two sketches built over disjoint partitions of the same column
/// pair into the sketch of the concatenated data.
///
/// Requirements: identical hasher, aggregation and strategy; the
/// aggregation must be [decomposable](is_decomposable). The result is
/// *exactly* the sketch that a single pass over the concatenated
/// partitions would produce (tested below).
///
/// ```
/// use correlation_sketches::{merge_partition_sketches, SketchBuilder, SketchConfig};
/// use sketch_table::{Aggregation, ColumnPair};
///
/// let cfg = SketchConfig::with_size(64).aggregation(Aggregation::Sum);
/// let builder = SketchBuilder::new(cfg);
/// let keys = |r: std::ops::Range<usize>| -> Vec<String> {
///     r.map(|i| format!("key-{i}")).collect()
/// };
/// let a = ColumnPair::new("t", "k", "v", keys(0..500), vec![1.0; 500]);
/// let b = ColumnPair::new("t", "k", "v", keys(250..750), vec![1.0; 500]);
///
/// let merged = merge_partition_sketches(&builder.build(&a), &builder.build(&b)).unwrap();
///
/// // Identical to sketching the concatenated shards in one pass.
/// let concat = ColumnPair::new(
///     "t", "k", "v",
///     [keys(0..500), keys(250..750)].concat(),
///     vec![1.0; 1000],
/// );
/// assert_eq!(merged.entries(), builder.build(&concat).entries());
/// ```
///
/// # Errors
///
/// * [`SketchError::HasherMismatch`] for differing hasher configurations,
///   strategies, or aggregations.
/// * [`SketchError::Corrupt`] for non-decomposable aggregations (the
///   merge would be silently wrong; we refuse instead).
pub fn merge_partition_sketches(
    a: &CorrelationSketch,
    b: &CorrelationSketch,
) -> Result<CorrelationSketch, SketchError> {
    if a.hasher() != b.hasher()
        || a.strategy() != b.strategy()
        || a.aggregation() != b.aggregation()
    {
        return Err(SketchError::HasherMismatch);
    }
    let agg = a.aggregation();
    if !is_decomposable(agg) {
        return Err(SketchError::Corrupt(format!(
            "aggregation '{agg}' is not decomposable; partition merge would be incorrect \
             (store shard counts or use sum/min/max/count)"
        )));
    }

    // Merge-walk the two sorted entry lists, combining values on common
    // keys; both lists are ordered by (unit hash, key). The cached unit
    // hashes drive the comparisons and are carried into the result, so
    // merging rehashes nothing.
    let (ea, eb) = (a.entries(), b.entries());
    let (ua_all, ub_all) = (a.units(), b.units());
    let mut merged: Vec<SketchEntry> = Vec::with_capacity(ea.len() + eb.len());
    let mut merged_units: Vec<f64> = Vec::with_capacity(ea.len() + eb.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < ea.len() && j < eb.len() {
        match ua_all[i]
            .total_cmp(&ub_all[j])
            .then(ea[i].key.cmp(&eb[j].key))
        {
            std::cmp::Ordering::Equal => {
                merged.push(SketchEntry {
                    key: ea[i].key,
                    value: combine_values(agg, ea[i].value, eb[j].value),
                });
                merged_units.push(ua_all[i]);
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => {
                merged.push(ea[i]);
                merged_units.push(ua_all[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                merged.push(eb[j]);
                merged_units.push(ub_all[j]);
                j += 1;
            }
        }
    }
    merged.extend_from_slice(&ea[i..]);
    merged_units.extend_from_slice(&ua_all[i..]);
    merged.extend_from_slice(&eb[j..]);
    merged_units.extend_from_slice(&ub_all[j..]);

    // Enforce the selection rule on the union.
    let mut saturated = a.is_saturated() || b.is_saturated();
    if let SelectionStrategy::FixedSize(n) = a.strategy() {
        if merged.len() > n {
            merged.truncate(n);
            merged_units.truncate(n);
            saturated = true;
        }
    }

    let bounds = match (a.value_bounds(), b.value_bounds()) {
        (Some(ba), Some(bb)) => Some(sketch_stats::ValueBounds::union(ba, bb)),
        (one, two) => one.or(two),
    };

    Ok(CorrelationSketch {
        id: a.id().to_string(),
        hasher: a.hasher(),
        aggregation: agg,
        strategy: a.strategy(),
        entries: merged,
        units: merged_units,
        bounds,
        rows_scanned: a.rows_scanned() + b.rows_scanned(),
        saturated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{SketchBuilder, SketchConfig};
    use sketch_table::ColumnPair;

    fn shard(range: std::ops::Range<usize>, reps: usize) -> ColumnPair {
        // Repeated keys inside each shard and keys shared across shards.
        let mut keys = Vec::new();
        let mut vals = Vec::new();
        for r in 0..reps {
            for i in range.clone() {
                keys.push(format!("key-{i}"));
                vals.push((i * (r + 1)) as f64);
            }
        }
        ColumnPair::new("t", "k", "v", keys, vals)
    }

    fn concat(a: &ColumnPair, b: &ColumnPair) -> ColumnPair {
        let mut keys = a.keys.clone();
        keys.extend(b.keys.iter().cloned());
        let mut vals = a.values.clone();
        vals.extend(b.values.iter().cloned());
        ColumnPair::new("t", "k", "v", keys, vals)
    }

    #[test]
    fn merge_equals_single_pass_for_every_decomposable_aggregation() {
        let pa = shard(0..800, 2);
        let pb = shard(400..1200, 3); // overlapping key ranges
        let whole = concat(&pa, &pb);
        for agg in [
            Aggregation::Sum,
            Aggregation::Min,
            Aggregation::Max,
            Aggregation::Count,
        ] {
            let cfg = SketchConfig::with_size(64).aggregation(agg);
            let builder = SketchBuilder::new(cfg);
            let merged =
                merge_partition_sketches(&builder.build(&pa), &builder.build(&pb)).unwrap();
            let direct = builder.build(&whole);
            assert_eq!(merged.entries(), direct.entries(), "agg={agg}");
            assert_eq!(merged.rows_scanned(), direct.rows_scanned());
            assert_eq!(merged.value_bounds(), direct.value_bounds());
            assert_eq!(merged.is_saturated(), direct.is_saturated());
        }
    }

    #[test]
    fn merge_with_disjoint_keys() {
        let pa = shard(0..100, 1);
        let pb = shard(100..200, 1);
        let cfg = SketchConfig::with_size(512).aggregation(Aggregation::Sum);
        let builder = SketchBuilder::new(cfg);
        let merged = merge_partition_sketches(&builder.build(&pa), &builder.build(&pb)).unwrap();
        assert_eq!(merged.len(), 200);
        assert!(!merged.is_saturated());
    }

    #[test]
    fn mean_merge_is_rejected() {
        let p = shard(0..50, 1);
        let builder =
            SketchBuilder::new(SketchConfig::with_size(16).aggregation(Aggregation::Mean));
        let s = builder.build(&p);
        assert!(matches!(
            merge_partition_sketches(&s, &s),
            Err(SketchError::Corrupt(_))
        ));
    }

    #[test]
    fn config_mismatches_are_rejected() {
        let p = shard(0..50, 1);
        let a =
            SketchBuilder::new(SketchConfig::with_size(16).aggregation(Aggregation::Sum)).build(&p);
        let b =
            SketchBuilder::new(SketchConfig::with_size(32).aggregation(Aggregation::Sum)).build(&p);
        assert_eq!(
            merge_partition_sketches(&a, &b),
            Err(SketchError::HasherMismatch)
        );
        let c = SketchBuilder::new(
            SketchConfig::with_size(16)
                .aggregation(Aggregation::Sum)
                .hasher(sketch_hashing::TupleHasher::new_64(9)),
        )
        .build(&p);
        assert_eq!(
            merge_partition_sketches(&a, &c),
            Err(SketchError::HasherMismatch)
        );
    }

    #[test]
    fn threshold_sketches_merge_too() {
        let pa = shard(0..2000, 1);
        let pb = shard(1000..3000, 1);
        let whole = concat(&pa, &pb);
        let cfg = SketchConfig::with_threshold(0.05).aggregation(Aggregation::Max);
        let builder = SketchBuilder::new(cfg);
        let merged = merge_partition_sketches(&builder.build(&pa), &builder.build(&pb)).unwrap();
        let direct = builder.build(&whole);
        assert_eq!(merged.entries(), direct.entries());
    }

    #[test]
    fn merged_sketch_still_joins() {
        use crate::join::join_sketches;
        let pa = shard(0..1000, 1);
        let pb = shard(1000..2000, 1);
        let cfg = SketchConfig::with_size(128).aggregation(Aggregation::Sum);
        let builder = SketchBuilder::new(cfg);
        let merged = merge_partition_sketches(&builder.build(&pa), &builder.build(&pb)).unwrap();
        let other = builder.build(&shard(0..2000, 1));
        let sample = join_sketches(&merged, &other).unwrap();
        assert_eq!(sample.len(), 128);
    }

    #[test]
    fn decomposability_predicate() {
        assert!(is_decomposable(Aggregation::Sum));
        assert!(is_decomposable(Aggregation::Count));
        assert!(!is_decomposable(Aggregation::Mean));
        assert!(!is_decomposable(Aggregation::First));
        assert!(!is_decomposable(Aggregation::Last));
    }
}
