//! Sketch joins: reconstructing a uniform random sample of the joined
//! table (paper Section 3.2, Theorem 1) and estimating statistics on it.

use sketch_hashing::KeyHash;
use sketch_stats::{
    fisher_z_se, hfd_interval, hoeffding_interval, pm1_ci, ConfidenceInterval,
    CorrelationEstimator, StatsError, ValueBounds,
};

use crate::error::SketchError;
use crate::sketch::CorrelationSketch;

/// The joined sketch `L_{X⨝Y}`: paired numeric values for every key
/// present in both sketches, together with the metadata needed for the
/// Section 4 risk statistics.
///
/// By Theorem 1 the pairs `(x[i], y[i])` form a uniform random sample of
/// the full joined table `T_{X⨝Y}`, so any sample statistic computed on
/// them is a valid estimator.
/// The columns are stored structure-of-arrays: `x`/`y` are contiguous
/// `f64` slices the estimator kernels (`sketch_stats::kernel`) consume
/// directly, with no row-wise intermediary. [`join_sketches_into`]
/// refills an existing sample in place so the query hot path can reuse
/// one buffer per worker across candidates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JoinSample {
    /// Hashed keys of the joined rows, ascending by unit hash.
    pub key_hashes: Vec<KeyHash>,
    /// Values from the left sketch, aligned with `key_hashes`.
    pub x: Vec<f64>,
    /// Values from the right sketch, aligned with `key_hashes`.
    pub y: Vec<f64>,
    /// Union of the two full-column value ranges — the `C_low`/`C_high`
    /// inputs of the Hoeffding interval. `None` if either column was
    /// empty.
    pub bounds: Option<ValueBounds>,
}

impl JoinSample {
    /// Number of joined rows (the "sketch intersection size" of Figure 4).
    #[must_use]
    pub fn len(&self) -> usize {
        self.key_hashes.len()
    }

    /// True when no keys were shared.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.key_hashes.is_empty()
    }

    /// Estimate the after-join correlation with the given estimator.
    ///
    /// # Errors
    ///
    /// Propagates the estimator's [`StatsError`]s (too few samples, zero
    /// variance, …).
    pub fn estimate(&self, estimator: CorrelationEstimator) -> Result<f64, StatsError> {
        estimator.estimate(&self.x, &self.y)
    }

    /// The paper's distribution-free Hoeffding confidence interval
    /// (Section 4.3) at total failure probability `alpha`.
    ///
    /// # Errors
    ///
    /// [`StatsError`] if the sample is unusable (empty, non-finite).
    pub fn hoeffding_ci(&self, alpha: f64) -> Result<ConfidenceInterval, StatsError> {
        let bounds = self
            .bounds
            .ok_or(StatsError::TooFewSamples { needed: 1, got: 0 })?;
        hoeffding_interval(&self.x, &self.y, bounds, alpha)
    }

    /// The HFD small-sample variant (sample standard deviations in the
    /// denominator) whose length feeds the `ci_h` ranking factor.
    ///
    /// # Errors
    ///
    /// [`StatsError`] if the sample is unusable.
    pub fn hfd_ci(&self, alpha: f64) -> Result<ConfidenceInterval, StatsError> {
        let bounds = self
            .bounds
            .ok_or(StatsError::TooFewSamples { needed: 1, got: 0 })?;
        hfd_interval(&self.x, &self.y, bounds, alpha)
    }

    /// The empirical-Bernstein interval — the "tighter confidence bounds"
    /// extension of paper Section 7: variance-aware, still
    /// distribution-free and O(1) after the data pass. Tighter than
    /// [`Self::hoeffding_ci`] whenever the columns' spread is small
    /// relative to their range.
    ///
    /// # Errors
    ///
    /// [`StatsError`] if the sample is unusable.
    pub fn bernstein_ci(&self, alpha: f64) -> Result<ConfidenceInterval, StatsError> {
        let bounds = self
            .bounds
            .ok_or(StatsError::TooFewSamples { needed: 2, got: 0 })?;
        sketch_stats::bernstein_interval(&self.x, &self.y, bounds, alpha)
    }

    /// Fisher's z standard error `1/√(max(4,n) − 3)` of this sample size.
    #[must_use]
    pub fn fisher_se(&self) -> f64 {
        fisher_z_se(self.len())
    }

    /// PM1 modified percentile bootstrap interval on this sample.
    ///
    /// # Errors
    ///
    /// [`StatsError`] if the sample is degenerate.
    pub fn pm1_ci(&self, seed: u64) -> Result<ConfidenceInterval, StatsError> {
        pm1_ci(&self.x, &self.y, seed)
    }

    /// One-call summary: estimate plus every Section 4 risk statistic.
    ///
    /// # Errors
    ///
    /// [`StatsError`] if the sample is too small or degenerate for the
    /// chosen estimator.
    pub fn report(
        &self,
        estimator: CorrelationEstimator,
        alpha: f64,
    ) -> Result<EstimateReport, StatsError> {
        Ok(EstimateReport {
            estimate: self.estimate(estimator)?,
            estimator,
            sample_size: self.len(),
            hoeffding: self.hoeffding_ci(alpha)?,
            hfd_length: self.hfd_ci(alpha)?.length(),
            fisher_se: self.fisher_se(),
        })
    }
}

/// Everything a caller usually wants from one sketch-join estimate: the
/// point estimate and the Section 4 uncertainty statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateReport {
    /// The correlation estimate.
    pub estimate: f64,
    /// Which estimator produced it.
    pub estimator: CorrelationEstimator,
    /// Join-sample size `n`.
    pub sample_size: usize,
    /// Distribution-free Hoeffding interval (clamped to `[−1, 1]`).
    pub hoeffding: ConfidenceInterval,
    /// Length of the (unclamped) HFD interval — the `ci_h` risk signal.
    pub hfd_length: f64,
    /// Fisher's z standard error `1/√(max(4,n) − 3)`.
    pub fisher_se: f64,
}

/// Join two sketches on their hashed keys, producing the reconstructed
/// uniform sample `L_{X⨝Y}` (Figure 2, right).
///
/// Runs in `O(|a| + |b|)`: both entry lists are sorted by
/// `(unit hash, key)`, so a single merge walk finds the intersection.
///
/// # Errors
///
/// [`SketchError::HasherMismatch`] when the sketches were built with
/// different hasher configurations (their key identifiers are
/// incomparable).
pub fn join_sketches(
    a: &CorrelationSketch,
    b: &CorrelationSketch,
) -> Result<JoinSample, SketchError> {
    let mut out = JoinSample::default();
    join_sketches_into(a, b, &mut out)?;
    Ok(out)
}

/// As [`join_sketches`], refilling a caller-owned [`JoinSample`] instead
/// of allocating one. `out` is cleared and overwritten unconditionally
/// (its capacity is reused), so the result is identical to
/// [`join_sketches`] for every prior state of `out` — the engine's
/// stage-2 pass runs one buffer per worker across all candidates.
///
/// # Errors
///
/// [`SketchError::HasherMismatch`] when the sketches were built with
/// different hasher configurations.
pub fn join_sketches_into(
    a: &CorrelationSketch,
    b: &CorrelationSketch,
    out: &mut JoinSample,
) -> Result<(), SketchError> {
    out.key_hashes.clear();
    out.x.clear();
    out.y.clear();
    out.bounds = None;
    if a.hasher() != b.hasher() {
        return Err(SketchError::HasherMismatch);
    }

    let ea = a.entries();
    let eb = b.entries();
    // Cached unit hashes drive the merge walk — the hot path of every
    // query rehashes nothing.
    let (ua_all, ub_all) = (a.units(), b.units());
    // The intersection is at most the smaller side; reserving it up
    // front keeps the hot loop free of reallocation.
    let cap = ea.len().min(eb.len());
    out.key_hashes.reserve(cap);
    out.x.reserve(cap);
    out.y.reserve(cap);

    let (mut i, mut j) = (0usize, 0usize);
    while i < ea.len() && j < eb.len() {
        let ka = ea[i].key;
        let kb = eb[j].key;
        match ua_all[i].total_cmp(&ub_all[j]).then(ka.cmp(&kb)) {
            std::cmp::Ordering::Equal => {
                out.key_hashes.push(ka);
                out.x.push(ea[i].value);
                out.y.push(eb[j].value);
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }

    out.bounds = match (a.value_bounds(), b.value_bounds()) {
        (Some(ba), Some(bb)) => Some(ValueBounds::union(ba, bb)),
        _ => None,
    };
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{SketchBuilder, SketchConfig};
    use sketch_hashing::TupleHasher;
    use sketch_stats::pearson;
    use sketch_table::{exact_join, Aggregation, ColumnPair};
    use std::collections::HashSet;

    fn pair_with(table: &str, n: usize, f: impl Fn(usize) -> f64) -> ColumnPair {
        ColumnPair::new(
            table,
            "k",
            "v",
            (0..n).map(|i| format!("key-{i}")).collect(),
            (0..n).map(f).collect(),
        )
    }

    #[test]
    fn identical_key_sets_join_to_full_sketch_size() {
        // The paper's extreme example: same N keys on both sides — the
        // join must have exactly n rows, not n²/N.
        let n = 64;
        let tx = pair_with("tx", 10_000, |i| i as f64);
        let ty = pair_with("ty", 10_000, |i| (i as f64) * 2.0);
        let b = SketchBuilder::new(SketchConfig::with_size(n));
        let s = join_sketches(&b.build(&tx), &b.build(&ty)).unwrap();
        assert_eq!(s.len(), n);
    }

    #[test]
    fn join_sample_is_subset_of_exact_join() {
        let tx = pair_with("tx", 5_000, |i| i as f64);
        // ty covers only a subset of the keys.
        let ty = ColumnPair::new(
            "ty",
            "k",
            "v",
            (0..5_000)
                .filter(|i| i % 3 == 0)
                .map(|i| format!("key-{i}"))
                .collect(),
            (0..5_000)
                .filter(|i| i % 3 == 0)
                .map(|i| i as f64 + 1.0)
                .collect(),
        );
        let b = SketchBuilder::new(SketchConfig::with_size(128));
        let (la, lb) = (b.build(&tx), b.build(&ty));
        let sample = join_sketches(&la, &lb).unwrap();
        assert!(!sample.is_empty());

        // Every joined key hash must appear in both sketches.
        let ka: HashSet<_> = la.entries().iter().map(|e| e.key).collect();
        let kb: HashSet<_> = lb.entries().iter().map(|e| e.key).collect();
        for kh in &sample.key_hashes {
            assert!(ka.contains(kh) && kb.contains(kh));
        }

        // And the paired values must be consistent with the exact join.
        let exact = exact_join(&tx, &ty, Aggregation::Mean);
        let exact_pairs: HashSet<(u64, u64)> = exact
            .x
            .iter()
            .zip(&exact.y)
            .map(|(x, y)| (x.to_bits(), y.to_bits()))
            .collect();
        for (x, y) in sample.x.iter().zip(&sample.y) {
            assert!(exact_pairs.contains(&(x.to_bits(), y.to_bits())));
        }
    }

    #[test]
    fn theorem_one_join_equals_m_smallest_of_intersection() {
        // The joined keys must be exactly the |join| smallest g(k) values
        // of the exact key intersection — the mechanics behind Theorem 1.
        let tx = pair_with("tx", 3_000, |i| i as f64);
        let ty = ColumnPair::new(
            "ty",
            "k",
            "v",
            (1_000..4_000).map(|i| format!("key-{i}")).collect(),
            (1_000..4_000).map(|i| i as f64).collect(),
        );
        let cfg = SketchConfig::with_size(64);
        let b = SketchBuilder::new(cfg);
        let sample = join_sketches(&b.build(&tx), &b.build(&ty)).unwrap();
        assert!(!sample.is_empty());

        let hasher = cfg.hasher;
        use sketch_hashing::KeyHasher as _;
        let mut inter: Vec<(f64, KeyHash)> = (1_000..3_000)
            .map(|i| {
                let (kh, u) = hasher.g(format!("key-{i}").as_bytes());
                (u, kh)
            })
            .collect();
        inter.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let expected: Vec<KeyHash> = inter[..sample.len()].iter().map(|(_, k)| *k).collect();
        assert_eq!(sample.key_hashes, expected);
    }

    #[test]
    fn estimates_recover_true_correlation() {
        let tx = pair_with("tx", 20_000, |i| (i as f64 * 0.13).sin() * 10.0);
        let ty = pair_with("ty", 20_000, |i| {
            (i as f64 * 0.13).sin() * 10.0 + (i % 7) as f64
        });
        let exact = exact_join(&tx, &ty, Aggregation::Mean);
        let truth = pearson(&exact.x, &exact.y).unwrap();

        let b = SketchBuilder::new(SketchConfig::with_size(512));
        let sample = join_sketches(&b.build(&tx), &b.build(&ty)).unwrap();
        let est = sample.estimate(CorrelationEstimator::Pearson).unwrap();
        assert!(
            (est - truth).abs() < 0.1,
            "estimate {est} too far from truth {truth} (sample size {})",
            sample.len()
        );
    }

    #[test]
    fn hasher_mismatch_is_rejected() {
        let p = pair_with("t", 100, |i| i as f64);
        let a = SketchBuilder::new(SketchConfig::with_size(16)).build(&p);
        let c = SketchBuilder::new(SketchConfig::with_size(16).hasher(TupleHasher::new_64(99)))
            .build(&p);
        assert_eq!(join_sketches(&a, &c), Err(SketchError::HasherMismatch));
    }

    #[test]
    fn disjoint_sketches_join_empty() {
        let tx = pair_with("tx", 100, |i| i as f64);
        let ty = ColumnPair::new(
            "ty",
            "k",
            "v",
            (0..100).map(|i| format!("other-{i}")).collect(),
            (0..100).map(|i| i as f64).collect(),
        );
        let b = SketchBuilder::new(SketchConfig::with_size(32));
        let s = join_sketches(&b.build(&tx), &b.build(&ty)).unwrap();
        assert!(s.is_empty());
        assert!(s.estimate(CorrelationEstimator::Pearson).is_err());
    }

    #[test]
    fn ci_methods_work_on_join_samples() {
        let tx = pair_with("tx", 8_000, |i| (i % 100) as f64);
        let ty = pair_with("ty", 8_000, |i| (i % 100) as f64 + ((i * 7) % 13) as f64);
        let b = SketchBuilder::new(SketchConfig::with_size(512));
        let s = join_sketches(&b.build(&tx), &b.build(&ty)).unwrap();
        assert!(s.len() > 100);

        let r = s.estimate(CorrelationEstimator::Pearson).unwrap();
        let hoeff = s.hoeffding_ci(0.05).unwrap();
        let hfd = s.hfd_ci(0.05).unwrap();
        assert!(hoeff.contains(r));
        assert!(hfd.length().is_finite() && hfd.length() > 0.0);
        assert!(s.fisher_se() < 0.1);
        let pm1 = s.pm1_ci(7).unwrap();
        assert!(pm1.length() > 0.0);
    }

    #[test]
    fn join_is_symmetric_up_to_swapping_sides() {
        let tx = pair_with("tx", 2_000, |i| i as f64);
        let ty = pair_with("ty", 1_500, |i| -(i as f64));
        let b = SketchBuilder::new(SketchConfig::with_size(64));
        let ab = join_sketches(&b.build(&tx), &b.build(&ty)).unwrap();
        let ba = join_sketches(&b.build(&ty), &b.build(&tx)).unwrap();
        assert_eq!(ab.key_hashes, ba.key_hashes);
        assert_eq!(ab.x, ba.y);
        assert_eq!(ab.y, ba.x);
    }

    #[test]
    fn report_bundles_all_risk_statistics() {
        let tx = pair_with("tx", 6_000, |i| (i % 50) as f64);
        let ty = pair_with("ty", 6_000, |i| (i % 50) as f64 * 2.0 + 1.0);
        let b = SketchBuilder::new(SketchConfig::with_size(256));
        let s = join_sketches(&b.build(&tx), &b.build(&ty)).unwrap();
        let rep = s.report(CorrelationEstimator::Pearson, 0.05).unwrap();
        assert_eq!(rep.sample_size, s.len());
        assert!((rep.estimate - 1.0).abs() < 1e-9);
        assert!(rep.hoeffding.contains(rep.estimate));
        assert!(rep.hfd_length > 0.0);
        assert!(rep.fisher_se < 0.1);
        assert_eq!(rep.estimator.name(), "pearson");
    }

    #[test]
    fn join_into_reused_buffer_is_identical_to_fresh_join() {
        let tx = pair_with("tx", 3_000, |i| i as f64);
        let ty = pair_with("ty", 2_000, |i| (i as f64) * 0.5);
        let tz = ColumnPair::new(
            "tz",
            "k",
            "v",
            (500..1_500).map(|i| format!("key-{i}")).collect(),
            (500..1_500).map(|i| -(i as f64)).collect(),
        );
        let b = SketchBuilder::new(SketchConfig::with_size(64));
        let (sa, sb, sc) = (b.build(&tx), b.build(&ty), b.build(&tz));

        // Pollute the buffer with a larger unrelated join first: the
        // refill must clear every field, including `bounds`.
        let mut reused = join_sketches(&sa, &sb).unwrap();
        join_sketches_into(&sa, &sc, &mut reused).unwrap();
        assert_eq!(reused, join_sketches(&sa, &sc).unwrap());

        // A hasher mismatch must leave the buffer empty, not stale.
        let other = SketchBuilder::new(SketchConfig::with_size(16).hasher(TupleHasher::new_64(99)))
            .build(&tx);
        assert_eq!(
            join_sketches_into(&sa, &other, &mut reused),
            Err(SketchError::HasherMismatch)
        );
        assert!(reused.is_empty() && reused.bounds.is_none());
    }

    #[test]
    fn sample_is_ordered_by_unit_hash() {
        let tx = pair_with("tx", 4_000, |i| i as f64);
        let ty = pair_with("ty", 4_000, |i| i as f64);
        let b = SketchBuilder::new(SketchConfig::with_size(128));
        let la = b.build(&tx);
        let s = join_sketches(&la, &b.build(&ty)).unwrap();
        use sketch_hashing::KeyHasher as _;
        let units: Vec<f64> = s
            .key_hashes
            .iter()
            .map(|kh| la.hasher().unit_hash(*kh))
            .collect();
        for w in units.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}
