//! HyperLogLog — the *other* cardinality-sketch family (paper Sections
//! 2.1 and 6).
//!
//! The paper motivates building on KMV rather than HLL: "the best
//! algorithms based on counting trailing 1s and 0s (such as HyperLogLog)
//! are able to provide better accuracy per bit", but "HLL does not
//! maintain any sample of identifiers from the data. For this same reason,
//! HLL sketches are not suitable for join-correlation sketches, which
//! require alignment of numeric values based on their join key values."
//!
//! This module implements HLL (Flajolet et al. 2007) so the claim is
//! checkable in this repository: the `ablation_dv` bench compares
//! distinct-value accuracy per byte of KMV vs. HLL, while the type system
//! makes the structural point — [`HyperLogLog`] has no way to produce a
//! [`crate::join::JoinSample`].

use sketch_hashing::{KeyHasher, TupleHasher};

/// A HyperLogLog cardinality sketch with `2^precision` 6-bit-equivalent
/// registers (stored as bytes for simplicity).
///
/// ```
/// use correlation_sketches::HyperLogLog;
/// use sketch_hashing::TupleHasher;
///
/// let mut hll = HyperLogLog::new(12, TupleHasher::default());
/// for i in 0..10_000 {
///     hll.insert(format!("key-{i}").as_bytes());
/// }
/// let est = hll.estimate();
/// assert!((est - 10_000.0).abs() / 10_000.0 < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HyperLogLog {
    precision: u8,
    registers: Vec<u8>,
    hasher: TupleHasher,
}

impl HyperLogLog {
    /// Create a sketch with `2^precision` registers, `4 ≤ precision ≤ 18`.
    ///
    /// # Panics
    ///
    /// Panics for precision outside `[4, 18]`.
    #[must_use]
    pub fn new(precision: u8, hasher: TupleHasher) -> Self {
        assert!(
            (4..=18).contains(&precision),
            "precision must be in [4, 18], got {precision}"
        );
        Self {
            precision,
            registers: vec![0; 1 << precision],
            hasher,
        }
    }

    /// Number of registers `m`.
    #[must_use]
    pub fn num_registers(&self) -> usize {
        self.registers.len()
    }

    /// Approximate memory footprint in bytes.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.registers.len()
    }

    /// Insert a raw key.
    pub fn insert(&mut self, key: &[u8]) {
        let h = self.hasher.hash_bytes(key).value();
        self.insert_hash(h);
    }

    /// Insert a pre-hashed 64-bit value.
    pub fn insert_hash(&mut self, h: u64) {
        let p = self.precision as u32;
        let idx = (h >> (64 - p)) as usize;
        // Rank = position of the leftmost 1 in the remaining 64−p bits.
        let rest = h << p;
        let rank = if rest == 0 {
            (64 - p + 1) as u8
        } else {
            (rest.leading_zeros() + 1) as u8
        };
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Bias-correction constant `α_m`.
    fn alpha(&self) -> f64 {
        let m = self.registers.len() as f64;
        match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        }
    }

    /// Estimated number of distinct inserted keys, with the standard
    /// small-range (linear counting) correction.
    #[must_use]
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let sum: f64 = self
            .registers
            .iter()
            .map(|&r| 2f64.powi(-i32::from(r)))
            .sum();
        let raw = self.alpha() * m * m / sum;

        let zeros = self.registers.iter().filter(|&&r| r == 0).count();
        if raw <= 2.5 * m && zeros > 0 {
            // Linear counting.
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }

    /// Relative standard error of this configuration, `≈ 1.04/√m`.
    #[must_use]
    pub fn standard_error(&self) -> f64 {
        1.04 / (self.registers.len() as f64).sqrt()
    }

    /// Merge another sketch into this one (register-wise max). The result
    /// estimates the cardinality of the *union* of the inserted sets.
    ///
    /// # Errors
    ///
    /// [`crate::error::SketchError::HasherMismatch`] when precision or
    /// hasher configurations differ.
    pub fn merge(&mut self, other: &Self) -> Result<(), crate::error::SketchError> {
        if self.precision != other.precision || self.hasher != other.hasher {
            return Err(crate::error::SketchError::HasherMismatch);
        }
        for (a, &b) in self.registers.iter_mut().zip(&other.registers) {
            *a = (*a).max(b);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(n: usize, precision: u8) -> HyperLogLog {
        let mut h = HyperLogLog::new(precision, TupleHasher::default());
        for i in 0..n {
            h.insert(format!("key-{i}").as_bytes());
        }
        h
    }

    #[test]
    fn estimate_within_error_envelope() {
        for &(n, p) in &[(1_000usize, 12u8), (50_000, 12), (10_000, 10)] {
            let h = filled(n, p);
            let est = h.estimate();
            let rel = (est - n as f64).abs() / n as f64;
            let budget = 4.0 * h.standard_error();
            assert!(rel < budget, "n={n} p={p}: est={est:.0} rel={rel:.4}");
        }
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut h = HyperLogLog::new(12, TupleHasher::default());
        for _ in 0..10 {
            for i in 0..500 {
                h.insert(format!("key-{i}").as_bytes());
            }
        }
        let est = h.estimate();
        assert!((est - 500.0).abs() / 500.0 < 0.1, "est={est}");
    }

    #[test]
    fn small_range_linear_counting() {
        let h = filled(10, 12);
        let est = h.estimate();
        assert!((est - 10.0).abs() < 2.0, "est={est}");
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        let h = HyperLogLog::new(10, TupleHasher::default());
        assert_eq!(h.estimate(), 0.0);
    }

    #[test]
    fn merge_estimates_union() {
        let mut a = HyperLogLog::new(12, TupleHasher::default());
        let mut b = HyperLogLog::new(12, TupleHasher::default());
        for i in 0..3_000 {
            a.insert(format!("key-{i}").as_bytes());
        }
        for i in 1_500..4_500 {
            b.insert(format!("key-{i}").as_bytes());
        }
        a.merge(&b).unwrap();
        let est = a.estimate();
        assert!((est - 4_500.0).abs() / 4_500.0 < 0.06, "est={est}");
    }

    #[test]
    fn merge_equals_inserting_everything_into_one() {
        let mut a = filled(2_000, 10);
        let mut b = HyperLogLog::new(10, TupleHasher::default());
        for i in 2_000..5_000 {
            b.insert(format!("key-{i}").as_bytes());
        }
        a.merge(&b).unwrap();
        let whole = filled(5_000, 10);
        assert_eq!(a, whole);
    }

    #[test]
    fn mismatched_configs_rejected() {
        let mut a = HyperLogLog::new(10, TupleHasher::default());
        let b = HyperLogLog::new(12, TupleHasher::default());
        assert!(a.merge(&b).is_err());
        let c = HyperLogLog::new(10, TupleHasher::new_64(99));
        assert!(a.merge(&c).is_err());
    }

    #[test]
    #[should_panic(expected = "precision")]
    fn bad_precision_panics() {
        let _ = HyperLogLog::new(3, TupleHasher::default());
    }

    #[test]
    fn better_accuracy_per_bit_than_kmv_at_scale() {
        // The paper's §6 remark quantified: at equal memory, HLL's DV
        // error envelope beats KMV's. 2^12 registers = 4 KiB vs. a KMV
        // sketch of 256 entries ≈ 4 KiB (16 B/entry).
        let hll = filled(100_000, 12);
        assert!(hll.standard_error() < 1.0 / (256f64 - 2.0).sqrt());
        let est = hll.estimate();
        assert!((est - 100_000.0).abs() / 100_000.0 < 0.05);
    }
}
