//! **Correlation Sketches** — the core contribution of Santos et al.,
//! *"Correlation Sketches for Approximate Join-Correlation Queries"*,
//! SIGMOD 2021.
//!
//! A correlation sketch `L_⟨K,X⟩` summarizes a key/value column pair
//! `⟨K, X⟩` by keeping, for the `n` keys with the smallest uniform hash
//! `g(k) = h_u(h(k))`, the tuple `⟨h(k), x_k⟩` (hashed key identifier plus
//! aggregated numeric value). Because every table in a corpus uses the
//! *same* hash functions, two sketches built independently tend to retain
//! the *same* keys, and joining them on `h(k)` reconstructs a **uniform
//! random sample of the joined table** (Theorem 1). Any sample statistic —
//! Pearson, Spearman, RIN, Qn, bootstrap correlations, mutual information,
//! cardinalities, containment — can then be estimated without ever
//! executing the join.
//!
//! # Quick start
//!
//! ```
//! use correlation_sketches::{SketchBuilder, SketchConfig, join_sketches};
//! use sketch_table::ColumnPair;
//! use sketch_stats::CorrelationEstimator;
//!
//! // Two tables that share some join keys.
//! let tx = ColumnPair::new(
//!     "tx", "day", "bikes",
//!     (0..1000).map(|i| format!("day-{i}")).collect(),
//!     (0..1000).map(|i| i as f64).collect(),
//! );
//! let ty = ColumnPair::new(
//!     "ty", "day", "accidents",
//!     (0..800).map(|i| format!("day-{i}")).collect(),
//!     (0..800).map(|i| 2.0 * i as f64 + 5.0).collect(),
//! );
//!
//! let builder = SketchBuilder::new(SketchConfig::with_size(256));
//! let la = builder.build(&tx);
//! let lb = builder.build(&ty);
//!
//! let sample = join_sketches(&la, &lb).expect("hashers match");
//! let r = sample.estimate(CorrelationEstimator::Pearson).unwrap();
//! assert!(r > 0.99); // the columns are perfectly correlated after the join
//! ```
//!
//! # Module map
//!
//! * [`builder`] — single-pass sketch construction with streaming
//!   repeated-key aggregation (Section 3.1) and the fixed-size /
//!   threshold (G-KMV-style) selection strategies (Section 3.3).
//! * [`sketch`] — the sketch data structure and its per-column statistics.
//! * [`join`] — sketch joins and [`join::JoinSample`], the reconstructed
//!   uniform sample with correlation estimates and the Section 4
//!   confidence intervals attached.
//! * [`kmv`] — everything a KMV synopsis supports: distinct-value
//!   estimators, union/intersection cardinality, Jaccard similarity and
//!   containment estimates (Sections 2.1, 3.3).
//! * [`multi`] — multi-column sketches `L_⟨K,X,Z,…⟩` (Section 3.1).
//! * [`mutual_info`] — mutual-information estimation from join samples,
//!   demonstrating the "any statistic" claim of Theorem 1.
//! * [`persist`] / [`binary`] — JSON and compact-binary sketch codecs
//!   (the binary payload is what `sketch-store` shards contain).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod builder;
pub mod error;
pub mod hll;
pub mod join;
pub mod json;
pub mod kmv;
pub mod merge;
pub mod multi;
pub mod mutual_info;
pub mod parallel;
pub mod persist;
pub mod sketch;
pub mod stream;

pub use binary::{
    decode_tombstone, encode_tombstone, DeltaRecord, DELTA_TAG_SKETCH, DELTA_TAG_TOMBSTONE,
};
pub use builder::{SelectionStrategy, SketchBuilder, SketchConfig};
pub use error::SketchError;
pub use hll::HyperLogLog;
pub use join::{join_sketches, join_sketches_into, EstimateReport, JoinSample};
pub use kmv::{
    containment_estimate, distinct_value_estimate, intersection_estimate, jaccard_estimate,
    union_estimate,
};
pub use merge::{is_decomposable, merge_partition_sketches};
pub use multi::{join_multi_sketches, MultiColumnSketch, MultiJoinSample};
pub use mutual_info::mutual_information;
pub use parallel::build_sketches_parallel;
pub use sketch::{CorrelationSketch, SketchEntry};
pub use stream::StreamingSketchBuilder;
