//! Compact binary sketch codec — the record payload of the
//! `sketch-store` shard format.
//!
//! JSON persistence ([`crate::persist`]) is diffable and appendable but
//! slow to parse at corpus scale; this codec is its bit-exact binary
//! sibling. A payload encodes one [`CorrelationSketch`] as fixed-width
//! little-endian fields (layout below); like the JSON form it stores only
//! the entries — the cached unit hashes are recomputed once at decode
//! time (the paper's Figure 2 note: `h_u(h(k))` "can be easily computed
//! from h(k)") — and decoding re-validates the in-memory invariants:
//! strict ascending `(unit hash, key)` order and finite values.
//!
//! ## Payload layout (all integers little-endian)
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 4    | `id_len` (`u32`) |
//! | 4      | `id_len` | sketch id, UTF-8 |
//! | +0     | 1    | hasher bits: `0` = 32-bit, `1` = 64-bit |
//! | +1     | 8    | hasher seed (`u64`) |
//! | +9     | 1    | aggregation code (see [`agg_code`]) |
//! | +10    | 1    | strategy tag: `0` = fixed-size, `1` = threshold |
//! | +11    | 8    | strategy argument: size as `u64`, or threshold `f64` bits |
//! | +19    | 1    | bounds flag: `0` = none, `1` = present |
//! | +20    | 16   | `c_low`, `c_high` (`f64` each; only when flag = 1) |
//! | +…     | 8    | `rows_scanned` (`u64`) |
//! | +…     | 1    | `saturated`: `0` or `1` |
//! | +…     | 4    | entry count `n` (`u32`) |
//! | +…     | 16·n | entries: `⟨h(k)⟩` as `u64`, then `x_k` as `f64` bits |
//!
//! Every byte is significant: decoding rejects trailing bytes, unknown
//! enum codes, non-canonical flag bytes, and out-of-order entries, so a
//! payload that decodes is exactly one that [`CorrelationSketch::to_bytes`]
//! could have produced. Floats round-trip bit-identically (the codec
//! moves raw `f64` bits, never decimal text).

use sketch_hashing::{HashBits, KeyHash, KeyHasher, TupleHasher};
use sketch_stats::ValueBounds;
use sketch_table::Aggregation;

use crate::builder::SelectionStrategy;
use crate::error::SketchError;
use crate::sketch::{CorrelationSketch, SketchEntry};

/// Stable wire code of an aggregation (order of [`Aggregation::ALL`]).
fn agg_code(agg: Aggregation) -> u8 {
    match agg {
        Aggregation::Mean => 0,
        Aggregation::Sum => 1,
        Aggregation::Min => 2,
        Aggregation::Max => 3,
        Aggregation::First => 4,
        Aggregation::Last => 5,
        Aggregation::Count => 6,
    }
}

fn agg_from_code(code: u8) -> Result<Aggregation, SketchError> {
    Aggregation::ALL
        .get(usize::from(code))
        .copied()
        .ok_or_else(|| SketchError::Corrupt(format!("unknown aggregation code {code}")))
}

/// Widen a `u32` wire-format length/count into a `usize`, failing as
/// [`SketchError::Corrupt`] on targets whose `usize` cannot hold it
/// (instead of silently wrapping the way a bare `as` cast would).
fn wire_len(field: u32, context: &str) -> Result<usize, SketchError> {
    usize::try_from(field)
        .map_err(|_| SketchError::Corrupt(format!("{context} {field} exceeds this target's usize")))
}

/// Byte-slice cursor with typed truncation errors.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], SketchError> {
        let available = self.bytes.len() - self.pos;
        if n > available {
            return Err(SketchError::Truncated {
                context,
                needed: n,
                available,
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, SketchError> {
        Ok(self.take(1, context)?[0])
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, SketchError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, SketchError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self, context: &'static str) -> Result<f64, SketchError> {
        Ok(f64::from_bits(self.u64(context)?))
    }
}

impl CorrelationSketch {
    /// Encode to the compact binary payload documented in the module
    /// docs. Appends to `out` (so shard writers can frame many records
    /// into one buffer without copies).
    ///
    /// # Errors
    ///
    /// [`SketchError::Corrupt`] if the sketch holds non-finite values —
    /// the same write-time validation as [`Self::to_json`], so the two
    /// formats accept exactly the same sketches.
    pub fn write_bytes(&self, out: &mut Vec<u8>) -> Result<(), SketchError> {
        if self.entries.iter().any(|e| !e.value.is_finite()) {
            return Err(SketchError::Corrupt("non-finite entry value".into()));
        }
        if self
            .bounds
            .is_some_and(|b| !b.c_low.is_finite() || !b.c_high.is_finite())
        {
            return Err(SketchError::Corrupt("non-finite value bounds".into()));
        }
        if let SelectionStrategy::Threshold(t) = self.strategy {
            if !t.is_finite() {
                return Err(SketchError::Corrupt("non-finite threshold".into()));
            }
        }
        let id_len = u32::try_from(self.id.len())
            .map_err(|_| SketchError::Corrupt("sketch id exceeds u32 length".into()))?;
        let n = u32::try_from(self.entries.len())
            .map_err(|_| SketchError::Corrupt("entry count exceeds u32".into()))?;

        out.reserve(42 + self.id.len() + 16 * self.entries.len());
        out.extend_from_slice(&id_len.to_le_bytes());
        out.extend_from_slice(self.id.as_bytes());
        out.push(match self.hasher.bits() {
            HashBits::B32 => 0,
            HashBits::B64 => 1,
        });
        out.extend_from_slice(&self.hasher.seed().to_le_bytes());
        out.push(agg_code(self.aggregation));
        match self.strategy {
            SelectionStrategy::FixedSize(size) => {
                out.push(0);
                let size = u64::try_from(size).map_err(|_| {
                    SketchError::Corrupt("fixed-size selection budget exceeds u64".into())
                })?;
                out.extend_from_slice(&size.to_le_bytes());
            }
            SelectionStrategy::Threshold(t) => {
                out.push(1);
                out.extend_from_slice(&t.to_bits().to_le_bytes());
            }
        }
        match self.bounds {
            None => out.push(0),
            Some(b) => {
                out.push(1);
                out.extend_from_slice(&b.c_low.to_bits().to_le_bytes());
                out.extend_from_slice(&b.c_high.to_bits().to_le_bytes());
            }
        }
        out.extend_from_slice(&self.rows_scanned.to_le_bytes());
        out.push(u8::from(self.saturated));
        out.extend_from_slice(&n.to_le_bytes());
        for e in &self.entries {
            out.extend_from_slice(&e.key.value().to_le_bytes());
            out.extend_from_slice(&e.value.to_bits().to_le_bytes());
        }
        Ok(())
    }

    /// Encode to a fresh byte vector; see [`Self::write_bytes`].
    ///
    /// # Errors
    ///
    /// [`SketchError::Corrupt`] if the sketch holds non-finite values.
    pub fn to_bytes(&self) -> Result<Vec<u8>, SketchError> {
        let mut out = Vec::new();
        self.write_bytes(&mut out)?;
        Ok(out)
    }

    /// Decode a payload produced by [`Self::write_bytes`], rebuilding the
    /// cached unit hashes and re-validating every in-memory invariant.
    ///
    /// # Errors
    ///
    /// [`SketchError::Truncated`] when the bytes end mid-field,
    /// [`SketchError::Corrupt`] on unknown codes, non-canonical flag
    /// bytes, trailing bytes, or violated sketch invariants.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SketchError> {
        let mut r = Reader { bytes, pos: 0 };

        let id_len = wire_len(r.u32("id length")?, "id length")?;
        let id = std::str::from_utf8(r.take(id_len, "sketch id")?)
            .map_err(|e| SketchError::Corrupt(format!("sketch id is not UTF-8: {e}")))?
            .to_string();

        let seed_field = |r: &mut Reader<'_>| r.u64("hasher seed");
        let hasher = match r.u8("hasher bits")? {
            0 => {
                let seed = seed_field(&mut r)?;
                TupleHasher::paper_32(
                    u32::try_from(seed)
                        .map_err(|_| SketchError::Corrupt("b32 hasher seed exceeds u32".into()))?,
                )
            }
            1 => TupleHasher::new_64(seed_field(&mut r)?),
            other => {
                return Err(SketchError::Corrupt(format!(
                    "unknown hasher bits code {other}"
                )))
            }
        };

        let aggregation = agg_from_code(r.u8("aggregation code")?)?;

        let strategy = match r.u8("strategy tag")? {
            0 => SelectionStrategy::FixedSize(
                usize::try_from(r.u64("fixed-size argument")?)
                    .map_err(|_| SketchError::Corrupt("fixed_size exceeds usize".into()))?,
            ),
            1 => {
                let t = r.f64("threshold argument")?;
                if !t.is_finite() {
                    return Err(SketchError::Corrupt("non-finite threshold".into()));
                }
                SelectionStrategy::Threshold(t)
            }
            other => {
                return Err(SketchError::Corrupt(format!(
                    "unknown strategy tag {other}"
                )))
            }
        };

        let bounds = match r.u8("bounds flag")? {
            0 => None,
            1 => {
                let c_low = r.f64("bounds low")?;
                let c_high = r.f64("bounds high")?;
                if !c_low.is_finite() || !c_high.is_finite() {
                    return Err(SketchError::Corrupt("non-finite value bounds".into()));
                }
                if c_low > c_high {
                    return Err(SketchError::Corrupt("inverted value bounds".into()));
                }
                Some(ValueBounds::new(c_low, c_high))
            }
            other => return Err(SketchError::Corrupt(format!("unknown bounds flag {other}"))),
        };

        let rows_scanned = r.u64("rows scanned")?;
        let saturated = match r.u8("saturated flag")? {
            0 => false,
            1 => true,
            other => {
                return Err(SketchError::Corrupt(format!(
                    "non-canonical saturated flag {other}"
                )))
            }
        };

        let n = wire_len(r.u32("entry count")?, "entry count")?;
        // Bound the allocation by the bytes actually present: a corrupted
        // count must fail with Truncated, not attempt a 64 GiB reserve.
        let available = bytes.len() - r.pos;
        if n.checked_mul(16).is_none_or(|need| need > available) {
            return Err(SketchError::Truncated {
                context: "sketch entries",
                needed: n.saturating_mul(16),
                available,
            });
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let key = KeyHash(r.u64("entry key")?);
            let value = r.f64("entry value")?;
            entries.push(SketchEntry { key, value });
        }
        if r.pos != bytes.len() {
            return Err(SketchError::Corrupt(format!(
                "{} trailing bytes after sketch payload",
                bytes.len() - r.pos
            )));
        }

        // Rebuild the unit-hash cache, then validate the invariants
        // against it — identical to the JSON load path.
        let units: Vec<f64> = entries.iter().map(|e| hasher.unit_hash(e.key)).collect();
        for i in 1..entries.len() {
            if units[i - 1]
                .total_cmp(&units[i])
                .then(entries[i - 1].key.cmp(&entries[i].key))
                != std::cmp::Ordering::Less
            {
                return Err(SketchError::Corrupt(
                    "entries not sorted by (unit hash, key)".into(),
                ));
            }
        }
        if entries.iter().any(|e| !e.value.is_finite()) {
            return Err(SketchError::Corrupt("non-finite entry value".into()));
        }

        Ok(Self {
            id,
            hasher,
            aggregation,
            strategy,
            entries,
            units,
            bounds,
            rows_scanned,
            saturated,
        })
    }
}

/// Record tag opening every *delta-shard* record payload: the record is a
/// full sketch (its [`CorrelationSketch::write_bytes`] payload follows).
pub const DELTA_TAG_SKETCH: u8 = 0;

/// Record tag opening every *delta-shard* record payload: the record is a
/// tombstone deleting one sketch id (see [`encode_tombstone`]).
pub const DELTA_TAG_TOMBSTONE: u8 = 1;

/// One record of a corpus delta: either a sketch appended to the corpus
/// or a tombstone retiring a live sketch id. Delta shards are an ordered
/// log of these.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaRecord {
    /// Append this sketch to the live corpus.
    Sketch(CorrelationSketch),
    /// Retire the live sketch with this id.
    Tombstone(String),
}

/// Encode a tombstone payload: `[DELTA_TAG_TOMBSTONE] [id_len u32 LE]
/// [id bytes, UTF-8]`. The sibling of a tagged sketch payload
/// ([`DeltaRecord::write_bytes`]), sized so a delete costs a few dozen
/// bytes instead of a re-pack.
///
/// # Errors
///
/// [`SketchError::Corrupt`] on an empty id or one exceeding `u32` bytes.
pub fn encode_tombstone(id: &str) -> Result<Vec<u8>, SketchError> {
    if id.is_empty() {
        return Err(SketchError::Corrupt("empty tombstone id".into()));
    }
    let id_len = u32::try_from(id.len())
        .map_err(|_| SketchError::Corrupt("tombstone id exceeds u32 length".into()))?;
    let mut out = Vec::with_capacity(5 + id.len());
    out.push(DELTA_TAG_TOMBSTONE);
    out.extend_from_slice(&id_len.to_le_bytes());
    out.extend_from_slice(id.as_bytes());
    Ok(out)
}

/// Decode a tombstone payload produced by [`encode_tombstone`],
/// validating the tag, the declared length against the actual bytes, and
/// UTF-8.
///
/// # Errors
///
/// [`SketchError::Truncated`] when bytes end mid-field,
/// [`SketchError::Corrupt`] on a wrong tag, trailing bytes, an empty id,
/// or non-UTF-8 id bytes.
pub fn decode_tombstone(payload: &[u8]) -> Result<String, SketchError> {
    let mut r = Reader {
        bytes: payload,
        pos: 0,
    };
    let tag = r.u8("tombstone tag")?;
    if tag != DELTA_TAG_TOMBSTONE {
        return Err(SketchError::Corrupt(format!(
            "record tag {tag} where a tombstone ({DELTA_TAG_TOMBSTONE}) was expected"
        )));
    }
    let id_len = wire_len(r.u32("tombstone id length")?, "tombstone id length")?;
    let id = std::str::from_utf8(r.take(id_len, "tombstone id")?)
        .map_err(|e| SketchError::Corrupt(format!("tombstone id is not UTF-8: {e}")))?
        .to_string();
    if r.pos != payload.len() {
        return Err(SketchError::Corrupt(format!(
            "{} trailing bytes after tombstone",
            payload.len() - r.pos
        )));
    }
    if id.is_empty() {
        return Err(SketchError::Corrupt("empty tombstone id".into()));
    }
    Ok(id)
}

impl DeltaRecord {
    /// The sketch id this record is about (appended id or retired id).
    #[must_use]
    pub fn id(&self) -> &str {
        match self {
            Self::Sketch(s) => s.id(),
            Self::Tombstone(id) => id,
        }
    }

    /// Encode as a tagged delta payload, appending to `out`: one tag
    /// byte ([`DELTA_TAG_SKETCH`] or [`DELTA_TAG_TOMBSTONE`]) followed by
    /// the sketch payload or the tombstone body.
    ///
    /// # Errors
    ///
    /// [`SketchError::Corrupt`] on unencodable sketches or empty/oversize
    /// tombstone ids.
    pub fn write_bytes(&self, out: &mut Vec<u8>) -> Result<(), SketchError> {
        match self {
            Self::Sketch(s) => {
                out.push(DELTA_TAG_SKETCH);
                s.write_bytes(out)
            }
            Self::Tombstone(id) => {
                out.extend_from_slice(&encode_tombstone(id)?);
                Ok(())
            }
        }
    }

    /// Decode a tagged delta payload produced by [`Self::write_bytes`].
    ///
    /// # Errors
    ///
    /// [`SketchError::Truncated`] / [`SketchError::Corrupt`] with the
    /// same validation as [`CorrelationSketch::from_bytes`] and
    /// [`decode_tombstone`].
    pub fn from_bytes(payload: &[u8]) -> Result<Self, SketchError> {
        match payload.first() {
            Some(&DELTA_TAG_SKETCH) => {
                CorrelationSketch::from_bytes(&payload[1..]).map(Self::Sketch)
            }
            Some(&DELTA_TAG_TOMBSTONE) => decode_tombstone(payload).map(Self::Tombstone),
            Some(&other) => Err(SketchError::Corrupt(format!(
                "unknown delta record tag {other}"
            ))),
            None => Err(SketchError::Truncated {
                context: "delta record tag",
                needed: 1,
                available: 0,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{SketchBuilder, SketchConfig};
    use sketch_table::ColumnPair;

    fn pair(n: usize) -> ColumnPair {
        ColumnPair::new(
            "t",
            "k",
            "v",
            (0..n).map(|i| format!("key-{i}")).collect(),
            (0..n).map(|i| i as f64 * 1.5).collect(),
        )
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let s = SketchBuilder::new(SketchConfig::with_size(64)).build(&pair(1000));
        let back = CorrelationSketch::from_bytes(&s.to_bytes().unwrap()).unwrap();
        assert_eq!(s, back);
        assert_eq!(s.units(), back.units());
    }

    #[test]
    fn binary_equals_json_roundtrip() {
        for cfg in [
            SketchConfig::with_size(32),
            SketchConfig::with_threshold(0.07),
            SketchConfig::with_size(16).hasher(TupleHasher::paper_32(7)),
            SketchConfig::with_size(8).aggregation(Aggregation::Count),
        ] {
            let s = SketchBuilder::new(cfg).build(&pair(700));
            let via_bin = CorrelationSketch::from_bytes(&s.to_bytes().unwrap()).unwrap();
            let via_json = CorrelationSketch::from_json(&s.to_json().unwrap()).unwrap();
            assert_eq!(via_bin, via_json);
            assert_eq!(via_bin, s);
        }
    }

    #[test]
    fn empty_sketch_roundtrips() {
        let s = SketchBuilder::new(SketchConfig::with_size(8)).build(&pair(0));
        let back = CorrelationSketch::from_bytes(&s.to_bytes().unwrap()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn truncation_anywhere_is_typed() {
        let s = SketchBuilder::new(SketchConfig::with_size(16)).build(&pair(200));
        let bytes = s.to_bytes().unwrap();
        for cut in 0..bytes.len() {
            let err = CorrelationSketch::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, SketchError::Truncated { .. } | SketchError::Corrupt(_)),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let s = SketchBuilder::new(SketchConfig::with_size(8)).build(&pair(50));
        let mut bytes = s.to_bytes().unwrap();
        bytes.push(0);
        assert!(matches!(
            CorrelationSketch::from_bytes(&bytes),
            Err(SketchError::Corrupt(_))
        ));
    }

    #[test]
    fn huge_entry_count_fails_without_allocating() {
        let s = SketchBuilder::new(SketchConfig::with_size(4)).build(&pair(50));
        let mut bytes = s.to_bytes().unwrap();
        let count_off = bytes.len() - 4 * 16 - 4;
        bytes[count_off..count_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            CorrelationSketch::from_bytes(&bytes),
            Err(SketchError::Truncated { .. })
        ));
    }

    #[test]
    fn tampered_order_is_rejected() {
        let s = SketchBuilder::new(SketchConfig::with_size(8)).build(&pair(100));
        let mut bytes = s.to_bytes().unwrap();
        // Swap the first two 16-byte entry records (tail of the payload).
        let entries_off = bytes.len() - 8 * 16;
        let (a, b) = (entries_off, entries_off + 16);
        let tmp: Vec<u8> = bytes[a..a + 16].to_vec();
        bytes.copy_within(b..b + 16, a);
        bytes[b..b + 16].copy_from_slice(&tmp);
        assert!(matches!(
            CorrelationSketch::from_bytes(&bytes),
            Err(SketchError::Corrupt(_))
        ));
    }

    #[test]
    fn non_finite_values_refused_at_write_time() {
        use crate::stream::StreamingSketchBuilder;
        let cfg = SketchConfig::with_size(8).aggregation(Aggregation::Min);
        let mut b = StreamingSketchBuilder::new("t/k/v", cfg);
        b.push("a", f64::INFINITY);
        b.push("a", 1.0);
        let s = b.finish();
        assert!(matches!(s.to_bytes(), Err(SketchError::Corrupt(_))));
    }

    #[test]
    fn tombstone_roundtrip_and_validation() {
        let bytes = encode_tombstone("taxi/day/pickups").unwrap();
        assert_eq!(bytes[0], DELTA_TAG_TOMBSTONE);
        assert_eq!(decode_tombstone(&bytes).unwrap(), "taxi/day/pickups");

        // Empty ids are refused at both ends.
        assert!(matches!(encode_tombstone(""), Err(SketchError::Corrupt(_))));

        // Trailing bytes, truncation, wrong tag.
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(matches!(
            decode_tombstone(&bad),
            Err(SketchError::Corrupt(_))
        ));
        for cut in 0..bytes.len() {
            assert!(
                decode_tombstone(&bytes[..cut]).is_err(),
                "tombstone cut at {cut} undetected"
            );
        }
        let mut bad = bytes;
        bad[0] = DELTA_TAG_SKETCH;
        assert!(matches!(
            decode_tombstone(&bad),
            Err(SketchError::Corrupt(_))
        ));
    }

    #[test]
    fn delta_record_roundtrip_both_variants() {
        let s = SketchBuilder::new(SketchConfig::with_size(32)).build(&pair(120));
        for record in [
            DeltaRecord::Sketch(s.clone()),
            DeltaRecord::Tombstone("t/k/v".into()),
        ] {
            let mut payload = Vec::new();
            record.write_bytes(&mut payload).unwrap();
            assert_eq!(DeltaRecord::from_bytes(&payload).unwrap(), record);
        }
        assert_eq!(DeltaRecord::Sketch(s.clone()).id(), s.id());
        assert_eq!(DeltaRecord::Tombstone("x/y/z".into()).id(), "x/y/z");

        // Unknown tags and empty payloads are typed errors.
        assert!(matches!(
            DeltaRecord::from_bytes(&[9, 0, 0]),
            Err(SketchError::Corrupt(_))
        ));
        assert!(matches!(
            DeltaRecord::from_bytes(&[]),
            Err(SketchError::Truncated { .. })
        ));
    }
}
