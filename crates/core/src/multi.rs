//! Multi-column sketches `L_⟨K, X, Z, …⟩` (paper Section 3.1, "Sketches
//! for Multi-Column Tables").
//!
//! Instead of one sketch per `(key, numeric-column)` pair, a single sketch
//! can carry *all* numeric columns of a table keyed by one categorical
//! column: `⟨h(k), x_k, z_k, …⟩`. One multi-sketch join then estimates the
//! correlation between any column of one table and any column of another.

use std::cmp::Ordering;
use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap};

use sketch_hashing::{KeyHash, KeyHasher, TupleHasher};
use sketch_stats::{CorrelationEstimator, StatsError, ValueBounds};
use sketch_table::{AggState, Aggregation, Table};

use crate::error::SketchError;

/// One multi-column sketch tuple: a hashed key with one aggregated value
/// per tracked numeric column.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiEntry {
    /// Hashed key identifier.
    pub key: KeyHash,
    /// Aggregated values, aligned with
    /// [`MultiColumnSketch::column_names`].
    pub values: Vec<f64>,
}

/// A sketch over `⟨K, X₁, …, X_m⟩`: the `n` minimum-hash keys with all
/// their numeric columns.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiColumnSketch {
    id: String,
    hasher: TupleHasher,
    aggregation: Aggregation,
    column_names: Vec<String>,
    entries: Vec<MultiEntry>,
    /// Cached unit hashes aligned with `entries` (derived state, same
    /// rationale as [`crate::sketch::CorrelationSketch`]'s cache).
    units: Vec<f64>,
    bounds: Vec<Option<ValueBounds>>,
    saturated: bool,
    rows_scanned: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapKey {
    unit: f64,
    key: KeyHash,
}

impl Eq for HeapKey {}
impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.unit
            .total_cmp(&other.unit)
            .then(self.key.cmp(&other.key))
    }
}
impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl MultiColumnSketch {
    /// Build a multi-column sketch from a table: `key_column` supplies the
    /// join keys, every numeric column of the table is tracked. Rows with
    /// a null key are skipped; null numeric cells keep that column's
    /// aggregate untouched for the row's key.
    ///
    /// Returns `None` when `key_column` is missing, not categorical, or
    /// the table has no numeric columns.
    #[must_use]
    pub fn build(
        table: &Table,
        key_column: &str,
        size: usize,
        hasher: TupleHasher,
        aggregation: Aggregation,
    ) -> Option<Self> {
        use sketch_table::ColumnData;

        let key_col = table.column(key_column)?;
        let ColumnData::Categorical(keys) = &key_col.data else {
            return None;
        };
        let numeric_names: Vec<String> = table
            .numeric_names()
            .into_iter()
            .map(String::from)
            .collect();
        if numeric_names.is_empty() {
            return None;
        }
        let numeric_cols: Vec<&Vec<Option<f64>>> = numeric_names
            .iter()
            .map(|n| match &table.column(n).expect("name from table").data {
                ColumnData::Numeric(v) => v,
                ColumnData::Categorical(_) => unreachable!("numeric_names returns numeric"),
            })
            .collect();
        let m = numeric_names.len();

        let mut members: HashMap<KeyHash, Vec<Option<AggState>>> = HashMap::new();
        let mut heap: BinaryHeap<HeapKey> = BinaryHeap::with_capacity(size + 1);
        let mut mins = vec![f64::INFINITY; m];
        let mut maxs = vec![f64::NEG_INFINITY; m];
        let mut rows_scanned = 0u64;
        let mut saturated = false;

        for (row, key) in keys.iter().enumerate() {
            let Some(key) = key else { continue };
            rows_scanned += 1;
            for (c, col) in numeric_cols.iter().enumerate() {
                if let Some(v) = col[row] {
                    mins[c] = mins[c].min(v);
                    maxs[c] = maxs[c].max(v);
                }
            }

            let (kh, unit) = hasher.g(key.as_bytes());
            let update = |states: &mut Vec<Option<AggState>>| {
                for (c, col) in numeric_cols.iter().enumerate() {
                    if let Some(v) = col[row] {
                        match &mut states[c] {
                            Some(s) => s.update(v),
                            slot @ None => *slot = Some(aggregation.start(v)),
                        }
                    }
                }
            };
            match members.entry(kh) {
                Entry::Occupied(mut e) => update(e.get_mut()),
                Entry::Vacant(e) => {
                    let hk = HeapKey { unit, key: kh };
                    if heap.len() < size {
                        let states = e.insert(vec![None; m]);
                        update(states);
                        heap.push(hk);
                    } else if size > 0 && hk < *heap.peek().expect("full heap") {
                        let states = e.insert(vec![None; m]);
                        update(states);
                        heap.push(hk);
                        let evicted = heap.pop().expect("non-empty heap");
                        members.remove(&evicted.key);
                        saturated = true;
                    } else {
                        saturated = true;
                    }
                }
            }
        }

        let mut tagged: Vec<(HeapKey, Vec<f64>)> = members
            .into_iter() // lint: ordered (sorted by HeapKey before any output below)
            .map(|(kh, states)| {
                let values = states
                    .into_iter()
                    .map(|s| s.map_or(f64::NAN, |st| st.value()))
                    .collect();
                (
                    HeapKey {
                        unit: hasher.unit_hash(kh),
                        key: kh,
                    },
                    values,
                )
            })
            .collect();
        tagged.sort_by_key(|a| a.0);
        let mut entries = Vec::with_capacity(tagged.len());
        let mut units = Vec::with_capacity(tagged.len());
        for (hk, values) in tagged {
            entries.push(MultiEntry {
                key: hk.key,
                values,
            });
            units.push(hk.unit);
        }

        Some(Self {
            id: format!("{}/{}", table.name, key_column),
            hasher,
            aggregation,
            column_names: numeric_names,
            entries,
            units,
            bounds: mins
                .iter()
                .zip(&maxs)
                .map(|(&lo, &hi)| (lo <= hi).then(|| ValueBounds::new(lo, hi)))
                .collect(),
            saturated,
            rows_scanned,
        })
    }

    /// Sketch identifier (`table/key_column`).
    #[must_use]
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Names of the tracked numeric columns.
    #[must_use]
    pub fn column_names(&self) -> &[String] {
        &self.column_names
    }

    /// Number of retained keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no keys were retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Index of a column by name.
    #[must_use]
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.column_names.iter().position(|n| n == name)
    }

    /// Full-column value bounds per tracked column.
    #[must_use]
    pub fn column_bounds(&self, idx: usize) -> Option<ValueBounds> {
        self.bounds.get(idx).copied().flatten()
    }

    /// Whether any key was excluded.
    #[must_use]
    pub fn is_saturated(&self) -> bool {
        self.saturated
    }

    /// Hasher configuration.
    #[must_use]
    pub fn hasher(&self) -> TupleHasher {
        self.hasher
    }

    /// Stored entries, ascending by unit hash.
    #[must_use]
    pub fn entries(&self) -> &[MultiEntry] {
        &self.entries
    }

    /// Cached unit hashes, aligned with [`Self::entries`].
    #[must_use]
    pub fn units(&self) -> &[f64] {
        &self.units
    }
}

/// The join of two multi-column sketches: aligned rows of all numeric
/// columns from both sides for every common key.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiJoinSample {
    /// Common hashed keys, ascending by unit hash.
    pub key_hashes: Vec<KeyHash>,
    /// Left-side column names.
    pub a_columns: Vec<String>,
    /// Right-side column names.
    pub b_columns: Vec<String>,
    /// Left values: `a_values[c][i]` = column `c`, joined row `i`
    /// (NaN when the key never had a non-null value in that column).
    pub a_values: Vec<Vec<f64>>,
    /// Right values, same layout.
    pub b_values: Vec<Vec<f64>>,
}

impl MultiJoinSample {
    /// Number of joined rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.key_hashes.len()
    }

    /// True when no keys were shared.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.key_hashes.is_empty()
    }

    /// Estimate the correlation between left column `a_idx` and right
    /// column `b_idx`, skipping rows where either side is NaN.
    ///
    /// # Errors
    ///
    /// Propagates the estimator's [`StatsError`]s.
    pub fn estimate(
        &self,
        a_idx: usize,
        b_idx: usize,
        estimator: CorrelationEstimator,
    ) -> Result<f64, StatsError> {
        let mut x = Vec::with_capacity(self.len());
        let mut y = Vec::with_capacity(self.len());
        for i in 0..self.len() {
            let (xa, yb) = (self.a_values[a_idx][i], self.b_values[b_idx][i]);
            if xa.is_finite() && yb.is_finite() {
                x.push(xa);
                y.push(yb);
            }
        }
        estimator.estimate(&x, &y)
    }
}

/// Join two multi-column sketches on their hashed keys.
///
/// # Errors
///
/// [`SketchError::HasherMismatch`] for incompatible hasher configurations.
pub fn join_multi_sketches(
    a: &MultiColumnSketch,
    b: &MultiColumnSketch,
) -> Result<MultiJoinSample, SketchError> {
    if a.hasher != b.hasher {
        return Err(SketchError::HasherMismatch);
    }
    let ma = a.column_names.len();
    let mb = b.column_names.len();
    let mut key_hashes = Vec::new();
    let mut a_values: Vec<Vec<f64>> = vec![Vec::new(); ma];
    let mut b_values: Vec<Vec<f64>> = vec![Vec::new(); mb];

    let (ea, eb) = (a.entries(), b.entries());
    let (ua_all, ub_all) = (a.units(), b.units());
    let (mut i, mut j) = (0usize, 0usize);
    while i < ea.len() && j < eb.len() {
        match ua_all[i]
            .total_cmp(&ub_all[j])
            .then(ea[i].key.cmp(&eb[j].key))
        {
            Ordering::Equal => {
                key_hashes.push(ea[i].key);
                for (c, v) in ea[i].values.iter().enumerate() {
                    a_values[c].push(*v);
                }
                for (c, v) in eb[j].values.iter().enumerate() {
                    b_values[c].push(*v);
                }
                i += 1;
                j += 1;
            }
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
        }
    }

    Ok(MultiJoinSample {
        key_hashes,
        a_columns: a.column_names.clone(),
        b_columns: b.column_names.clone(),
        a_values,
        b_values,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketch_table::{NamedColumn, Table};

    fn table(name: &str, n: usize, shift: usize) -> Table {
        Table::from_columns(
            name,
            vec![
                NamedColumn::categorical_dense(
                    "k",
                    (shift..shift + n)
                        .map(|i| format!("key-{i}"))
                        .collect::<Vec<_>>(),
                ),
                NamedColumn::numeric_dense("a", (0..n).map(|i| i as f64).collect()),
                NamedColumn::numeric_dense("b", (0..n).map(|i| -(i as f64)).collect()),
            ],
        )
    }

    #[test]
    fn build_tracks_all_numeric_columns() {
        let t = table("t", 500, 0);
        let s = MultiColumnSketch::build(&t, "k", 64, TupleHasher::default(), Aggregation::Mean)
            .unwrap();
        assert_eq!(s.column_names(), &["a".to_string(), "b".to_string()]);
        assert_eq!(s.len(), 64);
        assert!(s.is_saturated());
        assert_eq!(s.column_index("b"), Some(1));
        assert!(s.column_bounds(0).is_some());
        assert_eq!(s.id(), "t/k");
    }

    #[test]
    fn build_rejects_bad_inputs() {
        let t = table("t", 10, 0);
        assert!(MultiColumnSketch::build(
            &t,
            "a", // numeric, not categorical
            8,
            TupleHasher::default(),
            Aggregation::Mean
        )
        .is_none());
        assert!(MultiColumnSketch::build(
            &t,
            "missing",
            8,
            TupleHasher::default(),
            Aggregation::Mean
        )
        .is_none());
    }

    #[test]
    fn join_estimates_cross_column_correlations() {
        let ta = table("ta", 4_000, 0);
        let tb = table("tb", 4_000, 1_000); // keys 1000..5000 overlap on 1000..4000
        let h = TupleHasher::default();
        let sa = MultiColumnSketch::build(&ta, "k", 256, h, Aggregation::Mean).unwrap();
        let sb = MultiColumnSketch::build(&tb, "k", 256, h, Aggregation::Mean).unwrap();
        let joined = join_multi_sketches(&sa, &sb).unwrap();
        assert!(joined.len() > 20, "join size {}", joined.len());

        // ta.a ~ i, tb.a ~ i − 1000 → perfectly positively correlated.
        let r = joined
            .estimate(0, 0, CorrelationEstimator::Pearson)
            .unwrap();
        assert!(r > 0.99, "r={r}");
        // ta.a vs tb.b → perfectly negative.
        let r = joined
            .estimate(0, 1, CorrelationEstimator::Pearson)
            .unwrap();
        assert!(r < -0.99, "r={r}");
    }

    #[test]
    fn multi_join_equals_pairwise_sketch_join_keys() {
        use crate::builder::{SketchBuilder, SketchConfig};
        let ta = table("ta", 2_000, 0);
        let tb = table("tb", 2_000, 500);
        let h = TupleHasher::default();
        let sa = MultiColumnSketch::build(&ta, "k", 128, h, Aggregation::Mean).unwrap();
        let sb = MultiColumnSketch::build(&tb, "k", 128, h, Aggregation::Mean).unwrap();
        let multi = join_multi_sketches(&sa, &sb).unwrap();

        let pa = ta.column_pair("k", "a").unwrap();
        let pb = tb.column_pair("k", "a").unwrap();
        let b = SketchBuilder::new(SketchConfig::with_size(128));
        let single = crate::join::join_sketches(&b.build(&pa), &b.build(&pb)).unwrap();
        assert_eq!(multi.key_hashes, single.key_hashes);
        assert_eq!(multi.a_values[0], single.x);
        assert_eq!(multi.b_values[0], single.y);
    }

    #[test]
    fn hasher_mismatch_rejected() {
        let t = table("t", 100, 0);
        let a = MultiColumnSketch::build(&t, "k", 16, TupleHasher::new_64(1), Aggregation::Mean)
            .unwrap();
        let b = MultiColumnSketch::build(&t, "k", 16, TupleHasher::new_64(2), Aggregation::Mean)
            .unwrap();
        assert_eq!(
            join_multi_sketches(&a, &b),
            Err(SketchError::HasherMismatch)
        );
    }

    #[test]
    fn null_cells_become_nan_and_are_skipped_in_estimates() {
        let t = Table::from_columns(
            "t",
            vec![
                NamedColumn::categorical_dense("k", vec!["a", "b", "c"]),
                NamedColumn::numeric("x", vec![Some(1.0), None, Some(3.0)]),
                NamedColumn::numeric("y", vec![Some(2.0), Some(5.0), Some(6.0)]),
            ],
        );
        let h = TupleHasher::default();
        let s = MultiColumnSketch::build(&t, "k", 8, h, Aggregation::Mean).unwrap();
        let joined = join_multi_sketches(&s, &s).unwrap();
        assert_eq!(joined.len(), 3);
        // x has a NaN for key "b": the x-x estimate uses 2 points only.
        let r = joined
            .estimate(0, 0, CorrelationEstimator::Pearson)
            .unwrap();
        assert!((r - 1.0).abs() < 1e-12);
    }
}
