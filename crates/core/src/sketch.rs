//! The correlation sketch data structure `L_⟨K,X⟩` (paper Section 3.1).

use sketch_hashing::{KeyHash, KeyHasher, TupleHasher};
use sketch_stats::ValueBounds;
use sketch_table::Aggregation;

use crate::builder::SelectionStrategy;

/// One sketch tuple `⟨h(k), x_k⟩`.
///
/// The unit-interval hash `h_u(h(k))` is *not* stored — exactly as the
/// paper notes for Figure 2, it "does not need to be stored as it can be
/// easily computed from h(k)".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SketchEntry {
    /// Hashed key identifier `h(k)`.
    pub key: KeyHash,
    /// Aggregated numeric value `x_k`.
    pub value: f64,
}

/// A correlation sketch: the `n` tuples `⟨h(k), x_k⟩` whose keys have the
/// smallest unit hashes `g(k) = h_u(h(k))`, plus the column metadata
/// needed at estimation time (full-column value bounds for the Hoeffding
/// CI, hasher configuration, aggregation).
///
/// Entries are kept sorted by ascending `(g(k), h(k))`.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelationSketch {
    pub(crate) id: String,
    pub(crate) hasher: TupleHasher,
    pub(crate) aggregation: Aggregation,
    pub(crate) strategy: SelectionStrategy,
    pub(crate) entries: Vec<SketchEntry>,
    /// Cached unit hashes `g(k)`, aligned with `entries`. Derived state:
    /// never serialized (the paper's Figure 2 note — `h_u(h(k))` "can be
    /// easily computed from h(k)"), recomputed once at construction/load
    /// time so the query path never rehashes inside comparison loops.
    pub(crate) units: Vec<f64>,
    /// Full-column value range; `None` when the column was empty.
    pub(crate) bounds: Option<ValueBounds>,
    pub(crate) rows_scanned: u64,
    /// True when at least one key was excluded (the sketch is a proper
    /// subset of the column's distinct keys).
    pub(crate) saturated: bool,
}

impl CorrelationSketch {
    /// Identifier of the column pair this sketch summarizes
    /// (`table/key/value`).
    #[must_use]
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Number of tuples stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the sketch holds no tuples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The stored tuples, ascending by unit hash.
    #[must_use]
    pub fn entries(&self) -> &[SketchEntry] {
        &self.entries
    }

    /// Hasher configuration the sketch was built with.
    #[must_use]
    pub fn hasher(&self) -> TupleHasher {
        self.hasher
    }

    /// Aggregation applied to repeated keys.
    #[must_use]
    pub fn aggregation(&self) -> Aggregation {
        self.aggregation
    }

    /// Selection strategy the sketch was built with.
    #[must_use]
    pub fn strategy(&self) -> SelectionStrategy {
        self.strategy
    }

    /// Full-column value bounds (`C_low`, `C_high` ingredients of the
    /// Section 4.3 Hoeffding interval); `None` for an empty column.
    #[must_use]
    pub fn value_bounds(&self) -> Option<ValueBounds> {
        self.bounds
    }

    /// Total rows consumed while building (including nulls dropped
    /// upstream this is the count of key/value rows seen).
    #[must_use]
    pub fn rows_scanned(&self) -> u64 {
        self.rows_scanned
    }

    /// Whether any key was excluded from the sketch. When `false` the
    /// sketch contains *every* distinct key of the column and KMV
    /// statistics are exact.
    #[must_use]
    pub fn is_saturated(&self) -> bool {
        self.saturated
    }

    /// Unit hash `g(k)` of an entry under this sketch's hasher.
    #[must_use]
    pub fn unit_hash(&self, entry: &SketchEntry) -> f64 {
        self.hasher.unit_hash(entry.key)
    }

    /// Cached unit hashes, aligned with [`Self::entries`] and ascending.
    /// Computed once at construction/load time.
    #[must_use]
    pub fn units(&self) -> &[f64] {
        &self.units
    }

    /// The k-th smallest unit hash `U(k)` — i.e. the largest unit hash
    /// retained. `None` for an empty sketch.
    #[must_use]
    pub fn kth_unit_hash(&self) -> Option<f64> {
        self.units.last().copied()
    }

    /// Binary search over the cached `(unit hash, key)` order. The
    /// query's unit hash is computed exactly once (it is loop-invariant),
    /// and the probe reads cached units instead of rehashing entries.
    fn position_of(&self, key: KeyHash) -> Option<usize> {
        let ku = self.hasher.unit_hash(key);
        let (mut lo, mut hi) = (0usize, self.entries.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.units[mid]
                .total_cmp(&ku)
                .then(self.entries[mid].key.cmp(&key))
            {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(mid),
            }
        }
        None
    }

    /// Does the sketch contain this hashed key?
    #[must_use]
    pub fn contains_key(&self, key: KeyHash) -> bool {
        self.position_of(key).is_some()
    }

    /// Look up the aggregated value stored for a hashed key.
    #[must_use]
    pub fn value_of(&self, key: KeyHash) -> Option<f64> {
        self.position_of(key).map(|i| self.entries[i].value)
    }

    /// Approximate heap memory footprint in bytes — the space-accuracy
    /// trade-off axis of Figure 4. Counts the entries *and* the cached
    /// unit hashes (the serialized form stores only the entries; the
    /// cache is rebuilt on load).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<SketchEntry>()
            + self.units.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::{SketchBuilder, SketchConfig};
    use sketch_table::ColumnPair;

    fn pair(n: usize) -> ColumnPair {
        ColumnPair::new(
            "t",
            "k",
            "v",
            (0..n).map(|i| format!("key-{i}")).collect(),
            (0..n).map(|i| i as f64).collect(),
        )
    }

    #[test]
    fn entries_sorted_by_unit_hash() {
        let s = SketchBuilder::new(SketchConfig::with_size(64)).build(&pair(1000));
        assert_eq!(s.len(), 64);
        let units: Vec<f64> = s.entries().iter().map(|e| s.unit_hash(e)).collect();
        for w in units.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn units_cache_matches_hasher_recomputation() {
        let s = SketchBuilder::new(SketchConfig::with_size(64)).build(&pair(1000));
        assert_eq!(s.units().len(), s.len());
        for (u, e) in s.units().iter().zip(s.entries()) {
            assert_eq!(*u, s.unit_hash(e));
        }
    }

    #[test]
    fn kth_unit_hash_is_max_retained() {
        let s = SketchBuilder::new(SketchConfig::with_size(32)).build(&pair(500));
        let max = s
            .entries()
            .iter()
            .map(|e| s.unit_hash(e))
            .fold(0.0f64, f64::max);
        assert_eq!(s.kth_unit_hash().unwrap(), max);
    }

    #[test]
    fn contains_and_value_of() {
        let s = SketchBuilder::new(SketchConfig::with_size(16)).build(&pair(100));
        for e in s.entries() {
            assert!(s.contains_key(e.key));
            assert_eq!(s.value_of(e.key), Some(e.value));
        }
        assert!(!s.contains_key(sketch_hashing::KeyHash(0xdead_beef_dead_beef)));
        assert_eq!(s.value_of(sketch_hashing::KeyHash(1)), None);
    }

    #[test]
    fn unsaturated_sketch_keeps_everything() {
        let s = SketchBuilder::new(SketchConfig::with_size(256)).build(&pair(100));
        assert_eq!(s.len(), 100);
        assert!(!s.is_saturated());
        assert_eq!(s.rows_scanned(), 100);
    }

    #[test]
    fn empty_column_gives_empty_sketch() {
        let s = SketchBuilder::new(SketchConfig::with_size(16)).build(&pair(0));
        assert!(s.is_empty());
        assert!(s.value_bounds().is_none());
        assert!(s.kth_unit_hash().is_none());
        assert_eq!(s.memory_bytes(), 0);
    }

    #[test]
    fn bounds_cover_full_column_not_just_sketch() {
        // Even values excluded from the sketch must influence the bounds.
        let s = SketchBuilder::new(SketchConfig::with_size(4)).build(&pair(1000));
        let b = s.value_bounds().unwrap();
        assert_eq!(b.c_low, 0.0);
        assert_eq!(b.c_high, 999.0);
        assert!(s.is_saturated());
    }
}
