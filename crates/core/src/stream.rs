//! Incremental (push-based) sketch construction.
//!
//! [`StreamingSketchBuilder`] is the stateful core behind
//! [`crate::builder::SketchBuilder`]: rows are `push`ed one at a time and
//! the sketch is extracted with [`StreamingSketchBuilder::finish`]. This
//! is the shape a production ingestion pipeline needs — the paper's
//! synopses "can be pre-computed" online as data arrives, one pass,
//! `O(sketch size)` memory.

use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap};

use sketch_hashing::{KeyHash, KeyHasher};
use sketch_stats::ValueBounds;
use sketch_table::AggState;

use crate::builder::{HeapKey, SelectionStrategy, SketchConfig};
use crate::sketch::{CorrelationSketch, SketchEntry};

/// Incremental builder for one column pair's sketch.
///
/// Each retained key's unit hash is stored next to its aggregation state,
/// so [`StreamingSketchBuilder::finish`] never rehashes retained keys —
/// `g(k)` is computed exactly once per pushed row, in
/// [`StreamingSketchBuilder::push`].
#[derive(Debug, Clone)]
pub struct StreamingSketchBuilder {
    id: String,
    config: SketchConfig,
    members: HashMap<KeyHash, (f64, AggState)>,
    /// Max-heap over `(unit hash, key)`; only used by the fixed-size
    /// strategy (empty for threshold sketches).
    heap: BinaryHeap<HeapKey>,
    bounds_min: f64,
    bounds_max: f64,
    rows_scanned: u64,
    saturated: bool,
}

impl StreamingSketchBuilder {
    /// Start building a sketch identified by `id`.
    #[must_use]
    pub fn new(id: impl Into<String>, config: SketchConfig) -> Self {
        let cap = match config.strategy {
            SelectionStrategy::FixedSize(n) => n.min(1 << 16),
            SelectionStrategy::Threshold(_) => 16,
        };
        Self {
            id: id.into(),
            config,
            members: HashMap::with_capacity(cap),
            heap: BinaryHeap::with_capacity(cap + 1),
            bounds_min: f64::INFINITY,
            bounds_max: f64::NEG_INFINITY,
            rows_scanned: 0,
            saturated: false,
        }
    }

    /// Number of tuples currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when nothing has been retained yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Rows consumed so far.
    #[must_use]
    pub fn rows_scanned(&self) -> u64 {
        self.rows_scanned
    }

    /// Feed one `(key, value)` row.
    pub fn push(&mut self, key: &str, value: f64) {
        self.rows_scanned += 1;
        self.bounds_min = self.bounds_min.min(value);
        self.bounds_max = self.bounds_max.max(value);

        let agg = self.config.aggregation;
        let (kh, unit) = self.config.hasher.g(key.as_bytes());
        match self.config.strategy {
            SelectionStrategy::FixedSize(n) => match self.members.entry(kh) {
                Entry::Occupied(mut e) => e.get_mut().1.update(value),
                Entry::Vacant(e) => {
                    let hk = HeapKey { unit, key: kh };
                    if self.heap.len() < n {
                        e.insert((unit, agg.start(value)));
                        self.heap.push(hk);
                    } else if n > 0 && hk < *self.heap.peek().expect("heap full, n > 0") {
                        e.insert((unit, agg.start(value)));
                        self.heap.push(hk);
                        let evicted = self.heap.pop().expect("non-empty heap");
                        self.members.remove(&evicted.key);
                        self.saturated = true;
                    } else {
                        self.saturated = true;
                    }
                }
            },
            SelectionStrategy::Threshold(t) => {
                if unit <= t {
                    match self.members.entry(kh) {
                        Entry::Occupied(mut e) => e.get_mut().1.update(value),
                        Entry::Vacant(e) => {
                            e.insert((unit, agg.start(value)));
                        }
                    }
                } else {
                    self.saturated = true;
                }
            }
        }
    }

    /// Finalize into an immutable [`CorrelationSketch`].
    #[must_use]
    pub fn finish(self) -> CorrelationSketch {
        // Units were captured at push time; no key is rehashed here.
        let mut tagged: Vec<(HeapKey, f64)> = self
            .members
            .into_iter() // lint: ordered (sorted by HeapKey before any output below)
            .map(|(kh, (unit, state))| (HeapKey { unit, key: kh }, state.value()))
            .collect();
        tagged.sort_by_key(|e| e.0);
        let mut entries = Vec::with_capacity(tagged.len());
        let mut units = Vec::with_capacity(tagged.len());
        for (hk, value) in tagged {
            entries.push(SketchEntry { key: hk.key, value });
            units.push(hk.unit);
        }
        CorrelationSketch {
            id: self.id,
            hasher: self.config.hasher,
            aggregation: self.config.aggregation,
            strategy: self.config.strategy,
            entries,
            units,
            bounds: (self.rows_scanned > 0)
                .then(|| ValueBounds::new(self.bounds_min, self.bounds_max)),
            rows_scanned: self.rows_scanned,
            saturated: self.saturated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SketchBuilder;
    use sketch_table::ColumnPair;

    fn pair(n: usize) -> ColumnPair {
        ColumnPair::new(
            "t",
            "k",
            "v",
            (0..n).map(|i| format!("key-{}", i % 700)).collect(),
            (0..n).map(|i| (i as f64 * 0.7).sin() * 50.0).collect(),
        )
    }

    #[test]
    fn push_by_push_equals_batch_build() {
        let p = pair(3_000);
        let cfg = SketchConfig::with_size(64);
        let batch = SketchBuilder::new(cfg).build(&p);

        let mut s = StreamingSketchBuilder::new(p.id(), cfg);
        for (k, v) in p.rows() {
            s.push(k, v);
        }
        assert_eq!(s.rows_scanned(), 3_000);
        assert_eq!(s.finish(), batch);
    }

    #[test]
    fn threshold_streaming_matches_batch() {
        let p = pair(2_000);
        let cfg = SketchConfig::with_threshold(0.05);
        let batch = SketchBuilder::new(cfg).build(&p);
        let mut s = StreamingSketchBuilder::new(p.id(), cfg);
        for (k, v) in p.rows() {
            s.push(k, v);
        }
        assert_eq!(s.finish(), batch);
    }

    #[test]
    fn incremental_state_inspection() {
        let cfg = SketchConfig::with_size(4);
        let mut s = StreamingSketchBuilder::new("inc", cfg);
        assert!(s.is_empty());
        s.push("a", 1.0);
        s.push("b", 2.0);
        assert_eq!(s.len(), 2);
        s.push("a", 3.0); // repeated key: aggregated, not re-added
        assert_eq!(s.len(), 2);
        assert_eq!(s.rows_scanned(), 3);
        let sketch = s.finish();
        assert_eq!(sketch.len(), 2);
    }

    #[test]
    fn empty_finish_is_empty_sketch() {
        let s = StreamingSketchBuilder::new("e", SketchConfig::with_size(8));
        let sketch = s.finish();
        assert!(sketch.is_empty());
        assert!(sketch.value_bounds().is_none());
    }
}
