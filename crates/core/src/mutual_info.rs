//! Mutual information from sketch-join samples.
//!
//! Theorem 1 guarantees the join sample is uniform, so *any* paired-sample
//! statistic is estimable — the paper explicitly names "the entropy-based
//! mutual information" as an example (Sections 1, 6). This module provides
//! a plug-in (histogram) MI estimator over the reconstructed sample,
//! demonstrating that claim end-to-end.

use crate::join::JoinSample;

/// Plug-in estimate of the mutual information `I(X; Y)` in *nats* from a
/// paired sample, using `bins × bins` equal-width histogram cells over the
/// sample ranges.
///
/// The plug-in estimator is biased upward for small samples (each empty
/// cell pulls the entropy down); callers comparing columns should use the
/// same `bins` everywhere. Returns `None` for fewer than 4 pairs or when
/// either marginal is constant.
#[must_use]
pub fn mutual_information(x: &[f64], y: &[f64], bins: usize) -> Option<f64> {
    if x.len() != y.len() || x.len() < 4 || bins < 2 {
        return None;
    }
    let n = x.len();
    let (x_lo, x_hi) = min_max(x)?;
    let (y_lo, y_hi) = min_max(y)?;
    if x_hi <= x_lo || y_hi <= y_lo {
        return None;
    }

    let mut joint = vec![0usize; bins * bins];
    let mut mx = vec![0usize; bins];
    let mut my = vec![0usize; bins];
    for (&xi, &yi) in x.iter().zip(y) {
        let bx = bin_of(xi, x_lo, x_hi, bins);
        let by = bin_of(yi, y_lo, y_hi, bins);
        joint[bx * bins + by] += 1;
        mx[bx] += 1;
        my[by] += 1;
    }

    let nf = n as f64;
    let mut mi = 0.0;
    for bx in 0..bins {
        for by in 0..bins {
            let c = joint[bx * bins + by];
            if c == 0 {
                continue;
            }
            let p_xy = c as f64 / nf;
            let p_x = mx[bx] as f64 / nf;
            let p_y = my[by] as f64 / nf;
            mi += p_xy * (p_xy / (p_x * p_y)).ln();
        }
    }
    Some(mi.max(0.0))
}

/// Heuristic bin count `⌈√(n/5)⌉` clamped to `[2, 32]`.
#[must_use]
pub fn default_bins(n: usize) -> usize {
    (((n as f64 / 5.0).sqrt()).ceil() as usize).clamp(2, 32)
}

/// Mutual information of a sketch-join sample with the default binning.
#[must_use]
pub fn join_sample_mutual_information(sample: &JoinSample) -> Option<f64> {
    mutual_information(&sample.x, &sample.y, default_bins(sample.len()))
}

fn min_max(v: &[f64]) -> Option<(f64, f64)> {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in v {
        if !x.is_finite() {
            return None;
        }
        lo = lo.min(x);
        hi = hi.max(x);
    }
    Some((lo, hi))
}

fn bin_of(v: f64, lo: f64, hi: f64, bins: usize) -> usize {
    let t = (v - lo) / (hi - lo);
    ((t * bins as f64) as usize).min(bins - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mi_of_identical_variables_is_high() {
        let x: Vec<f64> = (0..1000).map(|i| f64::from(i % 97)).collect();
        let mi = mutual_information(&x, &x, 8).unwrap();
        // I(X;X) = H(X) ≈ ln(8) for ~uniform marginals over 8 bins.
        assert!(mi > 1.5, "mi={mi}");
    }

    #[test]
    fn mi_of_independent_grid_is_near_zero() {
        // x cycles fast, y slow: an exactly balanced independent design.
        let x: Vec<f64> = (0..4096).map(|i| f64::from(i % 64)).collect();
        let y: Vec<f64> = (0..4096).map(|i| f64::from(i / 64)).collect();
        let mi = mutual_information(&x, &y, 8).unwrap();
        assert!(mi < 0.05, "mi={mi}");
    }

    #[test]
    fn mi_detects_nonlinear_dependence_that_pearson_misses() {
        // y = (x − 50)²: strong dependence, near-zero linear correlation.
        let x: Vec<f64> = (0..1000).map(|i| f64::from(i % 101)).collect();
        let y: Vec<f64> = x.iter().map(|v| (v - 50.0) * (v - 50.0)).collect();
        let r = sketch_stats::pearson(&x, &y).unwrap();
        assert!(r.abs() < 0.1, "pearson should be blind: {r}");
        let mi = mutual_information(&x, &y, 10).unwrap();
        assert!(mi > 0.8, "mi should see the parabola: {mi}");
    }

    #[test]
    fn mi_is_symmetric() {
        let x: Vec<f64> = (0..500).map(|i| ((i * 7) % 83) as f64).collect();
        let y: Vec<f64> = (0..500).map(|i| ((i * 13) % 41) as f64).collect();
        let a = mutual_information(&x, &y, 8).unwrap();
        let b = mutual_information(&y, &x, 8).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_are_none() {
        assert!(mutual_information(&[1.0, 2.0], &[1.0, 2.0], 8).is_none()); // too few
        let c = [5.0; 100];
        let v: Vec<f64> = (0..100).map(f64::from).collect();
        assert!(mutual_information(&c, &v, 8).is_none()); // constant marginal
        assert!(mutual_information(&v, &v, 1).is_none()); // one bin
        let nan = [f64::NAN; 100];
        assert!(mutual_information(&nan, &v, 8).is_none());
    }

    #[test]
    fn default_bins_scales_with_sample_size() {
        assert_eq!(default_bins(5), 2);
        assert_eq!(default_bins(500), 10);
        assert_eq!(default_bins(1_000_000), 32);
    }

    #[test]
    fn mi_never_negative() {
        for seed in 0..5u64 {
            let x: Vec<f64> = (0..200)
                .map(|i| (((i as u64).wrapping_mul(seed * 2 + 1) * 2654435761) % 1000) as f64)
                .collect();
            let y: Vec<f64> = (0..200)
                .map(|i| (((i as u64 + 7).wrapping_mul(seed * 3 + 5) * 40503) % 911) as f64)
                .collect();
            let mi = mutual_information(&x, &y, 8).unwrap();
            assert!(mi >= 0.0);
        }
    }
}
