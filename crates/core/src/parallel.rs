//! Parallel corpus sketching.
//!
//! Building one sketch is a single sequential pass, but a corpus has
//! thousands of independent column pairs — the offline indexing step of
//! the paper's pipeline (Section 5.5 indexes every pair of the NYC
//! corpus) is embarrassingly parallel. This module fans the work out over
//! scoped threads; results are bit-identical to the serial build and
//! returned in input order.

use sketch_table::ColumnPair;

use crate::builder::{SketchBuilder, SketchConfig};
use crate::sketch::CorrelationSketch;

/// Build sketches for every column pair using up to `threads` worker
/// threads. Deterministic: output order matches `pairs` and each sketch
/// equals its serial counterpart.
///
/// `threads == 0` is treated as 1; `threads` is capped at the number of
/// pairs.
#[must_use]
pub fn build_sketches_parallel(
    pairs: &[ColumnPair],
    config: SketchConfig,
    threads: usize,
) -> Vec<CorrelationSketch> {
    let threads = threads.clamp(1, pairs.len().max(1));
    if threads == 1 || pairs.len() < 2 {
        let builder = SketchBuilder::new(config);
        return pairs.iter().map(|p| builder.build(p)).collect();
    }

    // Static chunking: sketch cost is roughly proportional to row count,
    // and contiguous chunks keep the result concatenation trivial.
    let chunk_len = pairs.len().div_ceil(threads);
    let mut out = Vec::with_capacity(pairs.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = pairs
            .chunks(chunk_len)
            .map(|chunk| {
                scope.spawn(move || {
                    let builder = SketchBuilder::new(config);
                    chunk.iter().map(|p| builder.build(p)).collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("sketching workers do not panic"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(n_pairs: usize) -> Vec<ColumnPair> {
        (0..n_pairs)
            .map(|t| {
                let rows = 100 + (t * 37) % 900;
                ColumnPair::new(
                    format!("t{t}"),
                    "k",
                    "v",
                    (0..rows).map(|i| format!("key-{}-{i}", t % 3)).collect(),
                    (0..rows).map(|i| (i as f64 * 0.3).sin()).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn parallel_equals_serial() {
        let pairs = corpus(23);
        let config = SketchConfig::with_size(64);
        let serial = build_sketches_parallel(&pairs, config, 1);
        for threads in [2, 4, 7, 64] {
            let parallel = build_sketches_parallel(&pairs, config, threads);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn order_matches_input() {
        let pairs = corpus(9);
        let sketches = build_sketches_parallel(&pairs, SketchConfig::with_size(16), 4);
        for (p, s) in pairs.iter().zip(&sketches) {
            assert_eq!(s.id(), p.id());
        }
    }

    #[test]
    fn degenerate_thread_counts() {
        let pairs = corpus(3);
        let config = SketchConfig::with_size(16);
        assert_eq!(
            build_sketches_parallel(&pairs, config, 0),
            build_sketches_parallel(&pairs, config, 1)
        );
        assert_eq!(build_sketches_parallel(&[], config, 8), Vec::new());
    }
}
