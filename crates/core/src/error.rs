//! Error type for sketch operations.

/// Why a sketch operation could not be performed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SketchError {
    /// The two sketches were built with different hasher configurations
    /// and are therefore not joinable (their key identifiers disagree).
    HasherMismatch,
    /// The sketch join produced fewer rows than the operation requires.
    JoinTooSmall {
        /// Rows available in the join sample.
        got: usize,
        /// Rows required.
        needed: usize,
    },
    /// Deserialization failed.
    Corrupt(String),
    /// A binary store file did not start with the expected magic bytes.
    BadMagic {
        /// The four bytes actually found at the start of the file.
        found: [u8; 4],
    },
    /// A binary store file declares a format version this build cannot
    /// read.
    UnsupportedVersion {
        /// Version found in the file header.
        found: u16,
        /// Newest version this build supports.
        supported: u16,
    },
    /// Binary data ended before a declared section was complete (e.g. a
    /// truncated shard file).
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
        /// Bytes the section required.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A stored record's checksum does not match its payload — the bytes
    /// were corrupted at rest or in transit.
    ChecksumMismatch {
        /// Zero-based record index within the shard file.
        record: u64,
        /// Checksum stored alongside the record.
        stored: u64,
        /// Checksum recomputed from the payload bytes.
        computed: u64,
    },
    /// Two stored records share a sketch id; ids are primary keys in a
    /// corpus store, so this indicates a corrupted or mis-assembled
    /// corpus.
    DuplicateId(String),
    /// A generation number went backwards or repeated where the store
    /// format requires strict progression — a manifest listing delta
    /// shards out of order, or an incremental index trying to refresh
    /// from a store whose base was rewritten (compacted) underneath it.
    StaleGeneration {
        /// The generation actually found.
        found: u64,
        /// The nearest generation the store lineage would have accepted
        /// (the base generation when `found` predates it, the store
        /// generation when `found` is beyond it, the required next
        /// generation for out-of-order manifest delta lines).
        expected: u64,
    },
    /// A tombstone record names a sketch id that is not live at that
    /// point of the corpus log — the delete refers to a record that
    /// never existed or was already deleted.
    TombstoneForUnknownId(String),
}

impl std::fmt::Display for SketchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::HasherMismatch => {
                write!(f, "sketches use different hasher configurations")
            }
            Self::JoinTooSmall { got, needed } => {
                write!(f, "sketch join has {got} rows, operation needs {needed}")
            }
            Self::Corrupt(msg) => write!(f, "corrupt sketch data: {msg}"),
            Self::BadMagic { found } => {
                write!(f, "bad magic bytes {found:02x?} (expected \"CSKB\")")
            }
            Self::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported store format version {found} (this build reads ≤ {supported})"
                )
            }
            Self::Truncated {
                context,
                needed,
                available,
            } => {
                write!(
                    f,
                    "truncated data while reading {context}: needed {needed} bytes, \
                     only {available} available"
                )
            }
            Self::ChecksumMismatch {
                record,
                stored,
                computed,
            } => {
                write!(
                    f,
                    "checksum mismatch on record {record}: stored {stored:016x}, \
                     computed {computed:016x}"
                )
            }
            Self::DuplicateId(id) => write!(f, "duplicate sketch id '{id}' in corpus"),
            Self::StaleGeneration { found, expected } => {
                write!(
                    f,
                    "stale generation {found} does not match the store lineage \
                     (acceptable: {expected}); rebuild from the store"
                )
            }
            Self::TombstoneForUnknownId(id) => {
                write!(f, "tombstone for unknown sketch id '{id}'")
            }
        }
    }
}

impl std::error::Error for SketchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(SketchError::HasherMismatch.to_string().contains("hasher"));
        let e = SketchError::JoinTooSmall { got: 1, needed: 3 };
        assert!(e.to_string().contains("1"));
        assert!(e.to_string().contains("3"));
        assert!(SketchError::Corrupt("bad".into())
            .to_string()
            .contains("bad"));
        assert!(SketchError::BadMagic { found: *b"NOPE" }
            .to_string()
            .contains("magic"));
        let e = SketchError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains('9'));
        let e = SketchError::Truncated {
            context: "record payload",
            needed: 16,
            available: 3,
        };
        assert!(e.to_string().contains("record payload"));
        let e = SketchError::ChecksumMismatch {
            record: 4,
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("record 4"));
        assert!(SketchError::DuplicateId("t/k/v".into())
            .to_string()
            .contains("t/k/v"));
        let e = SketchError::StaleGeneration {
            found: 2,
            expected: 5,
        };
        assert!(e.to_string().contains('2') && e.to_string().contains('5'));
        assert!(SketchError::TombstoneForUnknownId("t/k/v".into())
            .to_string()
            .contains("t/k/v"));
    }
}
