//! Error type for sketch operations.

/// Why a sketch operation could not be performed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SketchError {
    /// The two sketches were built with different hasher configurations
    /// and are therefore not joinable (their key identifiers disagree).
    HasherMismatch,
    /// The sketch join produced fewer rows than the operation requires.
    JoinTooSmall {
        /// Rows available in the join sample.
        got: usize,
        /// Rows required.
        needed: usize,
    },
    /// Deserialization failed.
    Corrupt(String),
}

impl std::fmt::Display for SketchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::HasherMismatch => {
                write!(f, "sketches use different hasher configurations")
            }
            Self::JoinTooSmall { got, needed } => {
                write!(f, "sketch join has {got} rows, operation needs {needed}")
            }
            Self::Corrupt(msg) => write!(f, "corrupt sketch data: {msg}"),
        }
    }
}

impl std::error::Error for SketchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(SketchError::HasherMismatch.to_string().contains("hasher"));
        let e = SketchError::JoinTooSmall { got: 1, needed: 3 };
        assert!(e.to_string().contains("1"));
        assert!(e.to_string().contains("3"));
        assert!(SketchError::Corrupt("bad".into())
            .to_string()
            .contains("bad"));
    }
}
