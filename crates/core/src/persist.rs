//! Sketch persistence (feature `serde`): sketches are precomputed offline
//! and loaded into an index at query time (paper Section 1: synopses "can
//! be pre-computed and indexed"), so they need a stable storage format.

use serde::{Deserialize, Serialize};
use sketch_hashing::TupleHasher;
use sketch_stats::ValueBounds;
use sketch_table::Aggregation;

use crate::builder::SelectionStrategy;
use crate::error::SketchError;
use crate::sketch::{CorrelationSketch, SketchEntry};

/// Serializable mirror of [`CorrelationSketch`]. Entries are stored sorted
/// (their in-memory invariant); deserialization re-validates that.
#[derive(Debug, Serialize, Deserialize)]
struct SketchRecord {
    id: String,
    hasher: TupleHasher,
    aggregation: Aggregation,
    strategy: SelectionStrategy,
    entries: Vec<SketchEntry>,
    bounds: Option<ValueBounds>,
    rows_scanned: u64,
    saturated: bool,
}

impl CorrelationSketch {
    /// Serialize to a JSON string.
    ///
    /// # Errors
    ///
    /// [`SketchError::Corrupt`] if serialization fails (cannot happen for
    /// well-formed sketches; kept as a `Result` for API stability).
    pub fn to_json(&self) -> Result<String, SketchError> {
        let rec = SketchRecord {
            id: self.id.clone(),
            hasher: self.hasher,
            aggregation: self.aggregation,
            strategy: self.strategy,
            entries: self.entries.clone(),
            bounds: self.bounds,
            rows_scanned: self.rows_scanned,
            saturated: self.saturated,
        };
        serde_json::to_string(&rec).map_err(|e| SketchError::Corrupt(e.to_string()))
    }

    /// Deserialize from a JSON string produced by [`Self::to_json`].
    ///
    /// # Errors
    ///
    /// [`SketchError::Corrupt`] on malformed input or violated invariants
    /// (unsorted or non-finite entries).
    pub fn from_json(json: &str) -> Result<Self, SketchError> {
        let rec: SketchRecord =
            serde_json::from_str(json).map_err(|e| SketchError::Corrupt(e.to_string()))?;
        let sketch = Self {
            id: rec.id,
            hasher: rec.hasher,
            aggregation: rec.aggregation,
            strategy: rec.strategy,
            entries: rec.entries,
            bounds: rec.bounds,
            rows_scanned: rec.rows_scanned,
            saturated: rec.saturated,
        };
        // Re-validate invariants: ascending (unit hash, key) order and
        // finite values.
        use sketch_hashing::KeyHasher as _;
        for w in sketch.entries.windows(2) {
            let ua = sketch.hasher.unit_hash(w[0].key);
            let ub = sketch.hasher.unit_hash(w[1].key);
            if ua.total_cmp(&ub).then(w[0].key.cmp(&w[1].key)) != std::cmp::Ordering::Less {
                return Err(SketchError::Corrupt(
                    "entries not sorted by (unit hash, key)".into(),
                ));
            }
        }
        if sketch.entries.iter().any(|e| !e.value.is_finite()) {
            return Err(SketchError::Corrupt("non-finite entry value".into()));
        }
        Ok(sketch)
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::{SketchBuilder, SketchConfig};
    use crate::error::SketchError;
    use crate::join::join_sketches;
    use crate::sketch::CorrelationSketch;
    use sketch_table::ColumnPair;

    fn pair(n: usize) -> ColumnPair {
        ColumnPair::new(
            "t",
            "k",
            "v",
            (0..n).map(|i| format!("key-{i}")).collect(),
            (0..n).map(|i| i as f64 * 1.5).collect(),
        )
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let s = SketchBuilder::new(SketchConfig::with_size(64)).build(&pair(1000));
        let json = s.to_json().unwrap();
        let back = CorrelationSketch::from_json(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn roundtripped_sketches_still_join() {
        let b = SketchBuilder::new(SketchConfig::with_size(64));
        let a = b.build(&pair(2000));
        let c = b.build(&pair(1500));
        let a2 = CorrelationSketch::from_json(&a.to_json().unwrap()).unwrap();
        let c2 = CorrelationSketch::from_json(&c.to_json().unwrap()).unwrap();
        assert_eq!(
            join_sketches(&a, &c).unwrap(),
            join_sketches(&a2, &c2).unwrap()
        );
    }

    #[test]
    fn malformed_json_is_corrupt() {
        assert!(matches!(
            CorrelationSketch::from_json("{not json"),
            Err(SketchError::Corrupt(_))
        ));
    }

    #[test]
    fn tampered_order_is_rejected() {
        let s = SketchBuilder::new(SketchConfig::with_size(8)).build(&pair(100));
        let json = s.to_json().unwrap();
        let mut v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let entries = v["entries"].as_array_mut().unwrap();
        entries.reverse();
        let tampered = serde_json::to_string(&v).unwrap();
        assert!(matches!(
            CorrelationSketch::from_json(&tampered),
            Err(SketchError::Corrupt(_))
        ));
    }

    #[test]
    fn empty_sketch_roundtrips() {
        let s = SketchBuilder::new(SketchConfig::with_size(8)).build(&pair(0));
        let back = CorrelationSketch::from_json(&s.to_json().unwrap()).unwrap();
        assert_eq!(s, back);
    }
}
