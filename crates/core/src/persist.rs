//! Sketch persistence: sketches are precomputed offline and loaded into
//! an index at query time (paper Section 1: synopses "can be pre-computed
//! and indexed"), so they need a stable storage format.
//!
//! The format is a single JSON object per sketch (newline-delimited in
//! index files), written and parsed by a small dependency-free
//! serializer. Following the paper's Figure 2 note, unit hashes are *not*
//! stored — they are recomputed exactly once at load time into the
//! sketch's cached `units` side array, and key identifiers are stored as
//! fixed-width hex strings so 64-bit values survive JSON's number model.

use sketch_hashing::{HashBits, KeyHash, KeyHasher, TupleHasher};
use sketch_stats::ValueBounds;
use sketch_table::Aggregation;

use crate::builder::SelectionStrategy;
use crate::error::SketchError;
use crate::sketch::{CorrelationSketch, SketchEntry};

use crate::json::{push_f64, push_string};

impl CorrelationSketch {
    /// Serialize to a single-line JSON string.
    ///
    /// # Errors
    ///
    /// [`SketchError::Corrupt`] if the sketch holds non-finite values
    /// (such a sketch would not survive the load-time validation).
    pub fn to_json(&self) -> Result<String, SketchError> {
        if self.entries.iter().any(|e| !e.value.is_finite()) {
            return Err(SketchError::Corrupt("non-finite entry value".into()));
        }
        // Every float written must be finite: JSON has no inf/NaN, so a
        // non-finite bound or threshold would poison the output line.
        if self
            .bounds
            .is_some_and(|b| !b.c_low.is_finite() || !b.c_high.is_finite())
        {
            return Err(SketchError::Corrupt("non-finite value bounds".into()));
        }
        if let SelectionStrategy::Threshold(t) = self.strategy {
            if !t.is_finite() {
                return Err(SketchError::Corrupt("non-finite threshold".into()));
            }
        }
        let mut out = String::with_capacity(64 + 32 * self.entries.len());
        out.push_str("{\"id\":");
        push_string(&mut out, &self.id);
        out.push_str(",\"hasher\":{\"bits\":\"");
        out.push_str(match self.hasher.bits() {
            HashBits::B32 => "b32",
            HashBits::B64 => "b64",
        });
        out.push_str("\",\"seed\":");
        out.push_str(&self.hasher.seed().to_string());
        out.push_str("},\"aggregation\":\"");
        out.push_str(&self.aggregation.to_string());
        out.push_str("\",\"strategy\":{");
        match self.strategy {
            SelectionStrategy::FixedSize(n) => {
                out.push_str("\"fixed_size\":");
                out.push_str(&n.to_string());
            }
            SelectionStrategy::Threshold(t) => {
                out.push_str("\"threshold\":");
                push_f64(&mut out, t);
            }
        }
        out.push_str("},\"entries\":[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[\"{:016x}\",", e.key.value()));
            push_f64(&mut out, e.value);
            out.push(']');
        }
        out.push_str("],\"bounds\":");
        match self.bounds {
            Some(b) => {
                out.push('[');
                push_f64(&mut out, b.c_low);
                out.push(',');
                push_f64(&mut out, b.c_high);
                out.push(']');
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"rows_scanned\":");
        out.push_str(&self.rows_scanned.to_string());
        out.push_str(",\"saturated\":");
        out.push_str(if self.saturated { "true" } else { "false" });
        out.push('}');
        Ok(out)
    }

    /// Deserialize from a JSON string produced by [`Self::to_json`].
    ///
    /// Recomputes the cached unit hashes (one `h_u` evaluation per entry)
    /// and re-validates the in-memory invariants: ascending strict
    /// `(unit hash, key)` order and finite values.
    ///
    /// # Errors
    ///
    /// [`SketchError::Corrupt`] on malformed input or violated
    /// invariants.
    pub fn from_json(json: &str) -> Result<Self, SketchError> {
        let value = crate::json::parse(json).map_err(SketchError::Corrupt)?;
        let obj = value.as_object("sketch")?;

        let id = obj.get("id")?.as_str("id")?.to_string();

        let hasher_obj = obj.get("hasher")?.as_object("hasher")?;
        let seed = hasher_obj.get("seed")?.as_u64("hasher.seed")?;
        let hasher = match hasher_obj.get("bits")?.as_str("hasher.bits")? {
            "b32" => TupleHasher::paper_32(
                u32::try_from(seed)
                    .map_err(|_| SketchError::Corrupt("b32 hasher seed exceeds u32".into()))?,
            ),
            "b64" => TupleHasher::new_64(seed),
            other => {
                return Err(SketchError::Corrupt(format!(
                    "unknown hasher bits '{other}'"
                )))
            }
        };

        let aggregation: Aggregation = obj
            .get("aggregation")?
            .as_str("aggregation")?
            .parse()
            .map_err(SketchError::Corrupt)?;

        let strategy_obj = obj.get("strategy")?.as_object("strategy")?;
        let strategy = if let Ok(v) = strategy_obj.get("fixed_size") {
            SelectionStrategy::FixedSize(
                usize::try_from(v.as_u64("strategy.fixed_size")?)
                    .map_err(|_| SketchError::Corrupt("fixed_size exceeds usize".into()))?,
            )
        } else if let Ok(v) = strategy_obj.get("threshold") {
            SelectionStrategy::Threshold(v.as_f64("strategy.threshold")?)
        } else {
            return Err(SketchError::Corrupt(
                "strategy needs fixed_size or threshold".into(),
            ));
        };

        let mut entries = Vec::new();
        for (i, item) in obj.get("entries")?.as_array("entries")?.iter().enumerate() {
            let tuple = item.as_array("entry")?;
            if tuple.len() != 2 {
                return Err(SketchError::Corrupt(format!(
                    "entry {i} is not a [key, value] pair"
                )));
            }
            let key_hex = tuple[0].as_str("entry key")?;
            let key = u64::from_str_radix(key_hex, 16)
                .map_err(|e| SketchError::Corrupt(format!("entry {i} key: {e}")))?;
            entries.push(SketchEntry {
                key: KeyHash(key),
                value: tuple[1].as_f64("entry value")?,
            });
        }

        let bounds = match obj.get("bounds")? {
            crate::json::Value::Null => None,
            v => {
                let pair = v.as_array("bounds")?;
                if pair.len() != 2 {
                    return Err(SketchError::Corrupt("bounds is not [low, high]".into()));
                }
                Some(ValueBounds::new(
                    pair[0].as_f64("bounds.low")?,
                    pair[1].as_f64("bounds.high")?,
                ))
            }
        };

        let rows_scanned = obj.get("rows_scanned")?.as_u64("rows_scanned")?;
        let saturated = obj.get("saturated")?.as_bool("saturated")?;

        // Recompute the unit-hash cache once, then validate invariants
        // against it: strict ascending (unit hash, key) order and finite
        // values.
        let units: Vec<f64> = entries.iter().map(|e| hasher.unit_hash(e.key)).collect();
        for i in 1..entries.len() {
            if units[i - 1]
                .total_cmp(&units[i])
                .then(entries[i - 1].key.cmp(&entries[i].key))
                != std::cmp::Ordering::Less
            {
                return Err(SketchError::Corrupt(
                    "entries not sorted by (unit hash, key)".into(),
                ));
            }
        }
        if entries.iter().any(|e| !e.value.is_finite()) {
            return Err(SketchError::Corrupt("non-finite entry value".into()));
        }

        Ok(Self {
            id,
            hasher,
            aggregation,
            strategy,
            entries,
            units,
            bounds,
            rows_scanned,
            saturated,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::{SketchBuilder, SketchConfig};
    use crate::error::SketchError;
    use crate::join::join_sketches;
    use crate::sketch::CorrelationSketch;
    use sketch_table::ColumnPair;

    fn pair(n: usize) -> ColumnPair {
        ColumnPair::new(
            "t",
            "k",
            "v",
            (0..n).map(|i| format!("key-{i}")).collect(),
            (0..n).map(|i| i as f64 * 1.5).collect(),
        )
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let s = SketchBuilder::new(SketchConfig::with_size(64)).build(&pair(1000));
        let json = s.to_json().unwrap();
        let back = CorrelationSketch::from_json(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn roundtrip_preserves_unit_hash_cache() {
        let s = SketchBuilder::new(SketchConfig::with_size(32)).build(&pair(500));
        let back = CorrelationSketch::from_json(&s.to_json().unwrap()).unwrap();
        assert_eq!(s.units(), back.units());
        for (u, e) in back.units().iter().zip(back.entries()) {
            assert_eq!(*u, back.unit_hash(e));
        }
    }

    #[test]
    fn roundtripped_sketches_still_join() {
        let b = SketchBuilder::new(SketchConfig::with_size(64));
        let a = b.build(&pair(2000));
        let c = b.build(&pair(1500));
        let a2 = CorrelationSketch::from_json(&a.to_json().unwrap()).unwrap();
        let c2 = CorrelationSketch::from_json(&c.to_json().unwrap()).unwrap();
        assert_eq!(
            join_sketches(&a, &c).unwrap(),
            join_sketches(&a2, &c2).unwrap()
        );
    }

    #[test]
    fn threshold_and_32bit_configs_roundtrip() {
        let t = SketchBuilder::new(SketchConfig::with_threshold(0.05)).build(&pair(2000));
        assert_eq!(
            CorrelationSketch::from_json(&t.to_json().unwrap()).unwrap(),
            t
        );
        let cfg = SketchConfig::with_size(16).hasher(sketch_hashing::TupleHasher::paper_32(7));
        let p32 = SketchBuilder::new(cfg).build(&pair(200));
        assert_eq!(
            CorrelationSketch::from_json(&p32.to_json().unwrap()).unwrap(),
            p32
        );
    }

    #[test]
    fn id_with_quotes_and_newlines_roundtrips() {
        let p = ColumnPair::new(
            "we \"said\"\nhi\\there",
            "k",
            "v",
            vec!["a".into(), "b".into()],
            vec![1.0, 2.0],
        );
        let s = SketchBuilder::new(SketchConfig::with_size(8)).build(&p);
        let back = CorrelationSketch::from_json(&s.to_json().unwrap()).unwrap();
        assert_eq!(back.id(), s.id());
    }

    #[test]
    fn malformed_json_is_corrupt() {
        assert!(matches!(
            CorrelationSketch::from_json("{not json"),
            Err(SketchError::Corrupt(_))
        ));
        assert!(matches!(
            CorrelationSketch::from_json("{}"),
            Err(SketchError::Corrupt(_))
        ));
    }

    #[test]
    fn tampered_order_is_rejected() {
        let s = SketchBuilder::new(SketchConfig::with_size(8)).build(&pair(100));
        let json = s.to_json().unwrap();
        // Reverse the entries array textually: entries are flat
        // ["hex",value] tuples, so splitting on "],[" is unambiguous.
        let (head, rest) = json.split_once("\"entries\":[[").unwrap();
        let (entries, tail) = rest.split_once("]]").unwrap();
        let mut parts: Vec<&str> = entries.split("],[").collect();
        assert!(parts.len() >= 2);
        parts.reverse();
        let tampered = format!("{head}\"entries\":[[{}]]{tail}", parts.join("],["));
        assert!(matches!(
            CorrelationSketch::from_json(&tampered),
            Err(SketchError::Corrupt(_))
        ));
    }

    #[test]
    fn non_finite_bounds_refused_at_write_time() {
        // Min aggregation keeps the entry finite while the full-column
        // bounds capture the infinity — the write must fail loudly
        // instead of emitting a line that poisons the index on load.
        use sketch_table::Aggregation;
        let cfg = SketchConfig::with_size(8).aggregation(Aggregation::Min);
        let mut b = crate::stream::StreamingSketchBuilder::new("t/k/v", cfg);
        b.push("a", f64::INFINITY);
        b.push("a", 1.0);
        let s = b.finish();
        assert!(s.entries().iter().all(|e| e.value.is_finite()));
        assert!(matches!(s.to_json(), Err(SketchError::Corrupt(_))));
    }

    #[test]
    fn empty_sketch_roundtrips() {
        let s = SketchBuilder::new(SketchConfig::with_size(8)).build(&pair(0));
        let back = CorrelationSketch::from_json(&s.to_json().unwrap()).unwrap();
        assert_eq!(s, back);
    }
}
