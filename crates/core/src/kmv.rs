//! KMV statistics retained by correlation sketches (paper Sections 2.1 and
//! 3.3): distinct values, union/intersection cardinalities, Jaccard
//! similarity and containment.
//!
//! "Another benefit of Correlation Sketches is that it retains all
//! information contained in a KMV sketch … it also enables the estimation
//! of all statistics supported by the family of minimum-value sketches."
//! These estimates are what the `ĵc` ranking baseline and the join-size
//! predictions use.

use crate::builder::SelectionStrategy;
use crate::error::SketchError;
use crate::sketch::CorrelationSketch;

/// Unbiased distinct-value estimator `D̂_UB = (k − 1)/U(k)` of Beyer et
/// al. for a fixed-size sketch, or `|S|/t` for a threshold sketch. When
/// the sketch is unsaturated (no key was ever excluded) the count is
/// exact.
#[must_use]
pub fn distinct_value_estimate(s: &CorrelationSketch) -> f64 {
    if !s.is_saturated() || s.is_empty() {
        return s.len() as f64;
    }
    match s.strategy() {
        SelectionStrategy::FixedSize(_) => {
            let k = s.len() as f64;
            match s.kth_unit_hash() {
                Some(u) if u > 0.0 => (k - 1.0) / u,
                _ => k,
            }
        }
        SelectionStrategy::Threshold(t) => {
            if t > 0.0 {
                s.len() as f64 / t
            } else {
                s.len() as f64
            }
        }
    }
}

/// The basic estimator `D̂_BE = k/U(k)` (Bar-Yossef et al.), kept for the
/// estimator-comparison ablation; biased but historically the baseline.
#[must_use]
pub fn basic_distinct_estimate(s: &CorrelationSketch) -> f64 {
    if !s.is_saturated() || s.is_empty() {
        return s.len() as f64;
    }
    let k = s.len() as f64;
    match s.kth_unit_hash() {
        Some(u) if u > 0.0 => k / u,
        _ => k,
    }
}

/// Walk the two sorted entry lists and produce the combined KMV synopsis
/// `L = L_A ⊕ L_B`: the `k = min(k_A, k_B)` smallest distinct hashed keys
/// of the union. Returns `(k, U(k), K∩)` where `K∩` counts combined keys
/// present in *both* sketches.
fn combine(
    a: &CorrelationSketch,
    b: &CorrelationSketch,
) -> Result<(usize, f64, usize), SketchError> {
    if a.hasher() != b.hasher() {
        return Err(SketchError::HasherMismatch);
    }
    let k = a.len().min(b.len());
    if k == 0 {
        return Ok((0, 0.0, 0));
    }
    let ea = a.entries();
    let eb = b.entries();
    // Merge-walk on the cached unit hashes — no rehashing per comparison.
    let (ua_all, ub_all) = (a.units(), b.units());
    let (mut i, mut j) = (0usize, 0usize);
    let mut taken = 0usize;
    let mut common = 0usize;
    let mut last_unit = 0.0f64;
    while taken < k {
        let ca = (i < ea.len()).then(|| (ua_all[i], ea[i].key));
        let cb = (j < eb.len()).then(|| (ub_all[j], eb[j].key));
        match (ca, cb) {
            (Some((ua, ka)), Some((ub, kb))) => {
                match ua.total_cmp(&ub).then(ka.cmp(&kb)) {
                    std::cmp::Ordering::Equal => {
                        common += 1;
                        last_unit = ua;
                        i += 1;
                        j += 1;
                    }
                    std::cmp::Ordering::Less => {
                        last_unit = ua;
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        last_unit = ub;
                        j += 1;
                    }
                }
                taken += 1;
            }
            (Some((ua, _)), None) => {
                last_unit = ua;
                i += 1;
                taken += 1;
            }
            (None, Some((ub, _))) => {
                last_unit = ub;
                j += 1;
                taken += 1;
            }
            (None, None) => break,
        }
    }
    Ok((taken, last_unit, common))
}

/// Estimate the number of distinct keys in the union `K_A ∪ K_B` by
/// applying `D̂_UB` to the combined synopsis `L_A ⊕ L_B`.
///
/// # Errors
///
/// [`SketchError::HasherMismatch`] for incompatible sketches.
pub fn union_estimate(a: &CorrelationSketch, b: &CorrelationSketch) -> Result<f64, SketchError> {
    if a.hasher() != b.hasher() {
        return Err(SketchError::HasherMismatch);
    }
    // An empty side contributes nothing: the union is the other column.
    if a.is_empty() {
        return Ok(distinct_value_estimate(b));
    }
    if b.is_empty() {
        return Ok(distinct_value_estimate(a));
    }
    if !a.is_saturated() && !b.is_saturated() {
        // Exact: count distinct union of the (complete) key sets.
        let (union, _) = combine_full(a, b);
        return Ok(union as f64);
    }
    let (k, u_k, _) = combine(a, b)?;
    if k == 0 {
        return Ok(0.0);
    }
    if u_k <= 0.0 {
        return Ok(k as f64);
    }
    Ok((k as f64 - 1.0) / u_k)
}

/// Exact `(union, intersection)` counts over complete (unsaturated)
/// sketches. Both entry lists are sorted by `(unit hash, key)`, so a
/// single merge walk suffices — no hash sets.
fn combine_full(a: &CorrelationSketch, b: &CorrelationSketch) -> (usize, usize) {
    let (ea, eb) = (a.entries(), b.entries());
    let (ua, ub) = (a.units(), b.units());
    let (mut i, mut j) = (0usize, 0usize);
    let mut inter = 0usize;
    while i < ea.len() && j < eb.len() {
        match ua[i].total_cmp(&ub[j]).then(ea[i].key.cmp(&eb[j].key)) {
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    (ea.len() + eb.len() - inter, inter)
}

/// Estimate the number of distinct keys in the intersection `K_A ∩ K_B`
/// — paper Eq. 1: `D̂∩ = (K∩/k) · (k − 1)/U(k)`.
///
/// After per-key aggregation every key appears once per table, so this is
/// also the estimated *join cardinality* `|T_{X⨝Y}|` (Section 3.3).
///
/// # Errors
///
/// [`SketchError::HasherMismatch`] for incompatible sketches.
pub fn intersection_estimate(
    a: &CorrelationSketch,
    b: &CorrelationSketch,
) -> Result<f64, SketchError> {
    if a.hasher() != b.hasher() {
        return Err(SketchError::HasherMismatch);
    }
    if !a.is_saturated() && !b.is_saturated() {
        let (_, inter) = combine_full(a, b);
        return Ok(inter as f64);
    }
    let (k, u_k, common) = combine(a, b)?;
    if k == 0 {
        return Ok(0.0);
    }
    if u_k <= 0.0 {
        return Ok(common as f64);
    }
    Ok((common as f64 / k as f64) * ((k as f64 - 1.0) / u_k))
}

/// Estimate the Jaccard similarity `|K_A ∩ K_B| / |K_A ∪ K_B|` as
/// `K∩ / k` over the combined synopsis.
///
/// # Errors
///
/// [`SketchError::HasherMismatch`] for incompatible sketches.
pub fn jaccard_estimate(a: &CorrelationSketch, b: &CorrelationSketch) -> Result<f64, SketchError> {
    if !a.is_saturated() && !b.is_saturated() {
        if a.hasher() != b.hasher() {
            return Err(SketchError::HasherMismatch);
        }
        let (union, inter) = combine_full(a, b);
        return Ok(if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        });
    }
    let (k, _, common) = combine(a, b)?;
    if k == 0 {
        return Ok(0.0);
    }
    Ok(common as f64 / k as f64)
}

/// Estimate the Jaccard containment `|K_A ∩ K_B| / |K_A|` of `a`'s keys in
/// `b` — the `ĵc` baseline of the paper's ranking evaluation
/// (Section 5.4). Clamped to `[0, 1]`.
///
/// # Errors
///
/// [`SketchError::HasherMismatch`] for incompatible sketches.
pub fn containment_estimate(
    a: &CorrelationSketch,
    b: &CorrelationSketch,
) -> Result<f64, SketchError> {
    let inter = intersection_estimate(a, b)?;
    let da = distinct_value_estimate(a);
    if da <= 0.0 {
        return Ok(0.0);
    }
    Ok((inter / da).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{SketchBuilder, SketchConfig};
    use sketch_table::ColumnPair;

    fn keyed_pair(table: &str, range: std::ops::Range<usize>) -> ColumnPair {
        ColumnPair::new(
            table,
            "k",
            "v",
            range.clone().map(|i| format!("key-{i}")).collect(),
            range.map(|i| i as f64).collect(),
        )
    }

    fn sketch(p: &ColumnPair, n: usize) -> CorrelationSketch {
        SketchBuilder::new(SketchConfig::with_size(n)).build(p)
    }

    #[test]
    fn dv_estimate_exact_when_unsaturated() {
        let s = sketch(&keyed_pair("t", 0..100), 256);
        assert_eq!(distinct_value_estimate(&s), 100.0);
        assert_eq!(basic_distinct_estimate(&s), 100.0);
    }

    #[test]
    fn dv_estimate_within_error_envelope() {
        // Theoretical relative std error of D̂_UB ≈ 1/√(k−2).
        for &(d, k) in &[(10_000usize, 256usize), (50_000, 1024), (5_000, 128)] {
            let s = sketch(&keyed_pair("t", 0..d), k);
            let est = distinct_value_estimate(&s);
            let rel = (est - d as f64).abs() / d as f64;
            let three_sigma = 3.0 / ((k as f64) - 2.0).sqrt();
            assert!(rel < three_sigma, "d={d} k={k}: est={est} rel={rel}");
        }
    }

    #[test]
    fn basic_estimator_close_to_unbiased_for_large_k() {
        let s = sketch(&keyed_pair("t", 0..20_000), 512);
        let ub = distinct_value_estimate(&s);
        let be = basic_distinct_estimate(&s);
        assert!((ub - be).abs() / ub < 0.01);
        assert!(be > ub); // k/U(k) > (k−1)/U(k)
    }

    #[test]
    fn union_exact_for_small_tables() {
        let a = sketch(&keyed_pair("a", 0..50), 256);
        let b = sketch(&keyed_pair("b", 25..75), 256);
        assert_eq!(union_estimate(&a, &b).unwrap(), 75.0);
        assert_eq!(intersection_estimate(&a, &b).unwrap(), 25.0);
        assert!((jaccard_estimate(&a, &b).unwrap() - 25.0 / 75.0).abs() < 1e-12);
        assert!((containment_estimate(&a, &b).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn union_estimate_large_overlapping_sets() {
        let a = sketch(&keyed_pair("a", 0..30_000), 512);
        let b = sketch(&keyed_pair("b", 10_000..40_000), 512);
        let est = union_estimate(&a, &b).unwrap();
        let truth = 40_000.0;
        assert!(
            (est - truth).abs() / truth < 0.2,
            "union est {est} vs {truth}"
        );
    }

    #[test]
    fn intersection_estimate_large_overlapping_sets() {
        let a = sketch(&keyed_pair("a", 0..30_000), 1024);
        let b = sketch(&keyed_pair("b", 10_000..40_000), 1024);
        let est = intersection_estimate(&a, &b).unwrap();
        let truth = 20_000.0;
        assert!(
            (est - truth).abs() / truth < 0.25,
            "intersection est {est} vs {truth}"
        );
    }

    #[test]
    fn jaccard_estimate_tracks_truth() {
        let a = sketch(&keyed_pair("a", 0..20_000), 512);
        let b = sketch(&keyed_pair("b", 5_000..25_000), 512);
        let est = jaccard_estimate(&a, &b).unwrap();
        let truth = 15_000.0 / 25_000.0;
        assert!((est - truth).abs() < 0.1, "jc est {est} vs {truth}");
    }

    #[test]
    fn containment_estimate_tracks_truth() {
        let a = sketch(&keyed_pair("a", 0..10_000), 512);
        let b = sketch(&keyed_pair("b", 0..50_000), 512);
        // All of a's keys are contained in b.
        let est = containment_estimate(&a, &b).unwrap();
        assert!(est > 0.75, "containment est {est}, truth 1.0");
        // And the reverse containment is ≈ 0.2.
        let rev = containment_estimate(&b, &a).unwrap();
        assert!((rev - 0.2).abs() < 0.1, "reverse containment {rev}");
    }

    #[test]
    fn disjoint_sets_give_zero_overlap_statistics() {
        let a = sketch(&keyed_pair("a", 0..10_000), 256);
        let b = sketch(
            &ColumnPair::new(
                "b",
                "k",
                "v",
                (0..10_000).map(|i| format!("other-{i}")).collect(),
                (0..10_000).map(|i| i as f64).collect(),
            ),
            256,
        );
        assert_eq!(intersection_estimate(&a, &b).unwrap(), 0.0);
        assert_eq!(jaccard_estimate(&a, &b).unwrap(), 0.0);
        assert_eq!(containment_estimate(&a, &b).unwrap(), 0.0);
    }

    #[test]
    fn empty_sketch_edge_cases() {
        let e = sketch(&keyed_pair("e", 0..0), 64);
        let a = sketch(&keyed_pair("a", 0..100), 256);
        assert_eq!(distinct_value_estimate(&e), 0.0);
        assert_eq!(union_estimate(&e, &a).unwrap(), 100.0);
        assert_eq!(intersection_estimate(&e, &a).unwrap(), 0.0);
        assert_eq!(containment_estimate(&e, &a).unwrap(), 0.0);
    }

    #[test]
    fn hasher_mismatch_rejected() {
        use sketch_hashing::TupleHasher;
        let p = keyed_pair("t", 0..100);
        let a = sketch(&p, 16);
        let c = SketchBuilder::new(SketchConfig::with_size(16).hasher(TupleHasher::new_64(5)))
            .build(&p);
        assert!(intersection_estimate(&a, &c).is_err());
        assert!(union_estimate(&a, &c).is_err());
    }

    #[test]
    fn threshold_sketch_dv_estimate() {
        let p = keyed_pair("t", 0..20_000);
        let s = SketchBuilder::new(SketchConfig::with_threshold(0.02)).build(&p);
        let est = distinct_value_estimate(&s);
        assert!(
            (est - 20_000.0).abs() / 20_000.0 < 0.2,
            "threshold DV est {est}"
        );
    }
}
