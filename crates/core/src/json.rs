//! A small dependency-free JSON toolkit shared by every layer that
//! speaks JSON: sketch persistence ([`crate::persist`]), the CLI's
//! machine-readable reports, and the `sketch-server` HTTP service.
//!
//! Reading is a recursive-descent parser into a borrowed-friendly
//! [`Value`] tree; numbers keep their raw text so `u64` identifiers and
//! counters survive without a round-trip through `f64`. Writing is a
//! pair of append helpers ([`push_string`], [`push_f64`]) chosen so that
//! the output of a given value is deterministic byte for byte — the
//! property the server's response cache and the store equivalence tests
//! rely on.

use crate::error::SketchError;

/// Append `s` to `out` as a JSON string literal, escaping quotes,
/// backslashes, and control characters.
pub fn push_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append the shortest decimal representation of `v` that round-trips
/// through `f64` parsing (Rust's `Debug` float formatting guarantees
/// this). The caller must ensure `v` is finite — JSON has no inf/NaN.
pub fn push_f64(out: &mut String, v: f64) {
    out.push_str(&format!("{v:?}"));
}

/// A parsed JSON value. Numbers keep their raw text so `u64` keys and
/// counters survive without a round-trip through `f64`.
#[derive(Debug, Clone)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, unparsed.
    Num(String),
    /// A string with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (insertion order preserved).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// View as an object; `what` names the value in the error message.
    ///
    /// # Errors
    ///
    /// [`SketchError::Corrupt`] when the value is not an object.
    pub fn as_object(&self, what: &str) -> Result<Obj<'_>, SketchError> {
        match self {
            Value::Obj(fields) => Ok(Obj(fields)),
            _ => Err(SketchError::Corrupt(format!("{what}: expected object"))),
        }
    }

    /// View as an array.
    ///
    /// # Errors
    ///
    /// [`SketchError::Corrupt`] when the value is not an array.
    pub fn as_array(&self, what: &str) -> Result<&[Value], SketchError> {
        match self {
            Value::Arr(items) => Ok(items),
            _ => Err(SketchError::Corrupt(format!("{what}: expected array"))),
        }
    }

    /// View as a string.
    ///
    /// # Errors
    ///
    /// [`SketchError::Corrupt`] when the value is not a string.
    pub fn as_str(&self, what: &str) -> Result<&str, SketchError> {
        match self {
            Value::Str(s) => Ok(s),
            _ => Err(SketchError::Corrupt(format!("{what}: expected string"))),
        }
    }

    /// View as a bool.
    ///
    /// # Errors
    ///
    /// [`SketchError::Corrupt`] when the value is not a bool.
    pub fn as_bool(&self, what: &str) -> Result<bool, SketchError> {
        match self {
            Value::Bool(b) => Ok(*b),
            _ => Err(SketchError::Corrupt(format!("{what}: expected bool"))),
        }
    }

    /// Parse as `u64`.
    ///
    /// # Errors
    ///
    /// [`SketchError::Corrupt`] when the value is not an unsigned
    /// integer.
    pub fn as_u64(&self, what: &str) -> Result<u64, SketchError> {
        match self {
            Value::Num(raw) => raw
                .parse()
                .map_err(|e| SketchError::Corrupt(format!("{what}: {e}"))),
            _ => Err(SketchError::Corrupt(format!("{what}: expected integer"))),
        }
    }

    /// Parse as `f64`.
    ///
    /// # Errors
    ///
    /// [`SketchError::Corrupt`] when the value is not a number.
    pub fn as_f64(&self, what: &str) -> Result<f64, SketchError> {
        match self {
            Value::Num(raw) => raw
                .parse()
                .map_err(|e| SketchError::Corrupt(format!("{what}: {e}"))),
            _ => Err(SketchError::Corrupt(format!("{what}: expected number"))),
        }
    }
}

/// Borrowed field list of a [`Value::Obj`], so lookups read as
/// `obj.get("field")?`.
#[derive(Clone, Copy)]
pub struct Obj<'a>(&'a [(String, Value)]);

impl<'a> Obj<'a> {
    /// Look up a required field.
    ///
    /// # Errors
    ///
    /// [`SketchError::Corrupt`] when the field is absent.
    pub fn get(&self, field: &str) -> Result<&'a Value, SketchError> {
        self.0
            .iter()
            .find(|(k, _)| k == field)
            .map(|(_, v)| v)
            .ok_or_else(|| SketchError::Corrupt(format!("missing field '{field}'")))
    }

    /// Look up an optional field (`None` when absent).
    #[must_use]
    pub fn opt(&self, field: &str) -> Option<&'a Value> {
        self.0.iter().find(|(k, _)| k == field).map(|(_, v)| v)
    }
}

/// Parse one JSON document (trailing whitespace allowed, nothing else
/// after the value).
///
/// # Errors
///
/// A human-readable description of the first malformed byte.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

/// Maximum container nesting. The parser is recursive-descent, so
/// without a ceiling a few tens of KB of `[` bytes from an untrusted
/// source would overflow the thread stack; 64 is far beyond any
/// document this workspace exchanges.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.nested(Self::array),
            Some(b'{') => self.nested(Self::object),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number bytes");
        if raw.is_empty() || raw == "-" {
            return Err(format!("malformed number at offset {start}"));
        }
        Ok(Value::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the maximal escape-free run in one go.
            while self
                .peek()
                .is_some_and(|b| b != b'"' && b != b'\\' && b >= 0x20)
            {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| format!("invalid utf-8 in string: {e}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let ch = if (0xd800..0xdc00).contains(&cp) {
                                // Surrogate pair.
                                if !self.literal("\\u") {
                                    return Err("lone high surrogate".into());
                                }
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err("bad low surrogate".into());
                                }
                                let c = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| "bad \\u escape".to_string())?);
                        }
                        other => return Err(format!("unknown escape '\\{}'", other as char)),
                    }
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| "truncated \\u escape".to_string())?;
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u escape: {e}"))
    }

    fn nested(&mut self, f: fn(&mut Self) -> Result<Value, String>) -> Result<Value, String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at offset {}",
                self.pos
            ));
        }
        let v = f(self)?;
        self.depth -= 1;
        Ok(v)
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structures() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":"x\ny","c":true,"d":null}"#).unwrap();
        let obj = v.as_object("root").unwrap();
        let arr = obj.get("a").unwrap().as_array("a").unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_u64("a0").unwrap(), 1);
        assert_eq!(arr[1].as_f64("a1").unwrap(), 2.5);
        assert_eq!(arr[2].as_f64("a2").unwrap(), -300.0);
        assert_eq!(obj.get("b").unwrap().as_str("b").unwrap(), "x\ny");
        assert!(obj.get("c").unwrap().as_bool("c").unwrap());
        assert!(matches!(obj.get("d").unwrap(), Value::Null));
        assert!(obj.opt("missing").is_none());
        assert!(obj.get("missing").is_err());
    }

    #[test]
    fn rejects_trailing_garbage_and_type_confusion() {
        assert!(parse("{} junk").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nope").is_err());
        let v = parse("[1]").unwrap();
        assert!(v.as_object("v").is_err());
        assert!(v.as_str("v").is_err());
        assert!(v.as_u64("v").is_err());
        assert!(v.as_bool("v").is_err());
    }

    #[test]
    fn nesting_depth_is_bounded() {
        // At the limit: fine.
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
        // One past: typed error, not a stack overflow.
        let over = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        assert!(parse(&over).unwrap_err().contains("nesting"));
        // The attack shape: a huge run of '[' must not crash the
        // process (pre-fix this overflowed a 2 MiB thread stack).
        let bomb = "[".repeat(512 * 1024);
        assert!(parse(&bomb).is_err());
        // Objects count toward the same depth, and mixed nesting too.
        let obj_bomb = "{\"a\":".repeat(MAX_DEPTH + 1);
        assert!(parse(&obj_bomb).unwrap_err().contains("nesting"));
    }

    #[test]
    fn string_writer_roundtrips_through_parser() {
        let nasty = "quote \" slash \\ nl \n tab \t bell \u{7} unicode ✓";
        let mut out = String::new();
        push_string(&mut out, nasty);
        let back = parse(&out).unwrap();
        assert_eq!(back.as_str("s").unwrap(), nasty);
    }

    #[test]
    fn f64_writer_roundtrips_exactly() {
        for v in [0.0, -0.0, 1.5, 1e-300, 123_456_789.123_456_78, f64::MIN] {
            let mut out = String::new();
            push_f64(&mut out, v);
            let back: f64 = out.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{out}");
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap().as_str("s").unwrap(),
            "\u{1f600}"
        );
        assert!(parse(r#""\ud83d""#).is_err());
    }
}
