//! Property tests: the binary codec and the JSON codec are bit-exact
//! equivalents for every sketch shape the builder can produce — empty,
//! single-entry, saturated, max-size (nothing excluded), threshold
//! strategy, both hasher widths, every aggregation — including the
//! rebuilt `units` caches.

use proptest::collection::vec;
use proptest::prelude::*;

use correlation_sketches::{CorrelationSketch, SketchBuilder, SketchConfig};
use sketch_hashing::TupleHasher;
use sketch_table::{Aggregation, ColumnPair};

fn pair_from(keys: &[u16], values: &[f64]) -> ColumnPair {
    let n = keys.len().min(values.len());
    ColumnPair::new(
        "t",
        "k",
        "v",
        keys[..n].iter().map(|k| format!("key-{k}")).collect(),
        values[..n].to_vec(),
    )
}

/// Bit-exact sketch comparison: `PartialEq` plus explicit `f64` bit
/// checks on entry values, units, and bounds (so `-0.0` vs `0.0` or NaN
/// payload drift could never slip through an `==`).
fn assert_bit_identical(a: &CorrelationSketch, b: &CorrelationSketch) {
    assert_eq!(a, b);
    assert_eq!(a.len(), b.len());
    for (ea, eb) in a.entries().iter().zip(b.entries()) {
        assert_eq!(ea.key, eb.key);
        assert_eq!(ea.value.to_bits(), eb.value.to_bits());
    }
    assert_eq!(a.units().len(), b.units().len());
    for (ua, ub) in a.units().iter().zip(b.units()) {
        assert_eq!(ua.to_bits(), ub.to_bits());
    }
    match (a.value_bounds(), b.value_bounds()) {
        (None, None) => {}
        (Some(ba), Some(bb)) => {
            assert_eq!(ba.c_low.to_bits(), bb.c_low.to_bits());
            assert_eq!(ba.c_high.to_bits(), bb.c_high.to_bits());
        }
        other => panic!("bounds mismatch: {other:?}"),
    }
}

fn config_for(
    strat_kind: usize,
    size: usize,
    thresh: f64,
    bits64: bool,
    seed: u64,
    agg_idx: usize,
) -> SketchConfig {
    let base = match strat_kind {
        0 => SketchConfig::with_size(size),
        // Clamp away a zero threshold (with_threshold(0.0) would keep
        // nothing; still legal, but covered by the size-0 case).
        _ => SketchConfig::with_threshold(thresh.max(1e-6)),
    };
    let hasher = if bits64 {
        TupleHasher::new_64(seed)
    } else {
        TupleHasher::paper_32(seed as u32)
    };
    base.hasher(hasher).aggregation(Aggregation::ALL[agg_idx])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// For arbitrary build inputs and configurations, the binary and
    /// JSON codecs both round-trip to a sketch bit-identical to the
    /// original (including the rebuilt `units` cache), and to each
    /// other.
    #[test]
    fn binary_and_json_roundtrips_are_bit_identical(
        keys in vec(0u16..400, 0..130),
        values in vec(-1e6f64..1e6, 0..130),
        strat_kind in 0usize..2,
        size in 0usize..80,
        thresh in 0.0f64..1.0,
        bits64_sel in 0usize..2,
        seed in 0u64..(1u64 << 48),
        agg_idx in 0usize..7,
    ) {
        let cfg = config_for(strat_kind, size, thresh, bits64_sel == 1, seed, agg_idx);
        let s = SketchBuilder::new(cfg).build(&pair_from(&keys, &values));

        // NaN-free invariant: nothing the builder produces is non-finite.
        prop_assert!(s.entries().iter().all(|e| e.value.is_finite()));
        prop_assert!(s.units().iter().all(|u| u.is_finite()));

        let via_bin = CorrelationSketch::from_bytes(&s.to_bytes().unwrap()).unwrap();
        let via_json = CorrelationSketch::from_json(&s.to_json().unwrap()).unwrap();
        assert_bit_identical(&s, &via_bin);
        assert_bit_identical(&via_bin, &via_json);
        // The units cache is genuinely rebuilt, not copied: recompute.
        for (u, e) in via_bin.units().iter().zip(via_bin.entries()) {
            prop_assert_eq!(u.to_bits(), via_bin.unit_hash(e).to_bits());
        }
    }

    /// Encoding is deterministic, and a second encode of the decoded
    /// sketch reproduces the same bytes (canonical form).
    #[test]
    fn encoding_is_canonical(
        keys in vec(0u16..200, 0..100),
        values in vec(-1e3f64..1e3, 0..100),
        size in 0usize..40,
    ) {
        let s = SketchBuilder::new(SketchConfig::with_size(size))
            .build(&pair_from(&keys, &values));
        let bytes = s.to_bytes().unwrap();
        prop_assert_eq!(&bytes, &s.to_bytes().unwrap());
        let back = CorrelationSketch::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&bytes, &back.to_bytes().unwrap());
    }
}

#[test]
fn named_edge_shapes_roundtrip() {
    let b64 = SketchBuilder::new(SketchConfig::with_size(16));
    // Empty column.
    let empty = b64.build(&pair_from(&[], &[]));
    assert!(empty.is_empty());
    assert_bit_identical(
        &empty,
        &CorrelationSketch::from_bytes(&empty.to_bytes().unwrap()).unwrap(),
    );
    // Single entry.
    let single = b64.build(&pair_from(&[7], &[1.25]));
    assert_eq!(single.len(), 1);
    assert_bit_identical(
        &single,
        &CorrelationSketch::from_bytes(&single.to_bytes().unwrap()).unwrap(),
    );
    // Max size: every distinct key retained, not saturated.
    let keys: Vec<u16> = (0..50).collect();
    let values: Vec<f64> = (0..50).map(f64::from).collect();
    let max = SketchBuilder::new(SketchConfig::with_size(500)).build(&pair_from(&keys, &values));
    assert!(!max.is_saturated());
    assert_eq!(max.len(), 50);
    assert_bit_identical(
        &max,
        &CorrelationSketch::from_bytes(&max.to_bytes().unwrap()).unwrap(),
    );
    // Zero-size sketch of a non-empty column.
    let zero = SketchBuilder::new(SketchConfig::with_size(0)).build(&pair_from(&keys, &values));
    assert!(zero.is_empty() && zero.is_saturated());
    assert_bit_identical(
        &zero,
        &CorrelationSketch::from_bytes(&zero.to_bytes().unwrap()).unwrap(),
    );
}
