// R1 positive fixture: unordered-map iteration observable on a result
// path, with no `// lint: ordered` justification.

use std::collections::{HashMap, HashSet};

fn scores(by_id: &HashMap<u64, f64>) -> Vec<f64> {
    let mut out = Vec::new();
    for (_, v) in by_id { //~ R1
        out.push(*v);
    }
    out
}

fn ids() -> Vec<u64> {
    let mut seen = HashSet::new();
    seen.insert(1u64);
    seen.iter().copied().collect() //~ R1
}
