// R6 positive fixture: bare integer casts in a codec/parse path.

fn decode(len_field: u32, bytes: &[u8]) -> usize {
    let len = len_field as usize; //~ R6
    let _hi = bytes.len() as u32; //~ R6
    len
}
