// R1 negative fixture: justified iteration (sorted before any output)
// and plain lookups, which are order-independent.

use std::collections::HashMap;

fn sorted_scores(by_id: &HashMap<u64, f64>) -> Vec<(u64, f64)> {
    let mut out: Vec<(u64, f64)> = by_id
        .iter() // lint: ordered (sorted by key before returning)
        .map(|(k, v)| (*k, *v))
        .collect();
    out.sort_by_key(|e| e.0);
    out
}

fn lookup(by_id: &HashMap<u64, f64>, k: u64) -> Option<f64> {
    by_id.get(&k).copied()
}
