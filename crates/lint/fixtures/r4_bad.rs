// R4 positive fixture: `unsafe` without a SAFETY argument.

fn peek(xs: &[u8]) -> u8 {
    unsafe { *xs.as_ptr() } //~ R4
}

/// Documented, but the docs never argue soundness.
unsafe fn raw_read(p: *const u8) -> u8 { //~ R4
    *p
}
