// R6 negative fixture: typed conversions, justified casts, and float
// casts (which cannot silently truncate an index or length).

fn decode(len_field: u32, total: usize) -> Option<usize> {
    let len = usize::try_from(len_field).ok()?;
    let _ = u64::try_from(total).ok()?;
    let lane = total as u64; // lint: cast-ok (usize -> u64 is lossless on supported targets)
    let _ = lane;
    Some(len)
}

fn to_float(n: u32) -> f64 {
    let wide = n as f64;
    wide
}
