// R3 negative fixture: checked access, non-indexing brackets, and
// panics confined to test code.

fn handle(buf: &[u8]) -> Option<u8> {
    buf.get(0).copied()
}

fn arr() -> [u8; 2] {
    [1, 2]
}

fn grow() -> Vec<u8> {
    vec![1u8, 2]
}

#[cfg(test)]
mod tests {
    #[test]
    fn indexing_and_unwraps_in_tests_are_fine() {
        let v = vec![1u8, 2];
        assert_eq!(v[0], 1);
        let _ = v.last().unwrap();
        if v.len() > 2 {
            panic!("impossible");
        }
    }
}
