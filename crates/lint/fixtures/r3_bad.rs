// R3 positive fixture: every panic shape the request path bans.

fn handle(buf: &[u8]) -> u8 {
    let first = buf[0]; //~ R3
    let parsed: u32 = std::str::from_utf8(buf).unwrap().parse().unwrap(); //~ R3 R3
    if parsed > 10 {
        panic!("too big"); //~ R3
    }
    first
}

fn must(v: Option<u8>) -> u8 {
    v.expect("present") //~ R3
}

fn never(x: u8) -> u8 {
    match x {
        0 => 1,
        _ => unreachable!(), //~ R3
    }
}
