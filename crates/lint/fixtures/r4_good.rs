// R4 negative fixture: every `unsafe` states its invariant.

fn peek(xs: &[u8]) -> u8 {
    // SAFETY: callers guarantee `xs` is non-empty, so `as_ptr` is valid
    // for a one-byte read.
    unsafe { *xs.as_ptr() }
}

// SAFETY: the caller must pass a pointer valid for reads of one byte.
unsafe fn raw_read(p: *const u8) -> u8 {
    *p
}
