// R2 positive fixture: every shape of the PR-5 NaN-ordering bug.

fn rank(mut xs: Vec<f64>) {
    xs.sort_by(|a, b| b.partial_cmp(a).unwrap()); //~ R2
}

fn worst(xs: &mut [f64]) {
    xs.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)); //~ R2
}

fn cmp_one(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap() //~ R2
}

fn best(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().max_by(|a, b| a.partial_cmp(b).expect("comparable")) //~ R2
}
