// R5 negative fixture: consuming an Instant handed in from outside is
// fine (identity stays a pure function of the inputs), as are clock
// reads confined to test code.

use std::time::Instant;

fn observe(started: Instant) -> u128 {
    started.elapsed().as_nanos()
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn timing_inside_tests_is_fine() {
        let _ = Instant::now();
    }
}
