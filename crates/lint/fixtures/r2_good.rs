// R2 negative fixture: total orderings and non-panicking partial_cmp
// uses are all fine.

fn rank(mut xs: Vec<f64>) {
    xs.sort_by(f64::total_cmp);
    xs.sort_by(|a, b| b.total_cmp(a));
}

fn comparable(a: f64, b: f64) -> bool {
    a.partial_cmp(&b).is_some()
}

fn by_len(xs: &mut Vec<String>) {
    xs.sort_by(|a, b| a.len().cmp(&b.len()));
}
