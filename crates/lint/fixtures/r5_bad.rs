// R5 positive fixture: clock reads in an identity-defining module.

use std::time::{Instant, SystemTime};

fn cache_key(q: &str) -> usize {
    let t = Instant::now(); //~ R5
    let _ = SystemTime::now(); //~ R5
    let _ = t;
    q.len()
}
