//! `sketch-lint` — a std-only, dependency-free static-analysis pass
//! that enforces the workspace's determinism, panic-safety, and
//! unsafe-hygiene invariants (see [`rules`] for the rule table).
//!
//! In the same hand-rolled spirit as the in-tree rand/proptest/
//! criterion shims: a real Rust [`lexer`] (raw strings, nested block
//! comments, char-vs-lifetime disambiguation, byte literals), a
//! line/column-aware rule [`engine`], and six [`rules`] distilled from
//! this repository's own bug history. Every invariant the proptest
//! batteries verify dynamically — bit-identical top-k across thread
//! counts, byte-identical cached/sharded responses, a server that
//! survives hostile input — rests on a source-level discipline; this
//! crate checks those disciplines statically, so a regression fails CI
//! at the offending line instead of (at best) a distant oracle test.
//!
//! Escape hatches are explicit and reviewed: `// lint: ordered (…)`
//! and `// lint: cast-ok (…)` inline justifications, and the
//! tab-separated `crates/lint/allowlist.tsv` whose entries must each
//! still match something — stale entries fail the run, so the file can
//! shrink but never silently pad.

#![forbid(unsafe_code)]

pub mod engine;
pub mod lexer;
pub mod rules;

use std::path::PathBuf;

use engine::{Allowlist, Diagnostic, SourceFile};

/// A resolved lint invocation.
pub struct Options {
    /// Paths (files or directories) to lint.
    pub paths: Vec<PathBuf>,
    /// Exit non-zero on any violation or stale allowlist entry.
    pub deny: bool,
    /// Emit the machine-readable JSON summary instead of text.
    pub json: bool,
    /// Rewrite the allowlist from current violations.
    pub fix_allowlist: bool,
    /// Allowlist file path (when present on disk).
    pub allowlist_path: Option<PathBuf>,
}

/// Everything one run produced, for rendering and exit-code logic.
pub struct RunReport {
    /// Files scanned.
    pub files: usize,
    /// Violations not covered by the allowlist, sorted by position.
    pub violations: Vec<Diagnostic>,
    /// Diagnostics suppressed by allowlist entries.
    pub allowlisted: usize,
    /// Allowlist entries that suppressed nothing (each is an error).
    pub stale: Vec<String>,
    /// Per-rule violation counts, in rule order (id, count).
    pub counts: Vec<(&'static str, usize)>,
}

impl RunReport {
    /// Whether a `--deny` run should fail.
    #[must_use]
    pub fn failed(&self) -> bool {
        !self.violations.is_empty() || !self.stale.is_empty()
    }
}

/// Lint every `.rs` file reachable from `opts.paths`.
///
/// # Errors
///
/// I/O or allowlist-parse failures, as a printable message.
pub fn run(opts: &Options) -> Result<RunReport, String> {
    let mut allowlist = match &opts.allowlist_path {
        Some(p) => {
            let text = std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
            Allowlist::parse(&text)?
        }
        None => Allowlist::empty(),
    };

    let files = engine::collect_files(&opts.paths)?;
    // Violations paired with their source-line text (the text is what
    // `--fix-allowlist` records as the match snippet).
    let mut violations: Vec<(Diagnostic, String)> = Vec::new();
    let mut allowlisted = 0usize;
    for path in &files {
        let rel = engine::path_str(path);
        let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let file = SourceFile::new(rel, src);
        for rule in rules::RULES {
            if !(rule.applies)(&file.path) {
                continue;
            }
            for diag in (rule.check)(&file) {
                let line_text = file.line_text(diag.line).trim().to_string();
                if allowlist.suppresses(&diag, &line_text) {
                    allowlisted += 1;
                } else {
                    violations.push((diag, line_text));
                }
            }
        }
    }
    violations.sort_by(|a, b| {
        (&a.0.file, a.0.line, a.0.col, a.0.rule).cmp(&(&b.0.file, b.0.line, b.0.col, b.0.rule))
    });

    if opts.fix_allowlist {
        if let Some(p) = &opts.allowlist_path {
            let rewritten = fix_allowlist(&allowlist, &violations);
            std::fs::write(p, Allowlist::render(&rewritten))
                .map_err(|e| format!("{}: {e}", p.display()))?;
        }
    }
    let violations: Vec<Diagnostic> = violations.into_iter().map(|(d, _)| d).collect();

    let counts = rules::RULES
        .iter()
        .map(|r| (r.id, violations.iter().filter(|d| d.rule == r.id).count()))
        .collect();
    let stale = allowlist
        .stale()
        .iter()
        .map(|e| {
            format!(
                "stale allowlist entry ({} {} {:?}): nothing matches — remove it",
                e.rule, e.file, e.snippet
            )
        })
        .collect();
    Ok(RunReport {
        files: files.len(),
        violations,
        allowlisted,
        stale,
        counts,
    })
}

/// The `--fix-allowlist` rewrite: keep entries that still match, drop
/// stale ones, and append an entry (with a TODO justification awaiting
/// review) for every currently-unsuppressed violation. The new entry's
/// snippet is the flagged source line, trimmed — robust to the line
/// moving, invalidated when its content changes.
fn fix_allowlist(
    current: &Allowlist,
    violations: &[(Diagnostic, String)],
) -> Vec<engine::AllowEntry> {
    let stale: Vec<String> = current
        .stale()
        .iter()
        .map(|e| format!("{}\t{}\t{}", e.rule, e.file, e.snippet))
        .collect();
    let mut out: Vec<engine::AllowEntry> = current
        .entries
        .iter()
        .filter(|e| !stale.contains(&format!("{}\t{}\t{}", e.rule, e.file, e.snippet)))
        .cloned()
        .collect();
    for (d, line_text) in violations {
        let snippet = if line_text.is_empty() {
            d.message.clone()
        } else {
            line_text.clone()
        };
        out.push(engine::AllowEntry {
            rule: d.rule.to_string(),
            file: d.file.clone(),
            snippet,
            justification: "TODO: justify or fix".to_string(),
        });
    }
    out
}

/// Render the JSON summary (hand-rolled, deterministic key order).
#[must_use]
pub fn render_json(report: &RunReport) -> String {
    let mut out = String::from("{\"files\":");
    out.push_str(&report.files.to_string());
    out.push_str(",\"violations\":");
    out.push_str(&report.violations.len().to_string());
    out.push_str(",\"allowlisted\":");
    out.push_str(&report.allowlisted.to_string());
    out.push_str(",\"stale_allowlist\":");
    out.push_str(&report.stale.len().to_string());
    out.push_str(",\"counts\":{");
    for (i, (id, n)) in report.counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(id);
        out.push_str("\":");
        out.push_str(&n.to_string());
    }
    out.push_str("},\"diagnostics\":[");
    for (i, d) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"file\":");
        push_json_string(&mut out, &d.file);
        out.push_str(",\"line\":");
        out.push_str(&d.line.to_string());
        out.push_str(",\"col\":");
        out.push_str(&d.col.to_string());
        out.push_str(",\"rule\":\"");
        out.push_str(d.rule);
        out.push_str("\",\"message\":");
        push_json_string(&mut out, &d.message);
        out.push('}');
    }
    out.push_str("]}");
    out
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
