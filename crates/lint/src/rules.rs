//! The six rules, each distilled from a bug or invariant this
//! workspace has already paid for once:
//!
//! | id | invariant | origin |
//! |----|-----------|--------|
//! | R1 | no unordered `HashMap`/`HashSet` iteration on result paths | PR 1/3: bit-identical answers at every thread count |
//! | R2 | no `partial_cmp(..).unwrap()`, no `sort_by` over `partial_cmp` | PR 5: NaN scores sorted *first* under descending order |
//! | R3 | no panics (unwrap/expect/panic!/indexing) in request handling | PR 4: a worker panic must never be reachable from input |
//! | R4 | every `unsafe` carries a `// SAFETY:` comment | PR 4: the `signal(2)` carve-out discipline |
//! | R5 | no clock reads in fingerprint/cache-key/codec modules | PR 4/8: cache identity is a pure function of request + generation |
//! | R6 | no bare `as` integer casts in codec / HTTP parse paths | PR 2: truncation must be a typed error, not silent wraparound |
//!
//! Every matcher works on the lexed significant-token stream (so
//! strings and comments can never false-positive) and is deliberately
//! heuristic where full type inference would be needed — with an
//! explicit, greppable escape hatch (`// lint: ordered`,
//! `// lint: cast-ok`, or the reviewed allowlist) where the heuristic
//! or the rule itself needs a carve-out.

use crate::engine::{Diagnostic, SourceFile};

/// A rule: id, one-line summary, path scope, and the checker.
pub struct Rule {
    /// Stable id used in diagnostics and the allowlist.
    pub id: &'static str,
    /// One-line description (shown in `--json` summaries).
    pub summary: &'static str,
    /// Whether the rule runs on a given workspace-relative path.
    pub applies: fn(&str) -> bool,
    /// The checker. Called with paths already filtered by `applies`
    /// on workspace runs; fixture self-tests call it directly.
    pub check: fn(&SourceFile) -> Vec<Diagnostic>,
}

/// All rules, in id order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "R1",
        summary: "no HashMap/HashSet iteration in result-producing crates \
                  without a `// lint: ordered` justification",
        applies: r1_applies,
        check: check_r1,
    },
    Rule {
        id: "R2",
        summary: "no `partial_cmp(..).unwrap()` and no sort/min/max over bare \
                  `partial_cmp` (use total_cmp or desc_score_nan_last)",
        applies: |_| true,
        check: check_r2,
    },
    Rule {
        id: "R3",
        summary: "no unwrap/expect/panic!/indexing in server request paths \
                  outside tests (allowlist for provably-infallible sites)",
        applies: r3_applies,
        check: check_r3,
    },
    Rule {
        id: "R4",
        summary: "every `unsafe` block/fn/impl preceded by a `// SAFETY:` comment",
        applies: |_| true,
        check: check_r4,
    },
    Rule {
        id: "R5",
        summary: "no Instant::now/SystemTime::now in fingerprint, cache-key, \
                  or codec modules",
        applies: r5_applies,
        check: check_r5,
    },
    Rule {
        id: "R6",
        summary: "no bare `as` integer casts in the binary codec or HTTP \
                  parse paths (use try_into with typed errors)",
        applies: r6_applies,
        check: check_r6,
    },
];

/// Look up a rule by id.
#[must_use]
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

// ---------------------------------------------------------------------
// R1: determinism — unordered-map iteration on result paths.
// ---------------------------------------------------------------------

/// The crates whose output feeds query answers; iteration order there
/// is observable as result order, doc ids, or serialized bytes.
fn r1_applies(path: &str) -> bool {
    [
        "crates/core/src/",
        "crates/index/src/",
        "crates/ranking/src/",
        "crates/stats/src/",
        "crates/store/src/",
    ]
    .iter()
    .any(|p| path.contains(p))
}

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

fn check_r1(f: &SourceFile) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // Pass A: names bound to HashMap/HashSet types in this file — via
    // type ascription (`name: HashMap<..>` on fields, lets, params,
    // possibly through `&`/`mut`) or `let name = HashMap::new()`-style
    // construction.
    let mut map_names: Vec<String> = Vec::new();
    for i in 0..f.sig_len() {
        let t = f.sig_text(i);
        if t != "HashMap" && t != "HashSet" {
            continue;
        }
        // Walk back over `&`, `mut`, and lifetimes to the `:`.
        let mut j = i;
        while j > 0 {
            let prev = f.sig_text(j - 1);
            if prev == "&"
                || prev == "mut"
                || f.sig_tok(j - 1).kind == crate::lexer::TokenKind::Lifetime
            {
                j -= 1;
            } else {
                break;
            }
        }
        if j >= 2 && f.sig_text(j - 1) == ":" {
            let name = f.sig_text(j - 2);
            if is_plain_ident(f, j - 2) {
                map_names.push(name.to_string());
            }
        }
        // `let [mut] name = HashMap::…` / `let name;  name = HashMap::…`.
        if i >= 2 && f.sig_text(i - 1) == "=" {
            let mut k = i - 1;
            // Look a short distance back for `let`; the token after it
            // (skipping `mut`) is the binding name.
            let lo = k.saturating_sub(6);
            while k > lo {
                k -= 1;
                if f.sig_text(k) == "let" {
                    let mut n = k + 1;
                    if f.sig_text(n) == "mut" {
                        n += 1;
                    }
                    if is_plain_ident(f, n) {
                        map_names.push(f.sig_text(n).to_string());
                    }
                    break;
                }
            }
        }
    }
    map_names.sort();
    map_names.dedup();

    // Pass B: iteration over any such name.
    for i in 0..f.sig_len() {
        let line = f.sig_tok(i).line;
        if f.is_test_line(line) {
            continue;
        }
        let t = f.sig_text(i);
        // `name.iter()` / `self.name.into_iter()` / `name.drain(..)`.
        if map_names.iter().any(|n| n == t)
            && i + 3 < f.sig_len()
            && f.sig_text(i + 1) == "."
            && ITER_METHODS.contains(&f.sig_text(i + 2))
            && f.sig_text(i + 3) == "("
        {
            let at = i + 2;
            let m_line = f.sig_tok(at).line;
            if !f.line_has_justification(m_line, "lint: ordered") {
                diags.push(f.diag_at(
                    at,
                    "R1",
                    format!(
                        "iteration over unordered `{t}` observable on a result path; \
                         order must not depend on hash layout — sort the output or \
                         justify with `// lint: ordered (reason)`"
                    ),
                ));
            }
        }
        // `for x in [&[mut]] name … {`.
        if t == "for" {
            let mut j = i + 1;
            let mut saw_in = false;
            while j < f.sig_len() && f.sig_text(j) != "{" {
                if f.sig_text(j) == "in" {
                    saw_in = true;
                } else if saw_in && map_names.iter().any(|n| n == f.sig_text(j)) {
                    // Skip `name.method(..)` chains already handled (or
                    // benign lookups like `map.get(..)`); flag only when
                    // the map itself is the iterated expression — i.e.
                    // not immediately followed by `.`.
                    let next = if j + 1 < f.sig_len() {
                        f.sig_text(j + 1)
                    } else {
                        ""
                    };
                    if next != "." {
                        let m_line = f.sig_tok(j).line;
                        if !f.line_has_justification(m_line, "lint: ordered") {
                            diags.push(f.diag_at(
                                j,
                                "R1",
                                format!(
                                    "`for` loop over unordered `{}` on a result path; \
                                     iteration order depends on hash layout — sort first \
                                     or justify with `// lint: ordered (reason)`",
                                    f.sig_text(j)
                                ),
                            ));
                        }
                    }
                    break;
                }
                j += 1;
            }
        }
    }
    diags
}

fn is_plain_ident(f: &SourceFile, i: usize) -> bool {
    f.sig_tok(i).kind == crate::lexer::TokenKind::Ident
        && f.sig_text(i)
            .chars()
            .next()
            .is_some_and(|c| c.is_lowercase() || c == '_')
}

// ---------------------------------------------------------------------
// R2: float ordering — the frozen PR-5 NaN-sorts-first bug.
// ---------------------------------------------------------------------

const SORTERS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "sort_by_cached_key",
    "max_by",
    "min_by",
    "binary_search_by",
];

fn check_r2(f: &SourceFile) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for i in 0..f.sig_len() {
        let t = f.sig_text(i);
        // (a) `.partial_cmp(..).unwrap()` / `.expect(..)`.
        if t == "partial_cmp" && i > 0 && f.sig_text(i - 1) == "." {
            if let Some(close) = skip_balanced(f, i + 1, "(", ")") {
                if close + 2 < f.sig_len()
                    && f.sig_text(close + 1) == "."
                    && matches!(f.sig_text(close + 2), "unwrap" | "expect")
                {
                    diags.push(
                        f.diag_at(
                            i,
                            "R2",
                            "`partial_cmp(..).unwrap()` panics on NaN; use `total_cmp` \
                         (or `desc_score_nan_last` on score paths)"
                                .to_string(),
                        ),
                    );
                }
            }
        }
        // (b) a bare `partial_cmp` anywhere inside a comparator closure
        // passed to sort/min/max: NaN makes the comparison lie even
        // when unwrap is avoided (the PR-5 bug shape).
        if SORTERS.contains(&t) && i + 1 < f.sig_len() && f.sig_text(i + 1) == "(" {
            if let Some(close) = skip_balanced(f, i + 1, "(", ")") {
                for j in i + 2..close {
                    if f.sig_text(j) == "partial_cmp" {
                        diags.push(f.diag_at(
                            j,
                            "R2",
                            format!(
                                "`{t}` over `partial_cmp` mis-orders NaN (the PR-5 \
                                 NaN-sorts-first bug); use `total_cmp` or \
                                 `desc_score_nan_last`"
                            ),
                        ));
                    }
                }
            }
        }
    }
    diags.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    diags.dedup_by(|a, b| a.line == b.line && a.col == b.col && a.rule == b.rule);
    diags
}

/// Given `open` pointing at the opening delimiter, return the index of
/// its matching close.
fn skip_balanced(f: &SourceFile, open: usize, open_s: &str, close_s: &str) -> Option<usize> {
    if open >= f.sig_len() || f.sig_text(open) != open_s {
        return None;
    }
    let mut depth = 0usize;
    for j in open..f.sig_len() {
        let t = f.sig_text(j);
        if t == open_s {
            depth += 1;
        } else if t == close_s {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------
// R3: panic containment in the server request path.
// ---------------------------------------------------------------------

fn r3_applies(path: &str) -> bool {
    [
        "crates/server/src/conn.rs",
        "crates/server/src/api.rs",
        "crates/server/src/http.rs",
        "crates/server/src/coordinator.rs",
    ]
    .iter()
    .any(|p| path.ends_with(p))
}

fn check_r3(f: &SourceFile) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for i in 0..f.sig_len() {
        let tok = f.sig_tok(i);
        if f.is_test_line(tok.line) {
            continue;
        }
        let t = f.sig_text(i);
        // `.unwrap()` / `.expect(..)` method calls.
        if matches!(t, "unwrap" | "expect")
            && i > 0
            && f.sig_text(i - 1) == "."
            && i + 1 < f.sig_len()
            && f.sig_text(i + 1) == "("
        {
            diags.push(f.diag_at(
                i,
                "R3",
                format!(
                    "`.{t}()` in a request-path file can panic on hostile input; \
                     return a typed error response (or allowlist with a proof of \
                     infallibility)"
                ),
            ));
        }
        // `panic!` family.
        if matches!(t, "panic" | "unreachable" | "todo" | "unimplemented")
            && i + 1 < f.sig_len()
            && f.sig_text(i + 1) == "!"
        {
            diags.push(f.diag_at(
                i,
                "R3",
                format!("`{t}!` in a request-path file; convert to a typed error"),
            ));
        }
        // Slice/array indexing: `[` in postfix position. Previous
        // significant token being an identifier, literal, `)` or `]`
        // means the bracket indexes a value; `#[attr]`, `vec![..]`,
        // types `&[u8]`, and array literals all have other predecessors.
        if t == "[" && i > 0 {
            let prev = f.sig_tok(i - 1);
            let prev_t = prev.text(&f.src);
            let postfix = matches!(
                prev.kind,
                crate::lexer::TokenKind::Ident
                    | crate::lexer::TokenKind::NumLit
                    | crate::lexer::TokenKind::StrLit
            ) || prev_t == ")"
                || prev_t == "]";
            // Keywords that precede array-literal or slice-pattern
            // brackets, not indexing.
            let keyword = matches!(
                prev_t,
                "return" | "in" | "if" | "else" | "match" | "mut" | "as" | "dyn"
            );
            if postfix && !keyword {
                diags.push(
                    f.diag_at(
                        i,
                        "R3",
                        "slice/array indexing in a request-path file can panic; use \
                     `.get(..)` or allowlist with a bounds proof"
                            .to_string(),
                    ),
                );
            }
        }
    }
    diags
}

// ---------------------------------------------------------------------
// R4: unsafe hygiene.
// ---------------------------------------------------------------------

fn check_r4(f: &SourceFile) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for i in 0..f.sig_len() {
        if f.sig_text(i) != "unsafe" {
            continue;
        }
        let line = f.sig_tok(i).line;
        // A `// SAFETY:` comment on the same line or within the three
        // lines above (comment blocks directly over the unsafe site).
        let lo = line.saturating_sub(3).max(1);
        let documented = (lo..=line).any(|l| f.line_text(l).contains("SAFETY:"));
        if !documented {
            diags.push(
                f.diag_at(
                    i,
                    "R4",
                    "`unsafe` without a `// SAFETY:` comment immediately above; \
                 state the invariant that makes this sound"
                        .to_string(),
                ),
            );
        }
    }
    diags
}

// ---------------------------------------------------------------------
// R5: clock discipline in identity-defining modules.
// ---------------------------------------------------------------------

/// Modules whose output *is* an identity — cache keys, fingerprints,
/// serialized bytes. A clock read here would make identity depend on
/// when, not what.
fn r5_applies(path: &str) -> bool {
    [
        "crates/server/src/api.rs",
        "crates/server/src/cache.rs",
        "crates/core/src/binary.rs",
        "crates/core/src/json.rs",
        "crates/core/src/persist.rs",
    ]
    .iter()
    .any(|p| path.ends_with(p))
        || path.contains("crates/hashing/src/")
}

fn check_r5(f: &SourceFile) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for i in 0..f.sig_len() {
        let tok = f.sig_tok(i);
        if f.is_test_line(tok.line) {
            continue;
        }
        let t = f.sig_text(i);
        if (t == "Instant" || t == "SystemTime")
            && i + 3 < f.sig_len()
            && f.sig_text(i + 1) == ":"
            && f.sig_text(i + 2) == ":"
            && f.sig_text(i + 3) == "now"
        {
            diags.push(f.diag_at(
                i,
                "R5",
                format!(
                    "`{t}::now()` in a fingerprint/cache-key/codec module; cache \
                     identity must be a pure function of request + generation"
                ),
            ));
        }
    }
    diags
}

// ---------------------------------------------------------------------
// R6: lossy casts in codec and parse paths.
// ---------------------------------------------------------------------

fn r6_applies(path: &str) -> bool {
    [
        "crates/core/src/binary.rs",
        "crates/store/src/shard.rs",
        "crates/server/src/http.rs",
    ]
    .iter()
    .any(|p| path.ends_with(p))
}

const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

fn check_r6(f: &SourceFile) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for i in 0..f.sig_len() {
        let tok = f.sig_tok(i);
        if f.is_test_line(tok.line) {
            continue;
        }
        if f.sig_text(i) != "as" || i + 1 >= f.sig_len() {
            continue;
        }
        let target = f.sig_text(i + 1);
        if !INT_TYPES.contains(&target) {
            continue;
        }
        if f.line_has_justification(tok.line, "lint: cast-ok") {
            continue;
        }
        diags.push(f.diag_at(
            i,
            "R6",
            format!(
                "bare `as {target}` cast in a codec/parse path silently truncates \
                 or wraps; use `try_into`/`From` with a typed error (or justify \
                 with `// lint: cast-ok (reason)`)"
            ),
        ));
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_scopes_are_as_documented() {
        assert!(r1_applies("crates/index/src/engine.rs"));
        assert!(!r1_applies("crates/server/src/api.rs"));
        assert!(r3_applies("crates/server/src/http.rs"));
        assert!(!r3_applies("crates/server/src/server.rs"));
        assert!(r5_applies("crates/hashing/src/murmur3.rs"));
        assert!(!r5_applies("crates/server/src/server.rs"));
        assert!(r6_applies("crates/core/src/binary.rs"));
        assert!(!r6_applies("crates/core/src/builder.rs"));
    }

    #[test]
    fn rule_lookup_by_id() {
        assert_eq!(rule_by_id("R4").unwrap().id, "R4");
        assert!(rule_by_id("R9").is_none());
    }
}
