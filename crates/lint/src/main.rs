//! CLI for `sketch-lint`:
//!
//! ```text
//! sketch-lint [--deny] [--json] [--fix-allowlist] [--allowlist PATH] [paths…]
//! ```
//!
//! Without paths, lints the current directory tree. Without `--deny`
//! the run always exits 0 (report-only); with it, any violation or
//! stale allowlist entry is a failure — the CI mode.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use sketch_lint::{render_json, rules, run, Options};

const USAGE: &str = "usage: sketch-lint [--deny] [--json] [--fix-allowlist] \
                     [--allowlist PATH] [paths...]";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        paths: Vec::new(),
        deny: false,
        json: false,
        fix_allowlist: false,
        allowlist_path: None,
    };
    let mut explicit_allowlist = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--deny" => opts.deny = true,
            "--json" => opts.json = true,
            "--fix-allowlist" => opts.fix_allowlist = true,
            "--allowlist" => {
                i += 1;
                let p = args
                    .get(i)
                    .ok_or_else(|| format!("--allowlist needs a path\n{USAGE}"))?;
                opts.allowlist_path = Some(PathBuf::from(p));
                explicit_allowlist = true;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag {flag}\n{USAGE}"));
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
        i += 1;
    }
    if opts.paths.is_empty() {
        opts.paths.push(PathBuf::from("."));
    }
    // Default allowlist: the checked-in file, when it exists relative
    // to the invocation directory (the workspace root in CI).
    if !explicit_allowlist {
        let default = PathBuf::from("crates/lint/allowlist.tsv");
        if default.is_file() {
            opts.allowlist_path = Some(default);
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let report = match run(&opts) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("sketch-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    if opts.json {
        println!("{}", render_json(&report));
    } else {
        for d in &report.violations {
            println!("{}", d.render());
        }
        for s in &report.stale {
            println!("{s}");
        }
        let rule_list = rules::RULES
            .iter()
            .map(|r| r.id)
            .collect::<Vec<_>>()
            .join(",");
        println!(
            "sketch-lint: {} file(s), rules [{}]: {} violation(s), \
             {} allowlisted, {} stale allowlist entr(y/ies)",
            report.files,
            rule_list,
            report.violations.len(),
            report.allowlisted,
            report.stale.len()
        );
    }

    if opts.deny && report.failed() {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
