//! The rule engine: per-file token context (with `#[cfg(test)]` region
//! tracking and justification-comment lookup), workspace walking, the
//! allowlist, and diagnostic plumbing.

use std::path::{Path, PathBuf};

use crate::lexer::{self, Token};

/// One finding: where, which rule, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule id (`R1`..`R6`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Render in the classic `file:line:col: rule: message` shape.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: {}: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// A lexed source file plus everything rules need to scope and suppress
/// findings: line offsets, test regions, and the significant (i.e.
/// non-comment) token stream.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Raw source text.
    pub src: String,
    /// Every token, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens.
    pub sig: Vec<usize>,
    /// Byte offset where each 1-based line starts.
    line_starts: Vec<usize>,
    /// For each 1-based line, whether it is inside test code
    /// (a `#[cfg(test)]` / `#[test]` item, or a `tests/` file).
    test_lines: Vec<bool>,
}

impl SourceFile {
    /// Lex and index `src`.
    #[must_use]
    pub fn new(path: String, src: String) -> Self {
        let tokens = lexer::tokenize(&src);
        let sig: Vec<usize> = (0..tokens.len())
            .filter(|&i| !tokens[i].is_comment())
            .collect();
        let mut line_starts = vec![0usize];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let n_lines = line_starts.len();
        let whole_file_test = path.contains("/tests/") || path.contains("/benches/");
        let mut test_lines = vec![whole_file_test; n_lines + 2];
        if !whole_file_test {
            mark_test_regions(&src, &tokens, &sig, &mut test_lines);
        }
        Self {
            path,
            src,
            tokens,
            sig,
            line_starts,
            test_lines,
        }
    }

    /// The `i`-th significant token.
    #[must_use]
    pub fn sig_tok(&self, i: usize) -> &Token {
        &self.tokens[self.sig[i]]
    }

    /// Source text of the `i`-th significant token.
    #[must_use]
    pub fn sig_text(&self, i: usize) -> &str {
        self.sig_tok(i).text(&self.src)
    }

    /// Number of significant tokens.
    #[must_use]
    pub fn sig_len(&self) -> usize {
        self.sig.len()
    }

    /// Raw text of a 1-based line (without the newline).
    #[must_use]
    pub fn line_text(&self, line: u32) -> &str {
        let idx = line as usize - 1;
        let start = match self.line_starts.get(idx) {
            Some(&s) => s,
            None => return "",
        };
        let end = self
            .line_starts
            .get(idx + 1)
            .map_or(self.src.len(), |&e| e - 1);
        self.src[start..end].trim_end_matches('\r')
    }

    /// Whether a 1-based line falls in test code.
    #[must_use]
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines.get(line as usize).copied().unwrap_or(false)
    }

    /// Whether the flagged line (or the line above it) carries the
    /// given justification marker in its text — the escape hatch for
    /// rules that accept an inline `// lint: …` annotation.
    #[must_use]
    pub fn line_has_justification(&self, line: u32, marker: &str) -> bool {
        if self.line_text(line).contains(marker) {
            return true;
        }
        line > 1 && self.line_text(line - 1).contains(marker)
    }

    /// Diagnostic for the `i`-th significant token.
    #[must_use]
    pub fn diag_at(&self, i: usize, rule: &'static str, message: String) -> Diagnostic {
        let t = self.sig_tok(i);
        Diagnostic {
            file: self.path.clone(),
            line: t.line,
            col: t.col,
            rule,
            message,
        }
    }
}

/// Mark lines covered by `#[cfg(test)]` / `#[test]` items. The scan
/// walks significant tokens: on a test-marking attribute it skips any
/// further attributes, then brace-matches the following item (or stops
/// at `;` for braceless items) and marks that line span.
fn mark_test_regions(src: &str, tokens: &[Token], sig: &[usize], test_lines: &mut [bool]) {
    let text = |i: usize| tokens[sig[i]].text(src);
    let mut i = 0;
    while i < sig.len() {
        if text(i) != "#" {
            i += 1;
            continue;
        }
        let Some((attr_end, is_test)) = parse_attribute(src, tokens, sig, i) else {
            i += 1;
            continue;
        };
        if !is_test {
            i = attr_end;
            continue;
        }
        // Skip any further attributes between the test marker and the
        // item it covers.
        let mut j = attr_end;
        while j < sig.len() && text(j) == "#" {
            match parse_attribute(src, tokens, sig, j) {
                Some((end, _)) => j = end,
                None => break,
            }
        }
        let start_line = tokens[sig[i]].line;
        // Find the item's body: the first `{` before any `;`.
        let mut depth = 0u32;
        let mut end_line = start_line;
        while j < sig.len() {
            match text(j) {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end_line = tokens[sig[j]].line;
                        break;
                    }
                }
                ";" if depth == 0 => {
                    end_line = tokens[sig[j]].line;
                    break;
                }
                _ => {}
            }
            end_line = tokens[sig[j]].line;
            j += 1;
        }
        for line in start_line..=end_line {
            if let Some(slot) = test_lines.get_mut(line as usize) {
                *slot = true;
            }
        }
        i = j + 1;
    }
}

/// Parse the attribute starting at significant index `i` (which holds
/// `#`). Returns `(index past the closing `]`, is-test-marker)`; a
/// test marker is `#[test]` or any `#[cfg(…)]` whose argument tokens
/// mention `test`.
fn parse_attribute(src: &str, tokens: &[Token], sig: &[usize], i: usize) -> Option<(usize, bool)> {
    let text = |k: usize| tokens[sig[k]].text(src);
    let mut j = i + 1;
    // `#![…]` inner attributes are never test markers for our purposes,
    // but still need skipping.
    if j < sig.len() && text(j) == "!" {
        j += 1;
    }
    if j >= sig.len() || text(j) != "[" {
        return None;
    }
    let mut depth = 0u32;
    let mut saw_cfg = false;
    let mut saw_test_word = false;
    let mut bare_test = false;
    let open = j;
    while j < sig.len() {
        match text(j) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    let is_marker = bare_test || (saw_cfg && saw_test_word);
                    return Some((j + 1, is_marker));
                }
            }
            "cfg" => saw_cfg = true,
            "test" => {
                saw_test_word = true;
                // `#[test]` exactly: `[` `test` `]`.
                if j == open + 1 {
                    bare_test = true;
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// One allowlist entry: a reviewed carve-out for a diagnostic.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule id this entry suppresses.
    pub rule: String,
    /// Path suffix the entry applies to.
    pub file: String,
    /// Substring of the flagged source line.
    pub snippet: String,
    /// Why this site is allowed (one line, reviewed).
    pub justification: String,
}

/// The parsed allowlist plus per-entry usage tracking. Every entry must
/// suppress at least one current diagnostic — stale entries fail the
/// run, so the file can shrink but never silently pad.
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
    used: Vec<bool>,
}

impl Allowlist {
    /// Parse the tab-separated allowlist format:
    /// `rule<TAB>file<TAB>snippet<TAB>justification`, `#` comments and
    /// blank lines ignored.
    ///
    /// # Errors
    ///
    /// A message naming the first malformed line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            if fields.len() != 4 {
                return Err(format!(
                    "allowlist line {}: expected 4 tab-separated fields \
                     (rule, file, snippet, justification), got {}",
                    lineno + 1,
                    fields.len()
                ));
            }
            if fields.iter().any(|f| f.trim().is_empty()) {
                return Err(format!(
                    "allowlist line {}: empty field (every entry needs a justification)",
                    lineno + 1
                ));
            }
            entries.push(AllowEntry {
                rule: fields[0].to_string(),
                file: fields[1].to_string(),
                snippet: fields[2].to_string(),
                justification: fields[3].to_string(),
            });
        }
        let used = vec![false; entries.len()];
        Ok(Self { entries, used })
    }

    /// An empty allowlist.
    #[must_use]
    pub fn empty() -> Self {
        Self {
            entries: Vec::new(),
            used: Vec::new(),
        }
    }

    /// Whether `diag` (whose source line reads `line_text`) is covered
    /// by an entry; marks the entry used.
    pub fn suppresses(&mut self, diag: &Diagnostic, line_text: &str) -> bool {
        let mut hit = false;
        for (k, e) in self.entries.iter().enumerate() {
            if e.rule == diag.rule && diag.file.ends_with(&e.file) && line_text.contains(&e.snippet)
            {
                self.used[k] = true;
                hit = true;
            }
        }
        hit
    }

    /// Entries that suppressed nothing this run — each is an error:
    /// the allowlist must shrink when the code it excused improves.
    #[must_use]
    pub fn stale(&self) -> Vec<&AllowEntry> {
        self.entries
            .iter()
            .enumerate()
            .filter(|&(k, _)| !self.used[k])
            .map(|(_, e)| e)
            .collect()
    }

    /// Render back to the on-disk format (used by `--fix-allowlist`).
    #[must_use]
    pub fn render(entries: &[AllowEntry]) -> String {
        let mut out = String::from(
            "# sketch-lint allowlist: reviewed carve-outs, one per line.\n\
             # Format: rule<TAB>path-suffix<TAB>line-snippet<TAB>justification\n\
             # This file may shrink freely; additions require review. Entries that\n\
             # no longer match anything make the lint run fail as stale.\n",
        );
        for e in entries {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\n",
                e.rule, e.file, e.snippet, e.justification
            ));
        }
        out
    }
}

/// Collect every `.rs` file under `paths`, skipping build output, VCS
/// metadata, and the lint fixtures (which violate the rules on
/// purpose). Files are returned sorted for deterministic output.
///
/// # Errors
///
/// An I/O message naming the unreadable path.
pub fn collect_files(paths: &[PathBuf]) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    for p in paths {
        walk(p, &mut files)?;
    }
    files.sort();
    files.dedup();
    Ok(files)
}

fn walk(path: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    if matches!(name, "target" | ".git") || path_str(path).contains("crates/lint/fixtures") {
        return Ok(());
    }
    if path.is_dir() {
        let mut children = Vec::new();
        let entries = std::fs::read_dir(path).map_err(|e| format!("{}: {e}", path.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("{}: {e}", path.display()))?;
            children.push(entry.path());
        }
        children.sort();
        for child in children {
            walk(&child, out)?;
        }
    } else if name.ends_with(".rs") {
        out.push(path.to_path_buf());
    }
    Ok(())
}

/// A path rendered with `/` separators and no leading `./`.
#[must_use]
pub fn path_str(path: &Path) -> String {
    let s = path.display().to_string().replace('\\', "/");
    s.strip_prefix("./").map_or_else(|| s.clone(), String::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_regions_cover_cfg_test_modules() {
        let src = "pub fn live() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { assert!(true); }\n\
                   }\n";
        let f = SourceFile::new("crates/x/src/lib.rs".into(), src.into());
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(5));
        assert!(f.is_test_line(6));
    }

    #[test]
    fn test_attribute_on_single_fn_scopes_just_that_item() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn live() {}\n";
        let f = SourceFile::new("crates/x/src/lib.rs".into(), src.into());
        assert!(f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(!f.is_test_line(3));
    }

    #[test]
    fn cfg_all_test_counts_as_test_marker() {
        let src = "#[cfg(all(test, unix))]\nmod helpers { pub fn h() {} }\nfn live() {}\n";
        let f = SourceFile::new("crates/x/src/lib.rs".into(), src.into());
        assert!(f.is_test_line(2));
        assert!(!f.is_test_line(3));
    }

    #[test]
    fn braceless_cfg_test_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashSet;\nfn live() {}\n";
        let f = SourceFile::new("crates/x/src/lib.rs".into(), src.into());
        assert!(f.is_test_line(2));
        assert!(!f.is_test_line(3));
    }

    #[test]
    fn files_under_tests_dirs_are_all_test() {
        let f = SourceFile::new("crates/x/tests/battery.rs".into(), "fn a() {}".into());
        assert!(f.is_test_line(1));
    }

    #[test]
    fn allowlist_round_trips_and_tracks_staleness() {
        let text = "# comment\nR3\tsrc/a.rs\t.expect(\"spawn\")\tstartup only\n";
        let mut al = Allowlist::parse(text).unwrap();
        assert_eq!(al.entries.len(), 1);
        let diag = Diagnostic {
            file: "crates/x/src/a.rs".into(),
            line: 3,
            col: 9,
            rule: "R3",
            message: "x".into(),
        };
        assert!(al.suppresses(&diag, "    thread.spawn().expect(\"spawn\");"));
        assert!(al.stale().is_empty());

        let mut unused = Allowlist::parse(text).unwrap();
        assert!(!unused.suppresses(&diag, "    nothing matching here"));
        assert_eq!(unused.stale().len(), 1);
    }

    #[test]
    fn allowlist_rejects_malformed_lines() {
        assert!(Allowlist::parse("R3\tonly-two-fields\t\n").is_err());
        assert!(Allowlist::parse("R3\ta\tb\t \n").is_err());
    }

    #[test]
    fn justification_lookup_checks_line_and_predecessor() {
        let src = "// lint: ordered (sorted below)\nmap.iter()\nother()\n";
        let f = SourceFile::new("x.rs".into(), src.into());
        assert!(f.line_has_justification(2, "lint: ordered"));
        assert!(!f.line_has_justification(3, "lint: ordered"));
    }
}
