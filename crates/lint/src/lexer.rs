//! A hand-rolled Rust lexer: just enough of the real language to walk
//! every `.rs` file in this workspace without mis-tokenizing it.
//!
//! The rule engine only needs a faithful *token stream* — identifiers,
//! punctuation, and literals with line/column positions, with comments
//! preserved as tokens (two rules read them) and string/comment
//! *content* never leaking into the significant stream. That makes the
//! hard parts exactly the classic lexer traps:
//!
//! * raw strings (`r"…"`, `r#"…"#`, arbitrarily many `#`s) and their
//!   byte/C variants (`br#"…"#`, `cr"…"`), where `"` inside the body
//!   must not terminate the literal;
//! * nested block comments (`/* /* */ */` — Rust block comments nest,
//!   unlike C);
//! * `'a'` (char literal) vs `'a` (lifetime), including escapes
//!   (`'\''`, `'\u{1F600}'`) and `'_'` vs `'_`;
//! * byte chars/strings (`b'x'`, `b"…"`) and raw identifiers
//!   (`r#match`).
//!
//! Coverage invariant (property-tested in `tests/lexer_battery.rs`):
//! tokens are emitted in order, spans never overlap, and every byte of
//! the input is either inside exactly one token span or is whitespace.
//! Unterminated literals and comments extend to end of input rather
//! than panicking — the lexer must be total over arbitrary bytes.

/// What a [`Token`] is; the rule engine dispatches on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the engine does not distinguish).
    Ident,
    /// A lifetime such as `'a` or `'static` (no closing quote).
    Lifetime,
    /// A char or byte-char literal: `'x'`, `'\n'`, `b'0'`.
    CharLit,
    /// Any string literal: plain, raw, byte, raw-byte, or C string.
    StrLit,
    /// A numeric literal (`.` is *not* consumed: `1.5` lexes as
    /// `1` `.` `5`, which is harmless for pattern rules and keeps
    /// `0..n` ranges unambiguous).
    NumLit,
    /// `// …` (including doc comments `///` and `//!`).
    LineComment,
    /// `/* … */`, nesting tracked.
    BlockComment,
    /// A single punctuation character (`::` is two `Punct` tokens).
    Punct,
}

/// One lexed token: kind plus byte span and 1-based position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset past the last byte, exclusive.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based character column of the first byte.
    pub col: u32,
}

impl Token {
    /// The token's source text.
    #[must_use]
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Whether this token is a comment (insignificant to most rules).
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src,
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    /// The `n`-th char ahead of the cursor (0 = the next char).
    fn peek_at(&self, n: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(n)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.bump();
            return true;
        }
        false
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenize `src` completely. Total over arbitrary input: malformed or
/// unterminated constructs produce a best-effort token extending to end
/// of input rather than an error.
#[must_use]
pub fn tokenize(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let (start, line, col) = (cur.pos, cur.line, cur.col);
        let kind = if c.is_whitespace() {
            cur.bump();
            continue;
        } else if c == '/' && cur.peek_at(1) == Some('/') {
            lex_line_comment(&mut cur)
        } else if c == '/' && cur.peek_at(1) == Some('*') {
            lex_block_comment(&mut cur)
        } else if let Some(kind) = try_lex_prefixed(&mut cur) {
            kind
        } else if c == '"' {
            lex_plain_string(&mut cur)
        } else if c == '\'' {
            lex_char_or_lifetime(&mut cur)
        } else if is_ident_start(c) {
            lex_ident(&mut cur)
        } else if c.is_ascii_digit() {
            lex_number(&mut cur)
        } else {
            cur.bump();
            TokenKind::Punct
        };
        out.push(Token {
            kind,
            start,
            end: cur.pos,
            line,
            col,
        });
    }
    out
}

fn lex_line_comment(cur: &mut Cursor<'_>) -> TokenKind {
    while let Some(c) = cur.peek() {
        if c == '\n' {
            break;
        }
        cur.bump();
    }
    TokenKind::LineComment
}

fn lex_block_comment(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // `/`
    cur.bump(); // `*`
    let mut depth = 1u32;
    while depth > 0 {
        match (cur.peek(), cur.peek_at(1)) {
            (Some('/'), Some('*')) => {
                cur.bump();
                cur.bump();
                depth += 1;
            }
            (Some('*'), Some('/')) => {
                cur.bump();
                cur.bump();
                depth -= 1;
            }
            (Some(_), _) => {
                cur.bump();
            }
            (None, _) => break, // unterminated: extend to EOF
        }
    }
    TokenKind::BlockComment
}

/// Literal prefixes starting with `r`, `b`, or `c`: raw strings
/// (`r"…"`, `r#"…"#`), byte strings (`b"…"`, `br#"…"#`), byte chars
/// (`b'x'`), C strings (`c"…"`, `cr#"…"#`), and raw identifiers
/// (`r#match`). Returns `None` when the cursor is not at any of these
/// (plain identifiers fall through to `lex_ident`).
fn try_lex_prefixed(cur: &mut Cursor<'_>) -> Option<TokenKind> {
    let rest = &cur.src[cur.pos..];
    let mut chars = rest.chars();
    let first = chars.next()?;
    if !matches!(first, 'r' | 'b' | 'c') {
        return None;
    }
    // The candidate prefix is 1–2 letters from {r, b, c} (`br`, `cr`),
    // then optional `#`s, then a quote.
    let second = chars.next();
    let (prefix_len, raw) = match (first, second) {
        ('b' | 'c', Some('r')) => (2, true),
        ('r', _) => (1, true),
        _ => (1, false),
    };
    // The prefix letters are ASCII, so byte slicing is safe here.
    let after_prefix = &rest[prefix_len..];
    let hashes = if raw {
        after_prefix.bytes().take_while(|&b| b == b'#').count()
    } else {
        0
    };
    let quote = after_prefix[hashes..].chars().next();
    match quote {
        Some('"') => {
            for _ in 0..prefix_len + hashes + 1 {
                cur.bump();
            }
            lex_raw_or_plain_body(cur, raw, hashes);
            Some(TokenKind::StrLit)
        }
        // `b'x'` — byte char literal.
        Some('\'') if first == 'b' && !raw => {
            cur.bump(); // `b`
            cur.bump(); // `'`
            lex_char_body(cur);
            Some(TokenKind::CharLit)
        }
        // `r#ident` — raw identifier (exactly `r`, one `#`, ident start).
        _ if first == 'r' && prefix_len == 1 && hashes == 1 => {
            let c = after_prefix.chars().nth(1);
            if c.is_some_and(is_ident_start) {
                cur.bump(); // `r`
                cur.bump(); // `#`
                Some(lex_ident(cur))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Body of a string whose opening delimiter has been consumed. Raw
/// strings end at `"` followed by `hashes` `#`s and process no escapes;
/// plain strings honor `\` escapes.
fn lex_raw_or_plain_body(cur: &mut Cursor<'_>, raw: bool, hashes: usize) {
    while let Some(c) = cur.peek() {
        if c == '"' {
            if raw {
                let closes = (0..hashes).all(|i| cur.peek_at(1 + i) == Some('#'));
                if closes {
                    for _ in 0..hashes + 1 {
                        cur.bump();
                    }
                    return;
                }
                cur.bump();
            } else {
                cur.bump();
                return;
            }
        } else if !raw && c == '\\' {
            cur.bump();
            cur.bump(); // the escaped char (any, incl. `"` and `\`)
        } else {
            cur.bump();
        }
    }
    // Unterminated: extend to EOF.
}

fn lex_plain_string(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // opening `"`
    lex_raw_or_plain_body(cur, false, 0);
    TokenKind::StrLit
}

/// Body of a char literal whose opening `'` has been consumed: one
/// (possibly escaped) character, then the closing `'`.
fn lex_char_body(cur: &mut Cursor<'_>) {
    match cur.peek() {
        Some('\\') => {
            cur.bump();
            if let Some(esc) = cur.bump() {
                // `\u{…}` consumes through the closing brace.
                if esc == 'u' && cur.peek() == Some('{') {
                    while let Some(c) = cur.bump() {
                        if c == '}' {
                            break;
                        }
                    }
                }
            }
        }
        Some(_) => {
            cur.bump();
        }
        None => return,
    }
    cur.eat('\'');
}

/// Disambiguate `'a'` (char) from `'a` (lifetime). After the opening
/// quote: a `\` always means a char literal; an identifier-ish char
/// followed by `'` is a char literal (`'a'`, `'_'`); otherwise an
/// identifier-start char begins a lifetime (`'a`, `'static`, `'_`);
/// any other single char followed by `'` is a char literal (`'+'`).
fn lex_char_or_lifetime(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // `'`
    match (cur.peek(), cur.peek_at(1)) {
        (Some('\\'), _) => {
            lex_char_body(cur);
            TokenKind::CharLit
        }
        (Some(c), Some('\'')) if c != '\'' => {
            cur.bump();
            cur.bump();
            TokenKind::CharLit
        }
        (Some(c), _) if is_ident_start(c) => {
            while cur.peek().is_some_and(is_ident_continue) {
                cur.bump();
            }
            TokenKind::Lifetime
        }
        (Some(_), _) => {
            // `'+'`-style char of a non-ident char, or malformed input
            // such as `''`; consume one char and an optional quote.
            lex_char_body(cur);
            TokenKind::CharLit
        }
        (None, _) => TokenKind::Punct, // trailing `'` at EOF
    }
}

fn lex_ident(cur: &mut Cursor<'_>) -> TokenKind {
    while cur.peek().is_some_and(is_ident_continue) {
        cur.bump();
    }
    TokenKind::Ident
}

/// Numbers consume `[0-9a-zA-Z_]` from a digit start — covering hex
/// (`0xff`), suffixes (`10u64`), exponents without sign (`1e9`) — but
/// never `.`, so `0..n` and `x.0` stay unambiguous. `1.5` lexing as
/// three tokens is deliberate and harmless for pattern rules.
fn lex_number(cur: &mut Cursor<'_>) -> TokenKind {
    while cur
        .peek()
        .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
    {
        cur.bump();
    }
    TokenKind::NumLit
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    #[test]
    fn raw_strings_ignore_interior_quotes() {
        use TokenKind::*;
        assert_eq!(
            kinds(r###"let s = r#"a "quoted" b"#;"###),
            vec![
                (Ident, "let"),
                (Ident, "s"),
                (Punct, "="),
                (StrLit, r###"r#"a "quoted" b"#"###),
                (Punct, ";"),
            ]
        );
        // More hashes than the body uses; `"#` inside must not close.
        let src = r####"r##"has "# inside"##"####;
        assert_eq!(kinds(src), vec![(TokenKind::StrLit, src)]);
        assert_eq!(kinds(r#"r"""#), vec![(TokenKind::StrLit, "r\"\"")]);
    }

    #[test]
    fn nested_block_comments_balance() {
        let src = "/* outer /* inner */ still outer */ after";
        assert_eq!(
            kinds(src),
            vec![
                (
                    TokenKind::BlockComment,
                    "/* outer /* inner */ still outer */"
                ),
                (TokenKind::Ident, "after"),
            ]
        );
    }

    #[test]
    fn char_vs_lifetime() {
        use TokenKind::*;
        assert_eq!(kinds("'a'"), vec![(CharLit, "'a'")]);
        assert_eq!(kinds("'a"), vec![(Lifetime, "'a")]);
        assert_eq!(kinds("'static"), vec![(Lifetime, "'static")]);
        assert_eq!(kinds("'_'"), vec![(CharLit, "'_'")]);
        assert_eq!(kinds("'\\''"), vec![(CharLit, "'\\''")]);
        assert_eq!(kinds("'\\u{1F600}'"), vec![(CharLit, "'\\u{1F600}'")]);
        assert_eq!(
            kinds("<'a, 'b>"),
            vec![
                (Punct, "<"),
                (Lifetime, "'a"),
                (Punct, ","),
                (Lifetime, "'b"),
                (Punct, ">"),
            ]
        );
    }

    #[test]
    fn byte_and_c_literals() {
        use TokenKind::*;
        assert_eq!(kinds("b\"bytes\""), vec![(StrLit, "b\"bytes\"")]);
        assert_eq!(kinds("b'x'"), vec![(CharLit, "b'x'")]);
        assert_eq!(
            kinds("br#\"raw \" bytes\"#"),
            vec![(StrLit, "br#\"raw \" bytes\"#")]
        );
        assert_eq!(kinds("c\"cstr\""), vec![(StrLit, "c\"cstr\"")]);
        assert_eq!(kinds("cr#\"raw c\"#"), vec![(StrLit, "cr#\"raw c\"#")]);
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        use TokenKind::*;
        assert_eq!(
            kinds("let r#match = 1;"),
            vec![
                (Ident, "let"),
                (Ident, "r#match"),
                (Punct, "="),
                (NumLit, "1"),
                (Punct, ";"),
            ]
        );
        // A bare `b` or `r` before something non-stringy is an ident.
        assert_eq!(
            kinds("b + r"),
            vec![(Ident, "b"), (Punct, "+"), (Ident, "r")]
        );
    }

    #[test]
    fn ranges_do_not_eat_number_dots() {
        use TokenKind::*;
        assert_eq!(
            kinds("0..n"),
            vec![(NumLit, "0"), (Punct, "."), (Punct, "."), (Ident, "n")]
        );
        assert_eq!(
            kinds("1.5e3"),
            vec![(NumLit, "1"), (Punct, "."), (NumLit, "5e3")]
        );
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let src = "fn f() {\n    x.y\n}";
        let toks = tokenize(src);
        let x = toks.iter().find(|t| t.text(src) == "x").unwrap();
        assert_eq!((x.line, x.col), (2, 5));
        let close = toks.last().unwrap();
        assert_eq!((close.line, close.col), (3, 1));
    }

    #[test]
    fn unterminated_constructs_extend_to_eof() {
        assert_eq!(kinds("\"open"), vec![(TokenKind::StrLit, "\"open")]);
        assert_eq!(
            kinds("/* open /* deeper"),
            vec![(TokenKind::BlockComment, "/* open /* deeper")]
        );
        assert_eq!(kinds("r#\"open"), vec![(TokenKind::StrLit, "r#\"open")]);
    }
}
