//! Lexer battery: the hand-rolled Rust lexer must be *total* and
//! *faithful* over everything the rule engine will ever feed it.
//!
//! Three layers:
//!
//! 1. **Fragment composition (property)** — a pool of the classic lexer
//!    traps (raw strings with interior quotes, nested block comments,
//!    char-vs-lifetime, byte/C literals, raw identifiers, range dots),
//!    each with its known token-kind spelling. Random sequences of
//!    fragments joined by newlines must lex to exactly the
//!    concatenation of their spellings — fragments may not bleed into
//!    each other.
//! 2. **Totality + coverage (property)** — over adversarial character
//!    soup (quote/hash/backslash/slash-heavy, with multi-byte chars),
//!    the lexer must not panic, must emit monotonically ordered
//!    non-overlapping spans on char boundaries, and every byte outside
//!    a token span must be whitespace.
//! 3. **The real workspace** — every `.rs` file the workspace run
//!    visits must satisfy the same coverage invariant.

use proptest::collection::vec;
use proptest::prelude::*;
use sketch_lint::lexer::{tokenize, TokenKind};

use TokenKind::{BlockComment, CharLit, Ident, Lifetime, LineComment, NumLit, Punct, StrLit};

/// Tricky source fragments with their exact expected token kinds
/// (comments included — they are tokens, just insignificant ones).
const FRAGMENTS: &[(&str, &[TokenKind])] = &[
    (r##"r#"interior " quote"#"##, &[StrLit]),
    (r###"r##"deeper "# quote"##"###, &[StrLit]),
    ("r\"plain raw\"", &[StrLit]),
    ("\"plain \\\" escaped \\\\ end\"", &[StrLit]),
    ("b\"bytes\"", &[StrLit]),
    ("br#\"raw \" bytes\"#", &[StrLit]),
    ("c\"cstr\"", &[StrLit]),
    ("cr#\"raw c\"#", &[StrLit]),
    ("b'x'", &[CharLit]),
    ("'a'", &[CharLit]),
    ("'_'", &[CharLit]),
    ("'\\''", &[CharLit]),
    ("'\\u{1F600}'", &[CharLit]),
    ("'\\n'", &[CharLit]),
    ("'static", &[Lifetime]),
    ("'_", &[Lifetime]),
    ("&'a mut", &[Punct, Lifetime, Ident]),
    ("/* nested /* deep */ out */", &[BlockComment]),
    ("// trailing line comment", &[LineComment]),
    ("/// doc comment", &[LineComment]),
    ("r#match", &[Ident]),
    ("ident_07", &[Ident]),
    ("_leading", &[Ident]),
    ("0..len", &[NumLit, Punct, Punct, Ident]),
    ("0xFF_u64", &[NumLit]),
    ("1.5e3", &[NumLit, Punct, NumLit]),
    ("x.0", &[Ident, Punct, NumLit]),
    (
        "::<>();",
        &[Punct, Punct, Punct, Punct, Punct, Punct, Punct],
    ),
];

/// Characters chosen to maximize collisions with literal/comment
/// delimiters, plus multi-byte chars to stress char-boundary handling.
const SOUP: &[char] = &[
    '"', '\'', '#', '\\', '/', '*', 'r', 'b', 'c', 'u', 'x', 'n', '0', '9', '_', '{', '}', '.',
    ' ', '\n', '\t', 'é', '😀',
];

/// Assert the coverage invariant: spans in order, non-overlapping,
/// non-empty, on char boundaries, and all inter-token bytes whitespace.
fn check_coverage(src: &str) -> Result<(), String> {
    let toks = tokenize(src);
    let mut pos = 0usize;
    for (i, t) in toks.iter().enumerate() {
        if t.start < pos {
            return Err(format!("token {i} starts at {} before {pos}", t.start));
        }
        if t.end <= t.start || t.end > src.len() {
            return Err(format!("token {i} has bad span {}..{}", t.start, t.end));
        }
        if !src.is_char_boundary(t.start) || !src.is_char_boundary(t.end) {
            return Err(format!("token {i} span not on char boundaries"));
        }
        if !src[pos..t.start].chars().all(char::is_whitespace) {
            return Err(format!(
                "non-whitespace bytes {:?} between tokens before {i}",
                &src[pos..t.start]
            ));
        }
        pos = t.end;
    }
    if !src[pos..].chars().all(char::is_whitespace) {
        return Err(format!("trailing non-token bytes {:?}", &src[pos..]));
    }
    Ok(())
}

#[test]
fn each_fragment_lexes_to_its_spelling() {
    for (src, want) in FRAGMENTS {
        let got: Vec<TokenKind> = tokenize(src).iter().map(|t| t.kind).collect();
        assert_eq!(&got, want, "fragment {src:?}");
        check_coverage(src).unwrap_or_else(|e| panic!("fragment {src:?}: {e}"));
    }
}

proptest! {
    /// Random fragment sequences: no fragment may swallow or split its
    /// neighbors, regardless of what precedes or follows it.
    #[test]
    fn fragment_sequences_compose(picks in vec(0usize..FRAGMENTS.len(), 1..40)) {
        let src: String = picks
            .iter()
            .map(|&i| FRAGMENTS[i].0)
            .collect::<Vec<_>>()
            .join("\n");
        let want: Vec<TokenKind> = picks
            .iter()
            .flat_map(|&i| FRAGMENTS[i].1.iter().copied())
            .collect();
        let got: Vec<TokenKind> = tokenize(&src).iter().map(|t| t.kind).collect();
        prop_assert_eq!(got, want);
        if let Err(e) = check_coverage(&src) {
            return Err(TestCaseError::fail(e));
        }
    }

    /// Totality: arbitrary delimiter-heavy soup must lex without
    /// panicking and still satisfy the coverage invariant.
    #[test]
    fn adversarial_soup_is_total(picks in vec(0usize..SOUP.len(), 0..80)) {
        let src: String = picks.iter().map(|&i| SOUP[i]).collect();
        if let Err(e) = check_coverage(&src) {
            return Err(TestCaseError::fail(format!("{e} on {src:?}")));
        }
    }
}

#[test]
fn every_workspace_file_satisfies_coverage() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let files = sketch_lint::engine::collect_files(&[root]).expect("workspace walk");
    assert!(
        files.len() > 100,
        "workspace walk found only {} files — wrong root?",
        files.len()
    );
    for path in files {
        let src = std::fs::read_to_string(&path).expect("readable workspace file");
        check_coverage(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            src.trim().is_empty() || !tokenize(&src).is_empty(),
            "{}: non-empty file lexed to zero tokens",
            path.display()
        );
    }
}
