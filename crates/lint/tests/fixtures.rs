//! Fixture self-test: every rule is exercised against positive and
//! negative fixtures under `crates/lint/fixtures/`.
//!
//! Each `*_bad.rs` fixture marks the lines it expects to be flagged
//! with `//~ RX` trailing comments (one rule id per expected
//! diagnostic, repeated when one line should yield several); `*_good.rs`
//! fixtures carry no markers and must come back clean. The harness runs
//! each fixture's namesake rule (`r2_bad.rs` → R2), bypassing the path
//! scoping that workspace runs apply, and compares the exact multiset
//! of `(rule, line)` pairs — so a rule that stops firing, fires on the
//! wrong line, or starts over-firing all fail here, not in production.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use sketch_lint::engine::SourceFile;
use sketch_lint::rules::RULES;

/// Parse `//~ R1 R3 ...` markers into a sorted `(rule, line)` multiset.
fn expected_markers(src: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        if let Some(pos) = line.find("//~") {
            for id in line[pos + 3..].split_whitespace() {
                let lineno = u32::try_from(idx + 1).expect("fixture fits in u32 lines");
                out.push((id.to_string(), lineno));
            }
        }
    }
    out.sort();
    out
}

/// The rule a fixture targets, from its `rN_(bad|good).rs` name.
fn namesake_rule(name: &str) -> &'static sketch_lint::rules::Rule {
    let id = name
        .split('_')
        .next()
        .expect("fixture name has a rule prefix")
        .to_uppercase();
    sketch_lint::rules::rule_by_id(&id).unwrap_or_else(|| panic!("{name}: no rule named {id}"))
}

/// Run one rule's checker on the fixture, ignoring its path scope.
fn diagnostics_for(rule: &sketch_lint::rules::Rule, path: &str, src: &str) -> Vec<(String, u32)> {
    let file = SourceFile::new(path.to_string(), src.to_string());
    let mut out: Vec<(String, u32)> = (rule.check)(&file)
        .into_iter()
        .map(|d| (d.rule.to_string(), d.line))
        .collect();
    out.sort();
    out
}

fn fixture_paths() -> Vec<PathBuf> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("fixtures directory exists")
        .map(|e| e.expect("readable fixtures dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    paths.sort();
    paths
}

#[test]
fn fixtures_match_markers_exactly() {
    let paths = fixture_paths();
    assert!(
        paths.len() >= 12,
        "expected at least one bad+good fixture per rule, found {}",
        paths.len()
    );
    for path in &paths {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("utf-8 fixture name");
        let src = std::fs::read_to_string(path).expect("readable fixture");
        let expected = expected_markers(&src);
        if name.contains("_good") {
            assert!(
                expected.is_empty(),
                "{name}: good fixtures must not carry //~ markers"
            );
        } else {
            assert!(
                !expected.is_empty(),
                "{name}: bad fixtures must mark at least one expected diagnostic"
            );
        }
        let rule = namesake_rule(name);
        let actual = diagnostics_for(rule, &format!("crates/lint/fixtures/{name}"), &src);
        assert_eq!(
            actual, expected,
            "{name}: diagnostics (left) diverge from //~ markers (right)"
        );
    }
}

/// A rule that fires on no fixture at all is dead code wearing a badge:
/// refactors to the engine or lexer could silently disarm it. Fail
/// loudly instead.
#[test]
fn every_rule_fires_on_some_fixture() {
    let mut fired: BTreeSet<String> = BTreeSet::new();
    for path in fixture_paths() {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("utf-8 fixture name");
        let src = std::fs::read_to_string(&path).expect("readable fixture");
        let rule = namesake_rule(name);
        for (fired_rule, _) in diagnostics_for(rule, &format!("crates/lint/fixtures/{name}"), &src)
        {
            fired.insert(fired_rule);
        }
    }
    for rule in RULES {
        assert!(
            fired.contains(rule.id),
            "rule {} never fired on any fixture — dead rule",
            rule.id
        );
    }
}
