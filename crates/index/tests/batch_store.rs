//! Batch query determinism (mirroring PR 1's thread-equivalence tests)
//! and index construction from a packed binary corpus store.

use correlation_sketches::{CorrelationSketch, SketchBuilder, SketchConfig};
use sketch_index::{engine, QueryOptions, SketchIndex};
use sketch_store::{pack_corpus, PackOptions};
use sketch_table::ColumnPair;

/// Corpus of staggered, varied columns plus a set of query sketches.
fn fixture(tables: usize, queries: usize) -> (Vec<CorrelationSketch>, Vec<CorrelationSketch>) {
    let b = SketchBuilder::new(SketchConfig::with_size(128));
    let n = 600usize;
    let corpus: Vec<CorrelationSketch> = (0..tables)
        .map(|t| {
            let lo = (t * 41) % 400;
            b.build(&ColumnPair::new(
                format!("t{t}"),
                "k",
                "v",
                (lo..lo + n).map(|i| format!("key-{i}")).collect(),
                (lo..lo + n)
                    .map(|i| ((i as f64) * 0.13 + t as f64).sin() * (t + 1) as f64)
                    .collect(),
            ))
        })
        .collect();
    let query_sketches: Vec<CorrelationSketch> = (0..queries)
        .map(|q| {
            let lo = (q * 29) % 300;
            b.build(&ColumnPair::new(
                format!("q{q}"),
                "k",
                "v",
                (lo..lo + n).map(|i| format!("key-{i}")).collect(),
                (lo..lo + n)
                    .map(|i| ((i as f64) * 0.11).sin() * 4.0)
                    .collect(),
            ))
        })
        .collect();
    (corpus, query_sketches)
}

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("cskb-index-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn batch_identical_to_looping_for_every_thread_count() {
    let (corpus, queries) = fixture(30, 12);
    let index = SketchIndex::from_sketches(corpus).unwrap();
    let serial = QueryOptions {
        k: 15,
        threads: 1,
        ..QueryOptions::default()
    };

    // The reference: one serial single-query call per query sketch.
    let looped: Vec<Vec<_>> = queries
        .iter()
        .map(|q| engine::top_k_join_correlation(&index, q, &serial))
        .collect();
    let looped_reports: Vec<Vec<_>> = queries
        .iter()
        .map(|q| engine::top_k_with_reports(&index, q, &serial, 0.05))
        .collect();
    assert!(looped.iter().any(|r| !r.is_empty()));

    for threads in [0usize, 1, 2, 7, 16] {
        let opts = QueryOptions { threads, ..serial };
        assert_eq!(
            engine::top_k_batch(&index, &queries, &opts),
            looped,
            "threads={threads}"
        );
        assert_eq!(
            engine::top_k_batch_with_reports(&index, &queries, &opts, 0.05),
            looped_reports,
            "reports, threads={threads}"
        );
    }
}

#[test]
fn batch_of_one_and_empty_batch() {
    let (corpus, queries) = fixture(8, 2);
    let index = SketchIndex::from_sketches(corpus).unwrap();
    let opts = QueryOptions {
        threads: 4,
        ..QueryOptions::default()
    };
    assert!(engine::top_k_batch(&index, &[], &opts).is_empty());
    let single = engine::top_k_batch(&index, &queries[..1], &opts);
    assert_eq!(single.len(), 1);
    assert_eq!(
        single[0],
        engine::top_k_join_correlation(&index, &queries[0], &opts)
    );
}

#[test]
fn from_store_equals_insertion_order_index() {
    let (corpus, queries) = fixture(20, 5);
    let dir = TempDir::new("from-store");
    pack_corpus(
        &dir.0,
        &corpus,
        &PackOptions {
            shards: 5,
            threads: 2,
        },
    )
    .unwrap();

    let direct = SketchIndex::from_sketches(corpus.clone()).unwrap();
    for threads in [1usize, 4] {
        let from_store = SketchIndex::from_store(&dir.0, threads).unwrap();
        assert_eq!(from_store.len(), direct.len());
        assert_eq!(from_store.distinct_keys(), direct.distinct_keys());
        // Doc ids follow pack order, so queries answer identically.
        let opts = QueryOptions::default();
        for q in &queries {
            assert_eq!(
                engine::top_k_join_correlation(&from_store, q, &opts),
                engine::top_k_join_correlation(&direct, q, &opts),
            );
        }
    }
}

#[test]
fn from_store_surfaces_corruption() {
    let (corpus, _) = fixture(6, 1);
    let dir = TempDir::new("from-store-corrupt");
    pack_corpus(
        &dir.0,
        &corpus,
        &PackOptions {
            shards: 2,
            threads: 1,
        },
    )
    .unwrap();
    // Flip one payload byte in shard 0.
    let shard = dir.0.join("shard-0000.cskb");
    let mut bytes = std::fs::read(&shard).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&shard, bytes).unwrap();
    let err = SketchIndex::from_store(&dir.0, 2).unwrap_err();
    assert!(
        err.as_sketch_error().is_some(),
        "corruption must surface as a typed sketch error: {err}"
    );
}
