//! The mutable-corpus equivalence battery — the headline guarantee of
//! the delta/tombstone machinery: after **any** interleaving of appends,
//! removes, and compactions, an incrementally maintained [`SketchIndex`]
//! answers every top-k query with reports **bit-identical** to an index
//! rebuilt from scratch over the store, at every thread count.
//!
//! Three independently maintained indices are compared after every
//! operation:
//!
//! 1. `inc` — maintained purely in memory via [`SketchIndex::apply_delta`]
//!    with the same records the store writes (never re-reads the store);
//! 2. `refreshed` — catches up via [`SketchIndex::refresh_from_store`]
//!    (delta shards only), rebuilding on the typed
//!    [`SketchError::StaleGeneration`] a compaction forces;
//! 3. a from-scratch [`SketchIndex::from_store`] rebuild.

use correlation_sketches::{
    CorrelationSketch, DeltaRecord, SketchBuilder, SketchConfig, SketchError,
};
use proptest::prelude::*;
use sketch_index::{engine, QueryOptions, Scorer, SketchIndex};
use sketch_store::{append_corpus, compact_corpus, pack_corpus, remove_from_corpus, PackOptions};
use sketch_table::ColumnPair;

/// Thread counts every comparison must hold at (tier-1 acceptance set).
const THREADS: [usize; 5] = [0, 1, 2, 7, 16];

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cskb-prop-mutable-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Deterministic sketch `n` of a shape family: staggered key ranges and
/// varied signals so overlaps, ties, and estimates all occur.
fn sketch(b: &SketchBuilder, n: usize) -> CorrelationSketch {
    let lo = (n * 37) % 150;
    let rows = 40 + (n * 13) % 110;
    b.build(&ColumnPair::new(
        format!("t{n}"),
        "k",
        "v",
        (lo..lo + rows).map(|i| format!("key-{i}")).collect(),
        (lo..lo + rows)
            .map(|i| ((i as f64) * 0.17 + n as f64).sin() * ((n % 7) + 1) as f64)
            .collect(),
    ))
}

fn queries(b: &SketchBuilder) -> Vec<CorrelationSketch> {
    [(0usize, 90usize), (60, 80), (140, 60)]
        .iter()
        .map(|&(lo, rows)| {
            b.build(&ColumnPair::new(
                format!("q{lo}"),
                "k",
                "v",
                (lo..lo + rows).map(|i| format!("key-{i}")).collect(),
                (lo..lo + rows)
                    .map(|i| ((i as f64) * 0.11).sin() * 4.0)
                    .collect(),
            ))
        })
        .collect()
}

/// One step of a generated interleaving.
#[derive(Debug, Clone)]
enum Op {
    /// Append this many fresh sketches.
    Append(usize),
    /// Remove one live sketch (index projected onto the live set), or a
    /// guaranteed-unknown id when the live set is empty.
    Remove(prop::sample::Index),
    /// Fold the delta log back into base shards.
    Compact,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (1usize..4).prop_map(Op::Append),
            any::<prop::sample::Index>().prop_map(Op::Remove),
            Just(Op::Compact),
        ],
        1..8,
    )
}

/// Assert the three indices answer identically (reports and all) at
/// every thread count in [`THREADS`] — under the default options for
/// every query, and under every `s1..s4` scorer for the first query
/// (the full scorer × query sweep runs once per case, at the end).
fn assert_equivalent(
    store_dir: &std::path::Path,
    inc: &SketchIndex,
    refreshed: &SketchIndex,
    queries: &[CorrelationSketch],
    ctx: &str,
) -> Result<(), TestCaseError> {
    for &threads in &THREADS {
        let rebuilt = SketchIndex::from_store(store_dir, threads)
            .map_err(|e| TestCaseError::fail(format!("{ctx}: rebuild failed: {e}")))?;
        prop_assert_eq!(
            inc.len(),
            rebuilt.len(),
            "{}: len (threads={})",
            ctx,
            threads
        );
        let mut variants: Vec<QueryOptions> = vec![QueryOptions {
            k: 8,
            threads,
            ..QueryOptions::default()
        }];
        variants.extend(Scorer::ALL.map(|scorer| QueryOptions {
            k: 8,
            threads,
            scorer,
            confidence: 0.9,
            ..QueryOptions::default()
        }));
        for (vi, opts) in variants.iter().enumerate() {
            // Default options run on every query; the per-scorer
            // variants cover the first query here and the whole set in
            // the end-of-case sweep.
            let queries = if vi == 0 { queries } else { &queries[..1] };
            for q in queries {
                let from_inc = engine::top_k_with_reports(inc, q, opts, 0.05);
                let from_rebuilt = engine::top_k_with_reports(&rebuilt, q, opts, 0.05);
                prop_assert_eq!(
                    &from_inc,
                    &from_rebuilt,
                    "{}: incremental vs rebuild, threads={}, scorer={}, query={}",
                    ctx,
                    threads,
                    opts.scorer,
                    q.id()
                );
                let from_refreshed = engine::top_k_with_reports(refreshed, q, opts, 0.05);
                prop_assert_eq!(
                    &from_inc,
                    &from_refreshed,
                    "{}: incremental vs refreshed, threads={}, scorer={}, query={}",
                    ctx,
                    threads,
                    opts.scorer,
                    q.id()
                );
            }
        }
    }
    Ok(())
}

/// The full scored sweep: every scorer × every query × every thread
/// count, incremental vs from-scratch rebuild. Run once per generated
/// case (after the final operation) and after every step of the
/// scripted interleaving.
fn assert_scored_equivalent(
    store_dir: &std::path::Path,
    inc: &SketchIndex,
    queries: &[CorrelationSketch],
    ctx: &str,
) -> Result<(), TestCaseError> {
    for &threads in &THREADS {
        let rebuilt = SketchIndex::from_store(store_dir, threads)
            .map_err(|e| TestCaseError::fail(format!("{ctx}: rebuild failed: {e}")))?;
        for scorer in Scorer::ALL {
            let opts = QueryOptions {
                k: 8,
                threads,
                scorer,
                confidence: 0.9,
                ..QueryOptions::default()
            };
            for q in queries {
                prop_assert_eq!(
                    engine::top_k_with_reports(inc, q, &opts, 0.05),
                    engine::top_k_with_reports(&rebuilt, q, &opts, 0.05),
                    "{}: scored sweep, threads={}, scorer={}, query={}",
                    ctx,
                    threads,
                    scorer,
                    q.id()
                );
            }
        }
    }
    Ok(())
}

proptest! {
    /// The headline property. Every generated case packs a base corpus,
    /// then walks an arbitrary interleaving of append / remove / compact,
    /// checking full bit-equivalence of the three maintenance strategies
    /// after every single operation.
    #[test]
    fn any_interleaving_matches_full_rebuild(
        base_n in 2usize..7,
        sketch_size in prop_oneof![Just(16usize), Just(64), Just(200)],
        shards in 1usize..4,
        ops in arb_ops(),
    ) {
        let b = SketchBuilder::new(SketchConfig::with_size(sketch_size));
        let dir = TempDir::new();
        let store = dir.0.as_path();
        let qs = queries(&b);

        let mut next_sketch = 0usize;
        let mut fresh = || {
            let s = sketch(&b, next_sketch);
            next_sketch += 1;
            s
        };

        let base: Vec<CorrelationSketch> = (0..base_n).map(|_| fresh()).collect();
        pack_corpus(store, &base, &PackOptions { shards, threads: 2 })
            .map_err(|e| TestCaseError::fail(format!("pack: {e}")))?;
        let mut live_ids: Vec<String> = base.iter().map(|s| s.id().to_string()).collect();
        let mut inc = SketchIndex::from_sketches(base).unwrap();
        let mut refreshed = SketchIndex::from_store(store, 1)
            .map_err(|e| TestCaseError::fail(format!("initial from_store: {e}")))?;

        for (step, op) in ops.iter().enumerate() {
            let ctx = format!("step {step} {op:?}");
            let mut compacted = false;
            match op {
                Op::Append(count) => {
                    let added: Vec<CorrelationSketch> = (0..*count).map(|_| fresh()).collect();
                    append_corpus(store, &added, 2)
                        .map_err(|e| TestCaseError::fail(format!("{ctx}: {e}")))?;
                    live_ids.extend(added.iter().map(|s| s.id().to_string()));
                    let records: Vec<DeltaRecord> =
                        added.into_iter().map(DeltaRecord::Sketch).collect();
                    inc.apply_delta(&records)
                        .map_err(|e| TestCaseError::fail(format!("{ctx}: {e}")))?;
                }
                Op::Remove(which) => {
                    if live_ids.is_empty() {
                        // Nothing live: the typed error is the contract.
                        let err = remove_from_corpus(store, &["ghost/k/v".into()], 1)
                            .expect_err("removing from an empty corpus must fail");
                        prop_assert!(
                            matches!(
                                err.as_sketch_error(),
                                Some(SketchError::TombstoneForUnknownId(_))
                            ),
                            "{}: {}", ctx, err
                        );
                        continue;
                    }
                    let id = live_ids.remove(which.index(live_ids.len()));
                    remove_from_corpus(store, std::slice::from_ref(&id), 1)
                        .map_err(|e| TestCaseError::fail(format!("{ctx}: {e}")))?;
                    inc.apply_delta(&[DeltaRecord::Tombstone(id)])
                        .map_err(|e| TestCaseError::fail(format!("{ctx}: {e}")))?;
                }
                Op::Compact => {
                    let m = compact_corpus(store, &PackOptions { shards, threads: 2 })
                        .map_err(|e| TestCaseError::fail(format!("{ctx}: {e}")))?;
                    prop_assert!(m.deltas.is_empty(), "{}: deltas must be folded", ctx);
                    prop_assert_eq!(m.total as usize, live_ids.len(), "{}", ctx);
                    compacted = true;
                }
            }

            // The refresh-based maintainer: incremental when possible,
            // typed StaleGeneration → rebuild after a compaction.
            match refreshed.refresh_from_store(store, 2) {
                Ok(_) => prop_assert!(
                    !compacted,
                    "{}: refresh across a compaction must not silently succeed", ctx
                ),
                Err(e) => {
                    prop_assert!(
                        matches!(
                            e.as_sketch_error(),
                            Some(SketchError::StaleGeneration { .. })
                        ),
                        "{}: refresh failed with non-generation error: {}", ctx, e
                    );
                    prop_assert!(compacted, "{}: spurious StaleGeneration", ctx);
                    refreshed = SketchIndex::from_store(store, 2)
                        .map_err(|e| TestCaseError::fail(format!("{ctx}: rebuild: {e}")))?;
                }
            }

            assert_equivalent(store, &inc, &refreshed, &qs, &ctx)?;
        }

        // Every scorer × every query × every thread count, once per
        // case at the final corpus state.
        assert_scored_equivalent(store, &inc, &qs, "final state")?;
    }
}

/// A deterministic scripted interleaving covering the tricky corners in
/// one readable sequence: remove-from-base, remove-just-appended,
/// re-append of a removed id, compaction mid-stream, and churn after
/// compaction.
#[test]
fn scripted_interleaving_matches_rebuild_everywhere() {
    let b = SketchBuilder::new(SketchConfig::with_size(64));
    let dir = TempDir::new();
    let store = dir.0.as_path();
    let qs = queries(&b);

    let base: Vec<CorrelationSketch> = (0..6).map(|n| sketch(&b, n)).collect();
    pack_corpus(
        store,
        &base,
        &PackOptions {
            shards: 3,
            threads: 2,
        },
    )
    .unwrap();
    let mut inc = SketchIndex::from_sketches(base.clone()).unwrap();

    let step = |inc: &SketchIndex, tag: &str| {
        for &threads in &THREADS {
            let rebuilt = SketchIndex::from_store(store, threads).unwrap();
            let opts = QueryOptions {
                k: 10,
                threads,
                ..QueryOptions::default()
            };
            for q in &qs {
                assert_eq!(
                    engine::top_k_with_reports(inc, q, &opts, 0.05),
                    engine::top_k_with_reports(&rebuilt, q, &opts, 0.05),
                    "{tag}: threads={threads} query={}",
                    q.id()
                );
            }
        }
        // Scored paths must hold the same equivalence after every step.
        assert_scored_equivalent(store, inc, &qs, tag).unwrap();
    };

    // Append two, remove one base + the first appended, re-append a
    // removed base id (as a different sketch shape), compact, then keep
    // mutating after the compaction.
    let added: Vec<CorrelationSketch> = (6..8).map(|n| sketch(&b, n)).collect();
    append_corpus(store, &added, 2).unwrap();
    inc.apply_delta(
        &added
            .iter()
            .cloned()
            .map(DeltaRecord::Sketch)
            .collect::<Vec<_>>(),
    )
    .unwrap();
    step(&inc, "after append");

    let gone = vec![base[2].id().to_string(), added[0].id().to_string()];
    remove_from_corpus(store, &gone, 1).unwrap();
    inc.apply_delta(
        &gone
            .iter()
            .cloned()
            .map(DeltaRecord::Tombstone)
            .collect::<Vec<_>>(),
    )
    .unwrap();
    step(&inc, "after removes");

    let revived = {
        let mut s = sketch(&b, 2);
        assert_eq!(s.id(), base[2].id(), "shape family reuses the id");
        // Different content under the same id: rebuild must see the new
        // bytes, proving the revival really lands at the end of the log.
        s = b.build(&ColumnPair::new(
            "t2",
            "k",
            "v",
            (0..70).map(|i| format!("key-{i}")).collect(),
            (0..70).map(|i| (i as f64) * 0.5).collect(),
        ));
        s
    };
    append_corpus(store, std::slice::from_ref(&revived), 1).unwrap();
    inc.apply_delta(&[DeltaRecord::Sketch(revived)]).unwrap();
    step(&inc, "after revival");

    compact_corpus(
        store,
        &PackOptions {
            shards: 2,
            threads: 2,
        },
    )
    .unwrap();
    step(&inc, "after compact");

    let late: Vec<CorrelationSketch> = (8..10).map(|n| sketch(&b, n)).collect();
    append_corpus(store, &late, 1).unwrap();
    inc.apply_delta(
        &late
            .iter()
            .cloned()
            .map(DeltaRecord::Sketch)
            .collect::<Vec<_>>(),
    )
    .unwrap();
    remove_from_corpus(store, &[base[5].id().to_string()], 1).unwrap();
    inc.apply_delta(&[DeltaRecord::Tombstone(base[5].id().to_string())])
        .unwrap();
    step(&inc, "after post-compact churn");
}

/// `refresh_from_store` applies exactly the new generations — no
/// re-reads, no skips — and reports typed staleness across a compaction.
#[test]
fn refresh_applies_only_new_generations() {
    let b = SketchBuilder::new(SketchConfig::with_size(32));
    let dir = TempDir::new();
    let store = dir.0.as_path();

    let base: Vec<CorrelationSketch> = (0..4).map(|n| sketch(&b, n)).collect();
    pack_corpus(store, &base, &PackOptions::default()).unwrap();
    let mut idx = SketchIndex::from_store(store, 1).unwrap();
    assert_eq!(idx.generation(), 0);
    assert_eq!(
        idx.refresh_from_store(store, 1).unwrap(),
        0,
        "no-op refresh"
    );

    append_corpus(store, &[sketch(&b, 4), sketch(&b, 5)], 1).unwrap();
    remove_from_corpus(store, &[base[0].id().to_string()], 1).unwrap();
    assert_eq!(idx.refresh_from_store(store, 2).unwrap(), 3);
    assert_eq!(idx.generation(), 2);
    assert_eq!(idx.len(), 5);
    assert_eq!(
        idx.refresh_from_store(store, 1).unwrap(),
        0,
        "already current"
    );

    // A second, stale index refreshes across both generations at once.
    let mut stale = SketchIndex::from_sketches(base.clone()).unwrap();
    assert_eq!(stale.refresh_from_store(store, 1).unwrap(), 3);
    assert_eq!(stale.len(), idx.len());

    // Compaction invalidates incremental refresh with the typed error.
    compact_corpus(store, &PackOptions::default()).unwrap();
    let err = idx.refresh_from_store(store, 1).unwrap_err();
    assert!(
        matches!(
            err.as_sketch_error(),
            Some(SketchError::StaleGeneration {
                found: 2,
                expected: 3
            })
        ),
        "{err}"
    );
    // And a rebuild lands on the compacted generation.
    let mut idx = SketchIndex::from_store(store, 1).unwrap();
    assert_eq!(idx.generation(), 3);
    assert_eq!(idx.len(), 5);

    // Re-packing the directory from scratch resets generations to 0 — a
    // different store lineage. The index (still at generation 3) must
    // get the typed staleness error, never a silent "already current".
    pack_corpus(store, &base, &PackOptions::default()).unwrap();
    let err = idx.refresh_from_store(store, 1).unwrap_err();
    assert!(
        matches!(
            err.as_sketch_error(),
            Some(SketchError::StaleGeneration { found: 3, .. })
        ),
        "{err}"
    );
}

/// The acceptance criterion's reclamation check, at the library level:
/// after compaction the on-disk record count equals the live count (no
/// tombstones or shadowed appends remain) and a full read round-trips.
#[test]
fn compaction_reclaims_all_tombstoned_records() {
    let b = SketchBuilder::new(SketchConfig::with_size(32));
    let dir = TempDir::new();
    let store = dir.0.as_path();

    let base: Vec<CorrelationSketch> = (0..8).map(|n| sketch(&b, n)).collect();
    pack_corpus(
        store,
        &base,
        &PackOptions {
            shards: 2,
            threads: 1,
        },
    )
    .unwrap();
    append_corpus(store, &[sketch(&b, 8)], 1).unwrap();
    let gone: Vec<String> = [1usize, 4, 8]
        .iter()
        .map(|&n| format!("t{n}/k/v"))
        .collect();
    remove_from_corpus(store, &gone, 1).unwrap();

    let before = sketch_store::read_corpus(store, 2).unwrap();
    assert_eq!(before.len(), 6);
    let m = compact_corpus(
        store,
        &PackOptions {
            shards: 3,
            threads: 2,
        },
    )
    .unwrap();
    // Manifest shard counts sum exactly to the live total: nothing
    // tombstoned survives on disk.
    let on_disk: u64 = m.shards.iter().map(|s| s.count).sum();
    assert_eq!(on_disk, 6);
    assert_eq!(m.total, 6);
    assert!(m.deltas.is_empty());
    assert_eq!(sketch_store::read_corpus(store, 2).unwrap(), before);

    // Not a single delta file is left behind.
    let leftovers: Vec<String> = std::fs::read_dir(store)
        .unwrap()
        .filter_map(Result::ok)
        .filter_map(|e| e.file_name().to_str().map(String::from))
        .filter(|n| n.starts_with("delta-"))
        .collect();
    assert!(leftovers.is_empty(), "{leftovers:?}");
}
