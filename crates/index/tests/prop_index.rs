//! Property-based tests for the inverted index and query engine.

use proptest::collection::vec;
use proptest::prelude::*;

use correlation_sketches::{join_sketches, SketchBuilder, SketchConfig};
use sketch_index::{engine, QueryOptions, SketchIndex};
use sketch_table::ColumnPair;

fn pair_from(table: String, keys: &[u16], values: &[f64]) -> ColumnPair {
    let n = keys.len().min(values.len());
    ColumnPair::new(
        table,
        "k",
        "v",
        keys[..n].iter().map(|k| format!("key-{k}")).collect(),
        values[..n].to_vec(),
    )
}

fn arb_corpus() -> impl Strategy<Value = Vec<ColumnPair>> {
    vec((vec(0u16..300, 1..120), vec(-1e3f64..1e3, 1..120)), 1..12).prop_map(|tables| {
        tables
            .into_iter()
            .enumerate()
            .map(|(i, (k, v))| pair_from(format!("t{i}"), &k, &v))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The reported overlap of each retrieved candidate equals the true
    /// sketch-key intersection, and candidates are sorted by it.
    #[test]
    fn overlap_counts_are_exact(
        corpus in arb_corpus(),
        qk in vec(0u16..300, 1..120),
        qv in vec(-1e3f64..1e3, 1..120),
    ) {
        let builder = SketchBuilder::new(SketchConfig::with_size(64));
        let mut index = SketchIndex::new();
        for p in &corpus {
            index.insert(builder.build(p)).unwrap();
        }
        let q = builder.build(&pair_from("q".into(), &qk, &qv));
        let hits = index.overlap_candidates(&q, 100);

        let mut prev = usize::MAX;
        for (doc, overlap) in hits {
            let cand = index.get(doc).unwrap();
            let true_overlap = join_sketches(&q, cand).unwrap().len();
            prop_assert_eq!(overlap, true_overlap);
            prop_assert!(overlap <= prev);
            prop_assert!(overlap > 0);
            prev = overlap;
        }
    }

    /// Query results are never longer than k, scores descend, and every
    /// reported sample size matches the candidate's join.
    #[test]
    fn query_results_are_well_formed(
        corpus in arb_corpus(),
        qk in vec(0u16..300, 1..120),
        qv in vec(-1e3f64..1e3, 1..120),
        k in 1usize..8,
    ) {
        let builder = SketchBuilder::new(SketchConfig::with_size(64));
        let mut index = SketchIndex::new();
        for p in &corpus {
            index.insert(builder.build(p)).unwrap();
        }
        let q = builder.build(&pair_from("q".into(), &qk, &qv));
        let opts = QueryOptions { k, ..QueryOptions::default() };
        let results = engine::top_k_join_correlation(&index, &q, &opts);
        prop_assert!(results.len() <= k);
        for w in results.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        for r in &results {
            let cand = index.get(r.doc).unwrap();
            prop_assert_eq!(r.sample_size, join_sketches(&q, cand).unwrap().len());
            if let Some(est) = r.estimate {
                prop_assert!((-1.0..=1.0).contains(&est));
                prop_assert!((r.score - est.abs()).abs() < 1e-12);
            }
        }
    }

    /// Inserting the query itself into the index makes it the top result
    /// (self-similarity sanity).
    #[test]
    fn self_query_ranks_first(
        qk in vec(0u16..300, 10..120),
        qv in vec(-1e3f64..1e3, 10..120),
    ) {
        let q_pair = pair_from("q".into(), &qk, &qv);
        let builder = SketchBuilder::new(SketchConfig::with_size(64));
        let q_sketch = builder.build(&q_pair);
        // Require a non-degenerate self-estimate (constant columns have
        // undefined correlation).
        let self_sample = join_sketches(&q_sketch, &q_sketch).unwrap();
        prop_assume!(self_sample
            .estimate(sketch_stats::CorrelationEstimator::Pearson)
            .is_ok());

        let mut index = SketchIndex::new();
        index.insert(q_sketch.clone()).unwrap();
        // A decoy with disjoint keys.
        let decoy = ColumnPair::new(
            "decoy",
            "k",
            "v",
            (0..50).map(|i| format!("other-{i}")).collect(),
            (0..50).map(f64::from).collect(),
        );
        index.insert(builder.build(&decoy)).unwrap();

        let results =
            engine::top_k_join_correlation(&index, &q_sketch, &QueryOptions::default());
        prop_assert!(!results.is_empty());
        prop_assert_eq!(results[0].doc, 0);
        prop_assert!((results[0].estimate.unwrap() - 1.0).abs() < 1e-9);
    }
}
