//! The lossless-pruning oracle — the two-pass planner's headline
//! guarantee: over arbitrary planted corpora, every scorer (`s1..s4`)
//! and every expensive estimator (`pm1`, `qn`, `dcor`), the two-pass
//! plan answers every top-k query **bit-identical** to the exhaustive
//! plan at every thread count in the tier-1 acceptance set — while
//! never invoking the expensive estimator on more candidates.
//!
//! A second, independent check replays the planner's promotion fixed
//! point from the public API alone: cheap Pearson CIs (an exhaustive
//! Pearson query at the plan's pruning confidence, mapped through
//! [`sketch_ranking::score_bounds`]) plus per-candidate expensive
//! scores (an exhaustive full-list query with the requested estimator).
//! The replay must agree with the reported [`PlanStats`] on the pruned
//! count, the band size, and the final threshold `τ*` bit-for-bit —
//! and by construction every replayed-pruned candidate's score upper
//! bound sits strictly below `τ*`, i.e. the pruned set genuinely could
//! never reach the k-th best surviving score.

use proptest::prelude::*;
use sketch_datagen::{generate_planted, PlantedConfig};
use sketch_index::plan::kth_largest;
use sketch_index::{engine, PlanMode, QueryOptions, Scorer, SketchIndex};
use sketch_ranking::score_bounds;
use sketch_stats::{CorrelationEstimator, ScoredEstimate};

use correlation_sketches::{CorrelationSketch, SketchBuilder, SketchConfig};

/// Thread counts every comparison must hold at (tier-1 acceptance set).
const THREADS: [usize; 5] = [0, 1, 2, 7, 16];

/// The expensive estimators the planner is pointed at: the two with a
/// Pearson surrogate (pruning engages) and `dcor` (no surrogate — the
/// planner must fall back to exhaustive and still answer identically).
fn arb_estimator() -> impl Strategy<Value = CorrelationEstimator> {
    prop_oneof![
        Just(CorrelationEstimator::Pm1Bootstrap { seed: 0x5eed }),
        Just(CorrelationEstimator::Qn),
        Just(CorrelationEstimator::DistanceCorrelation),
    ]
}

fn arb_scorer() -> impl Strategy<Value = Scorer> {
    prop_oneof![
        Just(Scorer::S1),
        Just(Scorer::S2),
        Just(Scorer::S3),
        Just(Scorer::S4),
    ]
}

struct Case {
    index: SketchIndex,
    queries: Vec<CorrelationSketch>,
}

fn build_case(
    queries: usize,
    seed: u64,
    true_n: usize,
    noise: usize,
    traps: usize,
    rows: usize,
) -> Case {
    let cfg = PlantedConfig {
        queries,
        true_per_query: true_n,
        noise_per_query: noise,
        traps_per_query: traps,
        rows,
        trap_keys: 8,
        seed,
    };
    let planted = generate_planted(&cfg);
    let builder = SketchBuilder::new(SketchConfig::with_size(128));
    let index = SketchIndex::from_sketches(planted.corpus.iter().map(|p| builder.build(p)))
        .expect("uniform hashers");
    let queries = planted.queries.iter().map(|q| builder.build(q)).collect();
    Case { index, queries }
}

/// What the independent replay of the promotion fixed point concludes.
#[derive(Debug, PartialEq)]
struct Replay {
    pruned: usize,
    band: usize,
    threshold: f64,
}

/// Replay the planner's decisions from the public API alone: the cheap
/// pass is an exhaustive Pearson query at `pass1_confidence`, the
/// expensive scores come from an exhaustive full-list query with the
/// requested estimator (per-candidate for `s1..s3`, so subset-invariant
/// — exactly why `s4` is not prunable). The fixed point is then pure
/// arithmetic over those two result lists.
fn replay_plan(
    case: &Case,
    query: &CorrelationSketch,
    opts: &QueryOptions,
    pass1_confidence: f64,
) -> Replay {
    let full_list = QueryOptions {
        k: opts.overlap_candidates,
        plan: PlanMode::Exhaustive,
        threads: 1,
        ..*opts
    };
    let cheap = engine::top_k_join_correlation(
        &case.index,
        query,
        &QueryOptions {
            estimator: CorrelationEstimator::Pearson,
            confidence: pass1_confidence,
            ..full_list
        },
    );
    let expensive = engine::top_k_join_correlation(&case.index, query, &full_list);

    let effective_min = opts.min_sample.max(opts.estimator.min_samples());
    // Admitted candidates: (score upper/lower bound, expensive score).
    let admitted: Vec<((f64, f64), f64)> = cheap
        .iter()
        .filter(|r| r.sample_size >= effective_min)
        .map(|r| {
            let bounds = match (r.estimate, r.ci_lo, r.ci_hi) {
                (Some(estimate), Some(ci_lo), Some(ci_hi)) => score_bounds(
                    opts.scorer,
                    &ScoredEstimate {
                        estimate,
                        ci_lo,
                        ci_hi,
                        sample_size: r.sample_size,
                    },
                ),
                // The cheap estimator couldn't score it: contested.
                _ => (0.0, f64::INFINITY),
            };
            let score = expensive
                .iter()
                .find(|e| e.doc == r.doc)
                .map_or(0.0, |e| e.score);
            (bounds, score)
        })
        .collect();

    let seed = kth_largest(
        &admitted.iter().map(|((lb, _), _)| *lb).collect::<Vec<_>>(),
        opts.k,
    );
    let mut in_band: Vec<bool> = admitted.iter().map(|((_, ub), _)| *ub >= seed).collect();
    let threshold = loop {
        let band_scores: Vec<f64> = admitted
            .iter()
            .zip(&in_band)
            .filter(|(_, &b)| b)
            .map(|((_, s), _)| *s)
            .collect();
        let tau = kth_largest(&band_scores, opts.k);
        let promote: Vec<usize> = admitted
            .iter()
            .enumerate()
            .filter(|(i, ((_, ub), _))| !in_band[*i] && *ub >= tau)
            .map(|(i, _)| i)
            .collect();
        if promote.is_empty() {
            break tau;
        }
        for i in promote {
            in_band[i] = true;
        }
    };
    // The pruned set's upper bounds are genuinely below `τ*` — the
    // invariant the whole plan rests on.
    for (i, ((_, ub), _)) in admitted.iter().enumerate() {
        if !in_band[i] {
            assert!(
                *ub < threshold,
                "replay pruned a candidate whose bound reaches the threshold"
            );
        }
    }
    let band = in_band.iter().filter(|&&b| b).count();
    Replay {
        pruned: admitted.len() - band,
        band,
        threshold,
    }
}

fn assert_plan_oracle(case: &Case, scorer: Scorer, estimator: CorrelationEstimator) {
    let pass1_confidence = 0.99;
    let base = QueryOptions {
        k: 4,
        overlap_candidates: 100,
        scorer,
        estimator,
        threads: 1,
        ..QueryOptions::default()
    };
    let two = QueryOptions {
        plan: PlanMode::TwoPass {
            confidence: pass1_confidence,
        },
        ..base
    };
    for query in &case.queries {
        let (expected, ex_stats) = engine::top_k_with_plan_stats(&case.index, query, &base);
        let replay = PlanMode::two_pass()
            .pruning_confidence(scorer, estimator)
            .map(|_| replay_plan(case, query, &base, pass1_confidence));
        for threads in THREADS {
            let opts = QueryOptions { threads, ..two };
            let (got, stats) = engine::top_k_with_plan_stats(&case.index, query, &opts);
            assert_eq!(
                got,
                expected,
                "{scorer}/{estimator} threads={threads} query={}: two-pass differs from exhaustive",
                query.id()
            );
            assert!(
                stats.expensive_invocations <= ex_stats.expensive_invocations,
                "{scorer}/{estimator} threads={threads}: {stats:?} vs {ex_stats:?}"
            );
            match &replay {
                Some(replay) => {
                    assert!(stats.two_pass, "{scorer}/{estimator}: {stats:?}");
                    assert_eq!(
                        (stats.pruned, stats.expensive_invocations, stats.threshold),
                        (replay.pruned, replay.band, replay.threshold),
                        "{scorer}/{estimator} threads={threads}: planner disagrees with \
                         the replayed fixed point ({stats:?} vs {replay:?})"
                    );
                }
                None => {
                    assert!(
                        !stats.two_pass && stats.pruned == 0 && stats.cheap_invocations == 0,
                        "{scorer}/{estimator}: must fall back to exhaustive, got {stats:?}"
                    );
                }
            }
        }
    }
}

/// Each case runs a full planted corpus through 6 engine executions
/// plus the replay (hundreds of bootstrap-CI estimator calls), so the
/// local default is lower than the shim's 64; `PROPTEST_CASES` still
/// governs the CI battery exactly as everywhere else.
fn oracle_cases() -> ProptestConfig {
    let cases =
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().ok().filter(|&c| c > 0).unwrap_or_else(|| {
                panic!("invalid PROPTEST_CASES '{v}' (need a positive integer)")
            }),
            Err(_) => 8,
        };
    ProptestConfig::with_cases(cases)
}

proptest! {
    #![proptest_config(oracle_cases())]

    /// The headline property: arbitrary planted corpora, a sampled
    /// scorer (`s1..s4`) × expensive estimator (`pm1`/`qn`/`dcor`)
    /// combo per case — the full grid is covered across cases —
    /// identity at every thread count plus the replayed-fixed-point
    /// agreement. (Each fallback cell of the grid also has its own
    /// deterministic unit test in `engine.rs`; this oracle's job is
    /// the arbitrary-corpus sweep.)
    #[test]
    fn two_pass_matches_exhaustive_everywhere(
        seed in 0u64..1_000_000,
        true_n in 2usize..6,
        noise in 4usize..12,
        traps in 3usize..8,
        rows in 200usize..450,
        scorer in arb_scorer(),
        estimator in arb_estimator(),
    ) {
        let case = build_case(1, seed, true_n, noise, traps, rows);
        assert_plan_oracle(&case, scorer, estimator);
    }
}

/// The seeded smoke version of the oracle: one deterministic planted
/// corpus with enough strong partners (`true_per_query > k`) that the
/// band seed is high and pruning demonstrably engages — so a regression
/// that silently disables pruning cannot pass, and the savings are real.
#[test]
fn two_pass_prunes_on_the_seeded_planted_corpus() {
    let case = build_case(2, 42, 5, 40, 10, 800);
    let base = QueryOptions {
        k: 3,
        overlap_candidates: 100,
        scorer: Scorer::S2,
        estimator: CorrelationEstimator::Qn,
        ..QueryOptions::default()
    };
    let two = QueryOptions {
        plan: PlanMode::two_pass(),
        ..base
    };
    let mut total_pruned = 0usize;
    for query in &case.queries {
        let (expected, ex_stats) = engine::top_k_with_plan_stats(&case.index, query, &base);
        let (got, stats) = engine::top_k_with_plan_stats(&case.index, query, &two);
        assert_eq!(got, expected, "query {}", query.id());
        assert!(stats.two_pass);
        assert!(
            stats.expensive_invocations < ex_stats.expensive_invocations,
            "query {}: {stats:?} vs exhaustive {ex_stats:?}",
            query.id()
        );
        total_pruned += stats.pruned;
    }
    assert!(total_pruned > 0, "the planted corpus must exercise pruning");
}
