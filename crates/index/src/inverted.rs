//! The inverted index over sketch key hashes, incrementally maintained
//! under inserts and removes.
//!
//! # Doc ids under mutation
//!
//! A [`DocId`] is the sketch's position in the **live corpus order** —
//! surviving inserts in insertion order. Removing a sketch therefore
//! shifts the doc ids of everything inserted after it down by one, which
//! is exactly how a from-scratch rebuild over the surviving sketches
//! would number them. This is the index's central equivalence contract:
//! after *any* interleaving of inserts and removes, the index is
//! bit-identical — doc ids, tie-breaks, query reports — to
//! [`SketchIndex::from_sketches`] over the surviving sketches in
//! insertion order (and to [`SketchIndex::from_store`] over a store that
//! replayed the same log). Because ids shift, removal is keyed by the
//! stable sketch id string, not by doc id.
//!
//! Internally the index never renumbers anything: sketches live in
//! append-only *slots*, posting lists hold slot numbers, and a sorted
//! slot→doc translation (`live`) is maintained at the edges. Removal
//! incrementally unthreads the sketch from its posting lists
//! (`O(sketch size · posting length)`) rather than rebuilding.

use std::collections::HashMap;

use correlation_sketches::{CorrelationSketch, DeltaRecord, SketchError};
use sketch_hashing::{KeyHash, TupleHasher};

/// Identifier of an indexed sketch: its position in the live corpus
/// order. Dense (`0..len`), shifts down on removal of an earlier sketch —
/// see the module docs for the equivalence contract this buys.
pub type DocId = u32;

/// In-memory inverted index: `h(k) → [sketches containing k]`.
///
/// Insertion is `O(sketch size)`; removal is `O(sketch size · posting
/// length)`; retrieval of overlap candidates is `O(Σ posting-list
/// lengths)` over the query sketch's keys — the same set-overlap-search
/// shape as the Lucene index the paper used.
///
/// ```
/// use correlation_sketches::{SketchBuilder, SketchConfig};
/// use sketch_index::SketchIndex;
/// use sketch_table::ColumnPair;
///
/// let builder = SketchBuilder::new(SketchConfig::with_size(64));
/// let pair = |t: &str| ColumnPair::new(
///     t, "k", "v",
///     (0..100).map(|i| format!("key-{i}")).collect(),
///     (0..100).map(f64::from).collect(),
/// );
/// let mut index = SketchIndex::new();
/// index.insert(builder.build(&pair("a"))).unwrap();
/// index.insert(builder.build(&pair("b"))).unwrap();
///
/// let query = builder.build(&pair("q"));
/// let hits = index.overlap_candidates(&query, 10);
/// assert_eq!(hits.len(), 2); // both corpus sketches share all keys
///
/// index.remove("a/k/v");
/// assert_eq!(index.len(), 1);
/// assert_eq!(index.get(0).unwrap().id(), "b/k/v"); // doc ids shifted
/// ```
#[derive(Debug, Default, Clone)]
pub struct SketchIndex {
    hasher: Option<TupleHasher>,
    /// Append-only insertion log; removed slots are `None`.
    slots: Vec<Option<CorrelationSketch>>,
    /// Live slots in ascending (= insertion) order; a [`DocId`] is a
    /// position in this vector.
    live: Vec<u32>,
    /// Live sketch id → slot. On duplicate ids the latest insert wins
    /// (ids are unique in any store-backed corpus; see [`Self::insert`]).
    by_id: HashMap<String, u32>,
    /// Posting lists of slot numbers, incrementally maintained: removal
    /// unthreads the slot from every list its sketch appears in.
    postings: HashMap<KeyHash, Vec<u32>>,
    /// Store generation this index has applied (see
    /// [`Self::refresh_from_store`]). `0` for indices not built from a
    /// store.
    generation: u64,
}

impl SketchIndex {
    /// Empty index; the hasher configuration is pinned by the first
    /// inserted sketch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live sketches.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when no live sketches remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Number of distinct hashed keys with non-empty posting lists.
    #[must_use]
    pub fn distinct_keys(&self) -> usize {
        self.postings.len()
    }

    /// The store generation this index has applied — advanced by
    /// [`Self::from_store`] and [`Self::refresh_from_store`], `0` for
    /// indices built in memory.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Look up a live indexed sketch by doc id (`None` past the end).
    #[must_use]
    pub fn get(&self, doc: DocId) -> Option<&CorrelationSketch> {
        let &slot = self.live.get(doc as usize)?;
        self.slots[slot as usize].as_ref()
    }

    /// The current doc id of the live sketch with this id, if any.
    #[must_use]
    pub fn doc_for_id(&self, id: &str) -> Option<DocId> {
        let &slot = self.by_id.get(id)?;
        let doc = self.live.partition_point(|&s| s < slot);
        debug_assert_eq!(self.live[doc], slot);
        Some(doc as DocId)
    }

    /// Insert a sketch, returning its doc id (always `len() - 1`: new
    /// sketches enter at the end of the live order).
    ///
    /// Sketch ids are not required to be unique here (a JSON corpus may
    /// legitimately repeat column ids), but [`Self::remove`] and
    /// [`Self::apply_delta`] resolve ids to the *latest* insert; corpora
    /// read from a `sketch-store` directory are always id-unique.
    ///
    /// # Errors
    ///
    /// [`SketchError::HasherMismatch`] when the sketch was built with a
    /// different hasher configuration than the index's existing content.
    pub fn insert(&mut self, sketch: CorrelationSketch) -> Result<DocId, SketchError> {
        match self.hasher {
            Some(h) if h != sketch.hasher() => return Err(SketchError::HasherMismatch),
            None => self.hasher = Some(sketch.hasher()),
            _ => {}
        }
        let slot = u32::try_from(self.slots.len()).expect("fewer than 2^32 inserts");
        for e in sketch.entries() {
            self.postings.entry(e.key).or_default().push(slot);
        }
        self.by_id.insert(sketch.id().to_string(), slot);
        self.live.push(slot);
        self.slots.push(Some(sketch));
        Ok((self.live.len() - 1) as DocId)
    }

    /// Remove the live sketch with this id, incrementally unthreading it
    /// from every posting list it appears in. Doc ids of later sketches
    /// shift down by one — the index stays bit-equivalent to a rebuild
    /// over the survivors. Returns `false` for ids that are not live.
    pub fn remove(&mut self, id: &str) -> bool {
        let Some(slot) = self.by_id.remove(id) else {
            return false;
        };
        let sketch = self.slots[slot as usize]
            .take()
            .expect("by_id only maps live slots");
        for e in sketch.entries() {
            if let std::collections::hash_map::Entry::Occupied(mut list) =
                self.postings.entry(e.key)
            {
                list.get_mut().retain(|&s| s != slot);
                if list.get().is_empty() {
                    list.remove();
                }
            }
        }
        let doc = self.live.partition_point(|&s| s < slot);
        debug_assert_eq!(self.live[doc], slot);
        self.live.remove(doc);
        true
    }

    /// Apply one run of corpus delta records (appends and tombstones) in
    /// log order — the in-memory half of the store's
    /// [`sketch_store::append_corpus`] / [`sketch_store::remove_from_corpus`]
    /// write paths.
    ///
    /// # Errors
    ///
    /// [`SketchError::DuplicateId`] when an appended id is already live,
    /// [`SketchError::TombstoneForUnknownId`] when a tombstone names an
    /// id that is not, [`SketchError::HasherMismatch`] on an incompatible
    /// append — the same validation the store's read path applies, so a
    /// delta the store accepts always applies cleanly. On error the index
    /// may have applied a prefix of `records`; rebuild it from the store.
    pub fn apply_delta(&mut self, records: &[DeltaRecord]) -> Result<(), SketchError> {
        for record in records {
            match record {
                DeltaRecord::Sketch(s) => {
                    if self.by_id.contains_key(s.id()) {
                        return Err(SketchError::DuplicateId(s.id().to_string()));
                    }
                    self.insert(s.clone())?;
                }
                DeltaRecord::Tombstone(id) => {
                    if !self.remove(id) {
                        return Err(SketchError::TombstoneForUnknownId(id.clone()));
                    }
                }
            }
        }
        Ok(())
    }

    /// Build an index from a sequence of sketches; doc ids follow the
    /// iteration order.
    ///
    /// # Errors
    ///
    /// [`SketchError::HasherMismatch`] when the sketches disagree on
    /// hasher configuration.
    pub fn from_sketches(
        sketches: impl IntoIterator<Item = CorrelationSketch>,
    ) -> Result<Self, SketchError> {
        let mut index = Self::new();
        for s in sketches {
            index.insert(s)?;
        }
        Ok(index)
    }

    /// Build the inverted index directly from a binary corpus store
    /// (`sketch-store` shards + manifest), loading shards with up to
    /// `threads` workers and replaying any delta shards. Doc ids follow
    /// the store's live order, so an index built this way is
    /// interchangeable with one maintained incrementally through the
    /// same log of inserts and removes.
    ///
    /// # Errors
    ///
    /// [`sketch_store::StoreError`] on I/O failure or any typed
    /// corruption (bad magic/version, truncation, checksum mismatch,
    /// duplicate ids, stale generations, hasher mismatch).
    pub fn from_store(
        dir: impl AsRef<std::path::Path>,
        threads: usize,
    ) -> Result<Self, sketch_store::StoreError> {
        let (manifest, sketches) = sketch_store::read_corpus_with_manifest(dir.as_ref(), threads)?;
        let mut index = Self::from_sketches(sketches).map_err(sketch_store::StoreError::from)?;
        index.generation = manifest.generation;
        Ok(index)
    }

    /// Catch up with a store this index was built from, applying only the
    /// delta generations newer than [`Self::generation`] — no base shard
    /// is re-read. Returns the number of delta records applied (`0` when
    /// already current).
    ///
    /// # Errors
    ///
    /// [`SketchError::StaleGeneration`] (wrapped in
    /// [`sketch_store::StoreError::Sketch`]) when the store was compacted
    /// past this index's generation — the deltas it would need are gone,
    /// so it must be rebuilt with [`Self::from_store`]; otherwise the
    /// store's usual typed I/O and corruption errors. On error the index
    /// is unchanged unless a delta shard itself was inconsistent with the
    /// index (which [`Self::apply_delta`] reports typed).
    pub fn refresh_from_store(
        &mut self,
        dir: impl AsRef<std::path::Path>,
        threads: usize,
    ) -> Result<usize, sketch_store::StoreError> {
        let (manifest, records) =
            sketch_store::read_deltas_since(dir.as_ref(), self.generation, threads)?;
        self.apply_delta(&records)
            .map_err(sketch_store::StoreError::from)?;
        self.generation = manifest.generation;
        Ok(records.len())
    }

    /// Reclaim the memory of removed sketches by renumbering slots
    /// densely — the in-memory sibling of `sketch_store::compact_corpus`.
    ///
    /// Slots are append-only, so under sustained remove/insert churn the
    /// slot space (and the per-query overlap counter sized to it) grows
    /// with the *historical* insert count rather than the live size;
    /// long-lived indices should call this periodically. Queries are
    /// unaffected: the live order, doc ids, and every report are
    /// bit-identical before and after (the equivalence contract in the
    /// module docs), and [`Self::generation`] is preserved.
    pub fn compact(&mut self) {
        let generation = self.generation;
        let live: Vec<CorrelationSketch> = self
            .live
            .iter()
            .map(|&slot| {
                self.slots[slot as usize]
                    .take()
                    .expect("live only lists occupied slots")
            })
            .collect();
        *self = Self::from_sketches(live).expect("live sketches share one hasher");
        self.generation = generation;
    }

    /// Retrieve the `top_n` indexed sketches with the largest key overlap
    /// with `query`, as `(doc, overlap)` pairs sorted by descending
    /// overlap. Ties — including ties exactly at the `top_n` truncation
    /// boundary — break by ascending *sketch id*, which is stable across
    /// insertion orders, so the retrieved set never depends on the order
    /// the corpus was built in or on selection-heap internals (doc id is
    /// the final tie-break, reachable only through duplicate ids in a
    /// JSON corpus). Documents with zero overlap are never returned.
    ///
    /// Slots are dense, so overlap counts accumulate into a flat
    /// `Vec<u32>` indexed by slot — one cache-friendly increment per
    /// posting, no hashing — and the winners are picked with a bounded
    /// heap (`O(docs · log top_n)`) instead of a full sort. Removed
    /// sketches are already absent from every posting list, so no
    /// liveness filtering happens in the hot loop.
    #[must_use]
    pub fn overlap_candidates(
        &self,
        query: &CorrelationSketch,
        top_n: usize,
    ) -> Vec<(DocId, usize)> {
        self.overlap_candidates_with_scratch(query, top_n, &mut Vec::new())
    }

    /// As [`Self::overlap_candidates`], accumulating counts into a
    /// caller-owned scratch buffer. Batch query paths issue thousands of
    /// retrievals; reusing one counter array per worker amortizes the
    /// per-query allocation away. `scratch` is cleared and re-zeroed
    /// here, so the results are identical to the allocating variant.
    #[must_use]
    pub fn overlap_candidates_with_scratch(
        &self,
        query: &CorrelationSketch,
        top_n: usize,
        scratch: &mut Vec<u32>,
    ) -> Vec<(DocId, usize)> {
        if top_n == 0 || self.live.is_empty() {
            return Vec::new();
        }
        scratch.clear();
        scratch.resize(self.slots.len(), 0);
        let counts = scratch;
        for e in query.entries() {
            if let Some(list) = self.postings.get(&e.key) {
                for &slot in list {
                    counts[slot as usize] += 1;
                }
            }
        }
        let hits = self
            .live
            .iter()
            .enumerate()
            .filter(|&(_, &slot)| counts[slot as usize] > 0)
            .map(|(doc, &slot)| (doc as DocId, counts[slot as usize] as usize));
        crate::select::top_k_by(hits, top_n, |a, b| {
            b.1.cmp(&a.1)
                .then_with(|| self.tie_break_id(a.0).cmp(self.tie_break_id(b.0)))
                .then(a.0.cmp(&b.0))
        })
    }

    /// The sketch id used to break retrieval ties; live docs always
    /// resolve (the empty-string fallback keeps the comparator total).
    fn tie_break_id(&self, doc: DocId) -> &str {
        self.get(doc).map_or("", CorrelationSketch::id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use correlation_sketches::{SketchBuilder, SketchConfig};
    use sketch_table::ColumnPair;

    fn pair(table: &str, range: std::ops::Range<usize>) -> ColumnPair {
        ColumnPair::new(
            table,
            "k",
            "v",
            range.clone().map(|i| format!("key-{i}")).collect(),
            range.map(|i| i as f64).collect(),
        )
    }

    fn builder() -> SketchBuilder {
        SketchBuilder::new(SketchConfig::with_size(128))
    }

    #[test]
    fn insert_and_get() {
        let mut idx = SketchIndex::new();
        let s = builder().build(&pair("a", 0..100));
        let doc = idx.insert(s.clone()).unwrap();
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.get(doc).unwrap().id(), "a/k/v");
        assert_eq!(idx.doc_for_id("a/k/v"), Some(doc));
        assert!(idx.get(99).is_none());
        assert!(idx.doc_for_id("nope").is_none());
        assert!(idx.distinct_keys() > 0);
        assert_eq!(idx.generation(), 0);
    }

    #[test]
    fn overlap_candidates_ranked_by_true_overlap() {
        let mut idx = SketchIndex::new();
        let b = builder();
        // Three corpus sketches with decreasing overlap with 0..100.
        idx.insert(b.build(&pair("full", 0..100))).unwrap();
        idx.insert(b.build(&pair("half", 50..150))).unwrap();
        idx.insert(b.build(&pair("none", 1000..1100))).unwrap();

        let q = b.build(&pair("q", 0..100));
        let hits = idx.overlap_candidates(&q, 10);
        assert_eq!(hits.len(), 2, "zero-overlap docs must be excluded");
        assert_eq!(hits[0].0, 0);
        assert_eq!(hits[1].0, 1);
        assert!(hits[0].1 > hits[1].1);
    }

    #[test]
    fn top_n_truncates() {
        let mut idx = SketchIndex::new();
        let b = builder();
        for t in 0..20 {
            idx.insert(b.build(&pair(&format!("t{t}"), 0..50))).unwrap();
        }
        let q = b.build(&pair("q", 0..50));
        assert_eq!(idx.overlap_candidates(&q, 5).len(), 5);
        assert_eq!(idx.overlap_candidates(&q, 0).len(), 0);
    }

    #[test]
    fn hasher_mismatch_rejected() {
        use sketch_hashing::TupleHasher;
        let mut idx = SketchIndex::new();
        idx.insert(builder().build(&pair("a", 0..10))).unwrap();
        let other = SketchBuilder::new(SketchConfig::with_size(128).hasher(TupleHasher::new_64(9)))
            .build(&pair("b", 0..10));
        assert_eq!(idx.insert(other), Err(SketchError::HasherMismatch));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = SketchIndex::new();
        let q = builder().build(&pair("q", 0..10));
        assert!(idx.overlap_candidates(&q, 10).is_empty());
        assert!(idx.is_empty());
    }

    #[test]
    fn removed_documents_disappear_and_doc_ids_stay_dense() {
        let mut idx = SketchIndex::new();
        let b = builder();
        idx.insert(b.build(&pair("a", 0..100))).unwrap();
        idx.insert(b.build(&pair("b", 0..100))).unwrap();
        assert_eq!(idx.len(), 2);

        assert!(idx.remove("a/k/v"));
        assert!(!idx.remove("a/k/v"), "double delete is a no-op");
        assert!(!idx.remove("zzz/k/v"), "unknown id rejected");
        assert_eq!(idx.len(), 1);
        // Doc ids shift down: the survivor is now doc 0, exactly as a
        // rebuild over the survivors would number it.
        assert_eq!(idx.get(0).unwrap().id(), "b/k/v");
        assert!(idx.get(1).is_none());
        assert_eq!(idx.doc_for_id("b/k/v"), Some(0));

        let q = b.build(&pair("q", 0..100));
        let hits = idx.overlap_candidates(&q, 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 0);

        // New inserts enter at the end of the live order.
        let d2 = idx.insert(b.build(&pair("c", 0..100))).unwrap();
        assert_eq!(d2, 1);
        assert_eq!(idx.get(d2).unwrap().id(), "c/k/v");
    }

    /// The equivalence contract: any interleaving of inserts and removes
    /// leaves the index identical — doc ids included — to a rebuild over
    /// the survivors in insertion order.
    #[test]
    fn mutated_index_equals_rebuild_over_survivors() {
        let b = builder();
        let mut idx = SketchIndex::new();
        let mut survivors: Vec<CorrelationSketch> = Vec::new();
        for t in 0..30 {
            let s = b.build(&pair(&format!("t{t}"), (t * 2)..(t * 2 + 60)));
            idx.insert(s.clone()).unwrap();
            survivors.push(s);
        }
        for t in [0usize, 3, 4, 11, 29] {
            assert!(idx.remove(&format!("t{t}/k/v")));
            survivors.retain(|s| s.id() != format!("t{t}/k/v"));
        }
        // Interleave: one more insert after the removes.
        let late = b.build(&pair("late", 0..60));
        idx.insert(late.clone()).unwrap();
        survivors.push(late);

        let rebuilt = SketchIndex::from_sketches(survivors).unwrap();
        assert_eq!(idx.len(), rebuilt.len());
        assert_eq!(idx.distinct_keys(), rebuilt.distinct_keys());
        for doc in 0..idx.len() as DocId {
            assert_eq!(idx.get(doc).unwrap(), rebuilt.get(doc).unwrap(), "{doc}");
        }
        let q = b.build(&pair("q", 0..60));
        assert_eq!(
            idx.overlap_candidates(&q, 8),
            rebuilt.overlap_candidates(&q, 8)
        );
    }

    #[test]
    fn apply_delta_validates_like_the_store() {
        let b = builder();
        let mut idx = SketchIndex::new();
        idx.insert(b.build(&pair("a", 0..50))).unwrap();

        // A valid delta: append then tombstone.
        idx.apply_delta(&[
            DeltaRecord::Sketch(b.build(&pair("c", 0..50))),
            DeltaRecord::Tombstone("a/k/v".into()),
        ])
        .unwrap();
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.get(0).unwrap().id(), "c/k/v");

        // Appending a live id is a typed duplicate.
        let err = idx
            .apply_delta(&[DeltaRecord::Sketch(b.build(&pair("c", 0..50)))])
            .unwrap_err();
        assert!(matches!(err, SketchError::DuplicateId(id) if id == "c/k/v"));

        // Tombstoning a non-live id is typed too.
        let err = idx
            .apply_delta(&[DeltaRecord::Tombstone("a/k/v".into())])
            .unwrap_err();
        assert!(matches!(err, SketchError::TombstoneForUnknownId(id) if id == "a/k/v"));

        // Tombstone-then-re-append revives an id at the end.
        idx.apply_delta(&[
            DeltaRecord::Tombstone("c/k/v".into()),
            DeltaRecord::Sketch(b.build(&pair("c", 10..60))),
        ])
        .unwrap();
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.get(0).unwrap().id(), "c/k/v");
    }

    #[test]
    fn in_memory_compact_preserves_answers_and_doc_ids() {
        let b = builder();
        let mut idx = SketchIndex::new();
        // Churn: insert 20, remove half interleaved, insert 5 more.
        for t in 0..20 {
            idx.insert(b.build(&pair(&format!("t{t}"), (t * 3)..(t * 3 + 50))))
                .unwrap();
        }
        for t in [1usize, 2, 5, 8, 9, 13, 14, 15, 16, 19] {
            assert!(idx.remove(&format!("t{t}/k/v")));
        }
        for t in 20..25 {
            idx.insert(b.build(&pair(&format!("t{t}"), (t * 3)..(t * 3 + 50))))
                .unwrap();
        }
        let q = b.build(&pair("q", 0..80));
        let before_hits = idx.overlap_candidates(&q, 10);
        let before: Vec<(DocId, String)> = (0..idx.len() as DocId)
            .map(|d| (d, idx.get(d).unwrap().id().to_string()))
            .collect();

        idx.compact();
        assert_eq!(idx.len(), 15);
        let after: Vec<(DocId, String)> = (0..idx.len() as DocId)
            .map(|d| (d, idx.get(d).unwrap().id().to_string()))
            .collect();
        assert_eq!(before, after, "doc ids must survive compaction");
        assert_eq!(idx.overlap_candidates(&q, 10), before_hits);

        // Post-compact mutation keeps working and stays dense.
        let d = idx.insert(b.build(&pair("post", 0..50))).unwrap();
        assert_eq!(d, 15);
        assert!(idx.remove("post/k/v"));
    }

    #[test]
    fn removing_everything_empties_the_index() {
        let mut idx = SketchIndex::new();
        let b = builder();
        idx.insert(b.build(&pair("a", 0..10))).unwrap();
        idx.remove("a/k/v");
        assert!(idx.is_empty());
        assert_eq!(idx.distinct_keys(), 0, "posting lists fully unthreaded");
        let q = b.build(&pair("q", 0..10));
        assert!(idx.overlap_candidates(&q, 10).is_empty());
    }

    #[test]
    fn ties_break_by_sketch_id_not_insertion_order() {
        // Two sketches with identical key sets, inserted in *reverse* id
        // order: the tie must still resolve to the lexicographically
        // smaller id, not to whichever was inserted first.
        let mut idx = SketchIndex::new();
        let b = builder();
        idx.insert(b.build(&pair("t2", 0..60))).unwrap();
        idx.insert(b.build(&pair("t1", 0..60))).unwrap();
        let q = b.build(&pair("q", 0..60));
        let hits = idx.overlap_candidates(&q, 10);
        assert_eq!(hits[0].1, hits[1].1, "both must tie on overlap");
        assert_eq!(idx.get(hits[0].0).unwrap().id(), "t1/k/v");
        assert_eq!(idx.get(hits[1].0).unwrap().id(), "t2/k/v");
    }

    /// The truncation-boundary contract: when more candidates tie on
    /// overlap than `top_n` admits, the retrieved *set* is the same for
    /// every insertion order of the corpus.
    #[test]
    fn truncation_boundary_is_insertion_order_independent() {
        let b = builder();
        // Eight sketches with identical keys (all tie on overlap), ids
        // t0..t7; top_n = 3 cuts through the tie group.
        let names: Vec<String> = (0..8).map(|t| format!("t{t}")).collect();
        let q = b.build(&pair("q", 0..60));
        let mut expected: Option<Vec<(String, usize)>> = None;
        // Several deterministic permutations of the insertion order.
        for rot in 0..names.len() {
            let mut order = names.clone();
            order.rotate_left(rot);
            if rot % 2 == 1 {
                order.reverse();
            }
            let mut idx = SketchIndex::new();
            for name in &order {
                idx.insert(b.build(&pair(name, 0..60))).unwrap();
            }
            let hits: Vec<(String, usize)> = idx
                .overlap_candidates(&q, 3)
                .into_iter()
                .map(|(doc, ov)| (idx.get(doc).unwrap().id().to_string(), ov))
                .collect();
            assert_eq!(hits.len(), 3);
            match &expected {
                None => expected = Some(hits),
                Some(want) => assert_eq!(&hits, want, "insertion order {order:?}"),
            }
        }
        // And the winners are the lexicographically smallest ids.
        let ids: Vec<&str> = expected
            .as_ref()
            .unwrap()
            .iter()
            .map(|(id, _)| id.as_str())
            .collect();
        assert_eq!(ids, vec!["t0/k/v", "t1/k/v", "t2/k/v"]);
    }
}
