//! The inverted index over sketch key hashes.

use std::collections::HashMap;

use correlation_sketches::{CorrelationSketch, SketchError};
use sketch_hashing::{KeyHash, TupleHasher};

/// Identifier of an indexed sketch (dense, assigned at insertion).
pub type DocId = u32;

/// In-memory inverted index: `h(k) → [sketches containing k]`.
///
/// Insertion is `O(sketch size)`; retrieval of overlap candidates is
/// `O(Σ posting-list lengths)` over the query sketch's keys — the same
/// set-overlap-search shape as the Lucene index the paper used.
///
/// ```
/// use correlation_sketches::{SketchBuilder, SketchConfig};
/// use sketch_index::SketchIndex;
/// use sketch_table::ColumnPair;
///
/// let builder = SketchBuilder::new(SketchConfig::with_size(64));
/// let pair = |t: &str| ColumnPair::new(
///     t, "k", "v",
///     (0..100).map(|i| format!("key-{i}")).collect(),
///     (0..100).map(f64::from).collect(),
/// );
/// let mut index = SketchIndex::new();
/// index.insert(builder.build(&pair("a"))).unwrap();
/// index.insert(builder.build(&pair("b"))).unwrap();
///
/// let query = builder.build(&pair("q"));
/// let hits = index.overlap_candidates(&query, 10);
/// assert_eq!(hits.len(), 2); // both corpus sketches share all keys
/// ```
#[derive(Debug, Default)]
pub struct SketchIndex {
    hasher: Option<TupleHasher>,
    sketches: Vec<CorrelationSketch>,
    postings: HashMap<KeyHash, Vec<DocId>>,
    /// Tombstoned documents: kept in `sketches` (doc ids stay stable) but
    /// excluded from retrieval. Posting lists are cleaned lazily.
    deleted: std::collections::HashSet<DocId>,
}

impl SketchIndex {
    /// Empty index; the hasher configuration is pinned by the first
    /// inserted sketch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live (non-deleted) sketches.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sketches.len() - self.deleted.len()
    }

    /// True when no live sketches remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct hashed keys with posting lists.
    #[must_use]
    pub fn distinct_keys(&self) -> usize {
        self.postings.len()
    }

    /// Look up a live indexed sketch (`None` for unknown or deleted ids).
    #[must_use]
    pub fn get(&self, doc: DocId) -> Option<&CorrelationSketch> {
        if self.deleted.contains(&doc) {
            return None;
        }
        self.sketches.get(doc as usize)
    }

    /// Tombstone a document: it disappears from retrieval immediately
    /// (posting lists are cleaned lazily on traversal). Returns `false`
    /// for unknown or already-deleted ids.
    pub fn remove(&mut self, doc: DocId) -> bool {
        if (doc as usize) < self.sketches.len() && !self.deleted.contains(&doc) {
            self.deleted.insert(doc);
            true
        } else {
            false
        }
    }

    /// All stored sketches in insertion order, *including* tombstoned
    /// ones (doc ids are positions in this slice; use [`Self::get`] for
    /// liveness-aware lookup).
    #[must_use]
    pub fn sketches(&self) -> &[CorrelationSketch] {
        &self.sketches
    }

    /// Insert a sketch, returning its document id.
    ///
    /// # Errors
    ///
    /// [`SketchError::HasherMismatch`] when the sketch was built with a
    /// different hasher configuration than the index's existing content.
    pub fn insert(&mut self, sketch: CorrelationSketch) -> Result<DocId, SketchError> {
        match self.hasher {
            Some(h) if h != sketch.hasher() => return Err(SketchError::HasherMismatch),
            None => self.hasher = Some(sketch.hasher()),
            _ => {}
        }
        let doc = DocId::try_from(self.sketches.len()).expect("fewer than 2^32 sketches");
        for e in sketch.entries() {
            self.postings.entry(e.key).or_default().push(doc);
        }
        self.sketches.push(sketch);
        Ok(doc)
    }

    /// Build an index from a sequence of sketches; doc ids follow the
    /// iteration order.
    ///
    /// # Errors
    ///
    /// [`SketchError::HasherMismatch`] when the sketches disagree on
    /// hasher configuration.
    pub fn from_sketches(
        sketches: impl IntoIterator<Item = CorrelationSketch>,
    ) -> Result<Self, SketchError> {
        let mut index = Self::new();
        for s in sketches {
            index.insert(s)?;
        }
        Ok(index)
    }

    /// Build the inverted index directly from a packed binary corpus
    /// store (`sketch-store` shards + manifest), loading shards with up
    /// to `threads` workers. Doc ids follow the corpus pack order, so an
    /// index built this way is interchangeable with one built by
    /// inserting the original sketches in input order.
    ///
    /// # Errors
    ///
    /// [`sketch_store::StoreError`] on I/O failure or any typed
    /// corruption (bad magic/version, truncation, checksum mismatch,
    /// duplicate ids, hasher mismatch).
    pub fn from_store(
        dir: impl AsRef<std::path::Path>,
        threads: usize,
    ) -> Result<Self, sketch_store::StoreError> {
        let sketches = sketch_store::read_corpus(dir.as_ref(), threads)?;
        Self::from_sketches(sketches).map_err(sketch_store::StoreError::from)
    }

    /// Retrieve the `top_n` indexed sketches with the largest key overlap
    /// with `query`, as `(doc, overlap)` pairs sorted by descending
    /// overlap (ties by ascending doc id for determinism). Documents with
    /// zero overlap are never returned.
    ///
    /// Doc ids are dense, so overlap counts accumulate into a flat
    /// `Vec<u32>` indexed by doc id — one cache-friendly increment per
    /// posting, no hashing — and the winners are picked with a bounded
    /// heap (`O(docs · log top_n)`) instead of a full sort. Tombstoned
    /// documents are skipped once at selection time rather than per
    /// posting.
    #[must_use]
    pub fn overlap_candidates(
        &self,
        query: &CorrelationSketch,
        top_n: usize,
    ) -> Vec<(DocId, usize)> {
        self.overlap_candidates_with_scratch(query, top_n, &mut Vec::new())
    }

    /// As [`Self::overlap_candidates`], accumulating counts into a
    /// caller-owned scratch buffer. Batch query paths issue thousands of
    /// retrievals; reusing one counter array per worker amortizes the
    /// per-query allocation away. `scratch` is cleared and re-zeroed
    /// here, so the results are identical to the allocating variant.
    #[must_use]
    pub fn overlap_candidates_with_scratch(
        &self,
        query: &CorrelationSketch,
        top_n: usize,
        scratch: &mut Vec<u32>,
    ) -> Vec<(DocId, usize)> {
        if top_n == 0 || self.is_empty() {
            return Vec::new();
        }
        scratch.clear();
        scratch.resize(self.sketches.len(), 0);
        let counts = scratch;
        for e in query.entries() {
            if let Some(list) = self.postings.get(&e.key) {
                for &doc in list {
                    counts[doc as usize] += 1;
                }
            }
        }
        let hits = counts
            .iter()
            .enumerate()
            .filter(|&(doc, &count)| count > 0 && !self.deleted.contains(&(doc as DocId)))
            .map(|(doc, &count)| (doc as DocId, count as usize));
        crate::select::top_k_by(hits, top_n, |a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use correlation_sketches::{SketchBuilder, SketchConfig};
    use sketch_table::ColumnPair;

    fn pair(table: &str, range: std::ops::Range<usize>) -> ColumnPair {
        ColumnPair::new(
            table,
            "k",
            "v",
            range.clone().map(|i| format!("key-{i}")).collect(),
            range.map(|i| i as f64).collect(),
        )
    }

    fn builder() -> SketchBuilder {
        SketchBuilder::new(SketchConfig::with_size(128))
    }

    #[test]
    fn insert_and_get() {
        let mut idx = SketchIndex::new();
        let s = builder().build(&pair("a", 0..100));
        let doc = idx.insert(s.clone()).unwrap();
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.get(doc).unwrap().id(), "a/k/v");
        assert!(idx.get(99).is_none());
        assert!(idx.distinct_keys() > 0);
    }

    #[test]
    fn overlap_candidates_ranked_by_true_overlap() {
        let mut idx = SketchIndex::new();
        let b = builder();
        // Three corpus sketches with decreasing overlap with 0..100.
        idx.insert(b.build(&pair("full", 0..100))).unwrap();
        idx.insert(b.build(&pair("half", 50..150))).unwrap();
        idx.insert(b.build(&pair("none", 1000..1100))).unwrap();

        let q = b.build(&pair("q", 0..100));
        let hits = idx.overlap_candidates(&q, 10);
        assert_eq!(hits.len(), 2, "zero-overlap docs must be excluded");
        assert_eq!(hits[0].0, 0);
        assert_eq!(hits[1].0, 1);
        assert!(hits[0].1 > hits[1].1);
    }

    #[test]
    fn top_n_truncates() {
        let mut idx = SketchIndex::new();
        let b = builder();
        for t in 0..20 {
            idx.insert(b.build(&pair(&format!("t{t}"), 0..50))).unwrap();
        }
        let q = b.build(&pair("q", 0..50));
        assert_eq!(idx.overlap_candidates(&q, 5).len(), 5);
        assert_eq!(idx.overlap_candidates(&q, 0).len(), 0);
    }

    #[test]
    fn hasher_mismatch_rejected() {
        use sketch_hashing::TupleHasher;
        let mut idx = SketchIndex::new();
        idx.insert(builder().build(&pair("a", 0..10))).unwrap();
        let other = SketchBuilder::new(SketchConfig::with_size(128).hasher(TupleHasher::new_64(9)))
            .build(&pair("b", 0..10));
        assert_eq!(idx.insert(other), Err(SketchError::HasherMismatch));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = SketchIndex::new();
        let q = builder().build(&pair("q", 0..10));
        assert!(idx.overlap_candidates(&q, 10).is_empty());
        assert!(idx.is_empty());
    }

    #[test]
    fn removed_documents_disappear_from_retrieval() {
        let mut idx = SketchIndex::new();
        let b = builder();
        let d0 = idx.insert(b.build(&pair("a", 0..100))).unwrap();
        let d1 = idx.insert(b.build(&pair("b", 0..100))).unwrap();
        assert_eq!(idx.len(), 2);

        assert!(idx.remove(d0));
        assert!(!idx.remove(d0), "double delete is a no-op");
        assert!(!idx.remove(99), "unknown id rejected");
        assert_eq!(idx.len(), 1);
        assert!(idx.get(d0).is_none());
        assert!(idx.get(d1).is_some());

        let q = b.build(&pair("q", 0..100));
        let hits = idx.overlap_candidates(&q, 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, d1);

        // Doc ids remain stable across deletions.
        let d2 = idx.insert(b.build(&pair("c", 0..100))).unwrap();
        assert_eq!(d2, 2);
        assert_eq!(idx.get(d2).unwrap().id(), "c/k/v");
    }

    #[test]
    fn tombstones_respected_under_bounded_heap_selection() {
        // More live candidates than top_n, with deletions interleaved, so
        // the dense-counter + heap path must both skip tombstones and
        // keep the selection order identical to a full sort.
        let mut idx = SketchIndex::new();
        let b = builder();
        for t in 0..30 {
            // Overlap with the query shrinks as t grows.
            idx.insert(b.build(&pair(&format!("t{t}"), (t * 2)..(t * 2 + 60))))
                .unwrap();
        }
        for doc in [0u32, 3, 4, 11, 29] {
            assert!(idx.remove(doc));
        }
        let q = b.build(&pair("q", 0..60));
        let top_n = 8;
        let hits = idx.overlap_candidates(&q, top_n);
        assert_eq!(hits.len(), top_n);
        // Reference: brute-force overlap over live docs only.
        let mut expected: Vec<(DocId, usize)> = (0..30u32)
            .filter_map(|doc| {
                let s = idx.get(doc)?;
                let overlap = s.entries().iter().filter(|e| q.contains_key(e.key)).count();
                (overlap > 0).then_some((doc, overlap))
            })
            .collect();
        expected.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        expected.truncate(top_n);
        assert_eq!(hits, expected);
        assert!(hits.iter().all(|&(d, _)| ![0, 3, 4, 11, 29].contains(&d)));
    }

    #[test]
    fn removing_everything_empties_the_index() {
        let mut idx = SketchIndex::new();
        let b = builder();
        let d = idx.insert(b.build(&pair("a", 0..10))).unwrap();
        idx.remove(d);
        assert!(idx.is_empty());
        let q = b.build(&pair("q", 0..10));
        assert!(idx.overlap_candidates(&q, 10).is_empty());
    }

    #[test]
    fn ties_break_by_doc_id() {
        let mut idx = SketchIndex::new();
        let b = builder();
        idx.insert(b.build(&pair("t1", 0..60))).unwrap();
        idx.insert(b.build(&pair("t2", 0..60))).unwrap();
        let q = b.build(&pair("q", 0..60));
        let hits = idx.overlap_candidates(&q, 10);
        assert_eq!(hits[0].0, 0);
        assert_eq!(hits[1].0, 1);
        assert_eq!(hits[0].1, hits[1].1);
    }
}
