//! Coordinator-side merge for scatter-gather sharded serving: re-cut
//! the global candidate list from per-shard rows, score it, and use
//! per-row **score bounds** to early-terminate — all provably lossless
//! against a single-process query over the union corpus.
//!
//! # The equivalence chain
//!
//! A partitioned corpus is the concatenation of its shards' live views
//! (shard order), so the union index assigns global doc id
//! `offset(shard) + local_doc` where `offset` is the prefix sum of the
//! shards' live sketch counts. Each worker answers
//! [`engine::shard_candidates`]: its local top-`overlap_candidates` by
//! the retrieval order (overlap desc, sketch id asc, doc asc),
//! estimated **exhaustively** (shard-local pruning is unsound — see
//! [`engine::shard_candidates`]). The merge then reproduces the
//! single-process pipeline exactly:
//!
//! 1. **Re-cut.** The global top-`overlap_candidates` under the same
//!    retrieval order. Any row in the global top-C precedes fewer than
//!    C rows within its own shard, so it is in that shard's local
//!    top-C: the shard lists together cover the global cut, and the
//!    re-cut selects exactly the rows a union-index retrieval would.
//! 2. **Score.** [`sketch_ranking::score_estimates`] over the full
//!    merged list — the same list membership as single-process, so
//!    even `s4`'s list-level CI normalization is bit-identical.
//! 3. **Bound + terminate.** Each row gets a score interval: `(0, ∞)`
//!    under a non-prunable scorer, `(0, 0)` with no estimate (its
//!    score is exactly 0), else [`sketch_ranking::score_bounds`] of
//!    its own estimate, *clamped to contain the actual score*
//!    (`lb' = min(lb, score)`, `ub' = max(ub, score)`). With
//!    `τ = kth_largest(lb', k)`, at least `k` rows satisfy
//!    `score ≥ lb' ≥ τ`, while any row with `ub' < τ` has
//!    `score ≤ ub' < τ` **strictly** — it ranks below at least `k`
//!    rows by score alone, tie-breaks never reached. Dropping it
//!    cannot change the top-k. Unlike the two-pass planner's bound
//!    (sound at the pass-1 confidence level), the clamp makes this
//!    unconditional: the interval contains the realized score by
//!    construction, so termination is lossless deterministically.
//! 4. **Rank.** The survivors alone are ranked by the engine's result
//!    order (score desc NaN-last, overlap desc, id asc, doc asc) and
//!    truncated to `k` — identical to ranking the full list, by step 3.
//!
//! Only the `shipped` survivors ever need their full uncertainty
//! report fetched from their shard; the `terminated` rows never ship
//! one — that is the scatter-gather bandwidth win the `shard_eval`
//! bench gates on.

use sketch_ranking::{score_bounds, score_estimates};
use sketch_stats::ScoredEstimate;

use crate::engine::{self, QueryOptions, QueryResult, ShardCandidate};
use crate::inverted::DocId;
use crate::plan::kth_largest;

/// One shard's contribution to a merge: its candidate rows (in the
/// shard's retrieval order) plus the shard's live sketch count, which
/// fixes the shard's global doc-id offset.
#[derive(Debug, Clone, Copy)]
pub struct ShardRows<'a> {
    /// The shard's [`engine::shard_candidates`] rows.
    pub rows: &'a [ShardCandidate],
    /// Live sketches in the shard (its doc-id space, not the row
    /// count) — the union corpus is the concatenation of the shards'
    /// live views, so global doc ids are offset by the prefix sum of
    /// these.
    pub sketches: usize,
}

/// One globally ranked winner, with its provenance: which shard holds
/// it and under which shard-local doc id (for report fetches).
#[derive(Debug, Clone, PartialEq)]
pub struct MergedWinner {
    /// Index of the owning shard in the merge input.
    pub shard: usize,
    /// Doc id within the owning shard.
    pub local_doc: DocId,
    /// The ranked result, with `doc` in the union corpus's global
    /// doc-id space — bit-identical to the single-process answer.
    pub result: QueryResult,
}

/// What a merge concluded: the global top-k plus the early-termination
/// accounting the oracle battery replays.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeOutcome {
    /// The global top-k, ranked exactly as a single-process query over
    /// the union corpus would rank it.
    pub winners: Vec<MergedWinner>,
    /// Rows in the merged candidate list after the global re-cut.
    pub merged: usize,
    /// Rows whose score bound reached the termination threshold — the
    /// only rows that would ever need their full report shipped.
    pub shipped: usize,
    /// Rows early-terminated by the bound (`merged - shipped`); their
    /// reports never ship.
    pub terminated: usize,
    /// The termination threshold `τ` — the k-th best clamped score
    /// lower bound over the merged list (`0.0` when fewer than `k`
    /// rows exist, so nothing terminates).
    pub threshold: f64,
}

/// Score interval for one merged row, clamped to contain its realized
/// list-level score (making termination sound unconditionally — see
/// the module docs). Non-finite scores defensively widen to `(0, ∞)`:
/// no information, never terminate.
fn row_bounds(opts: &QueryOptions, est: Option<&ScoredEstimate>, score: f64) -> (f64, f64) {
    if !opts.scorer.prunable() {
        return (0.0, f64::INFINITY);
    }
    let (lb, ub) = match est {
        None => (0.0, 0.0),
        Some(e) => score_bounds(opts.scorer, e),
    };
    if score.is_finite() {
        (lb.min(score), ub.max(score))
    } else {
        (0.0, f64::INFINITY)
    }
}

/// Merge per-shard candidate rows into the global top-k with
/// early-termination accounting. Pure: a function of the rows, the
/// shard sketch counts, and `(overlap_candidates, k, scorer)` — the
/// replay half of the shard-merge oracle calls it directly on raw
/// `/shard_query` data to check the coordinator's `shipped` count.
///
/// `opts.estimator`, `opts.plan`, etc. are not consulted: estimation
/// already happened on the workers.
#[must_use]
pub fn merge_shard_candidates(shards: &[ShardRows<'_>], opts: &QueryOptions) -> MergeOutcome {
    struct Slot<'a> {
        shard: usize,
        global_doc: u64,
        row: &'a ShardCandidate,
    }
    let mut offset = 0u64;
    let slots = shards.iter().enumerate().flat_map(|(shard, s)| {
        let base = offset;
        offset += s.sketches as u64;
        s.rows.iter().map(move |row| Slot {
            shard,
            global_doc: base + u64::from(row.doc),
            row,
        })
    });
    // The global re-cut, under exactly the inverted index's retrieval
    // order: overlap desc, sketch id asc, doc asc (global). `top_k_by`
    // returns ascending comparator order = retrieval order.
    let merged = crate::select::top_k_by(slots, opts.overlap_candidates, |a, b| {
        b.row
            .overlap
            .cmp(&a.row.overlap)
            .then_with(|| a.row.id.cmp(&b.row.id))
            .then(a.global_doc.cmp(&b.global_doc))
    });

    // List-level scoring over the full merged list (s4 normalizes CI
    // lengths across it), then the termination bound per row.
    let estimates: Vec<Option<ScoredEstimate>> = merged.iter().map(|s| s.row.est).collect();
    let scores = score_estimates(opts.scorer, &estimates);
    let bounds: Vec<(f64, f64)> = merged
        .iter()
        .zip(&scores)
        .map(|(slot, &score)| row_bounds(opts, slot.row.est.as_ref(), score))
        .collect();
    let lbs: Vec<f64> = bounds.iter().map(|&(lb, _)| lb).collect();
    let threshold = kth_largest(&lbs, opts.k);
    let survivors: Vec<usize> = (0..merged.len())
        .filter(|&i| bounds[i].1 >= threshold)
        .collect();
    let shipped = survivors.len();

    let items = survivors.into_iter().map(|i| {
        let slot = &merged[i];
        MergedWinner {
            shard: slot.shard,
            local_doc: slot.row.doc,
            result: QueryResult {
                doc: DocId::try_from(slot.global_doc).unwrap_or(DocId::MAX),
                id: slot.row.id.clone(),
                overlap: slot.row.overlap,
                sample_size: slot.row.sample_size,
                estimate: slot.row.est.map(|e| e.estimate),
                ci_lo: slot.row.est.map(|e| e.ci_lo),
                ci_hi: slot.row.est.map(|e| e.ci_hi),
                score: scores[i],
            },
        }
    });
    let winners = crate::select::top_k_by(items, opts.k, |a, b| {
        engine::result_order(&a.result, &b.result)
    });

    MergeOutcome {
        winners,
        merged: merged.len(),
        shipped,
        terminated: merged.len() - shipped,
        threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inverted::SketchIndex;
    use crate::Scorer;
    use correlation_sketches::{CorrelationSketch, SketchBuilder, SketchConfig};
    use sketch_table::ColumnPair;

    fn est(estimate: f64, ci_lo: f64, ci_hi: f64, n: usize) -> Option<ScoredEstimate> {
        Some(ScoredEstimate {
            estimate,
            ci_lo,
            ci_hi,
            sample_size: n,
        })
    }

    fn cand(doc: DocId, id: &str, overlap: usize, e: Option<ScoredEstimate>) -> ShardCandidate {
        ShardCandidate {
            doc,
            id: id.to_string(),
            overlap,
            sample_size: e.map_or(2, |e| e.sample_size),
            est: e,
        }
    }

    fn opts(k: usize, candidates: usize, scorer: Scorer) -> QueryOptions {
        QueryOptions {
            k,
            overlap_candidates: candidates,
            scorer,
            ..QueryOptions::default()
        }
    }

    /// A corpus of many tables with staggered key ranges, split into
    /// `shards` contiguous chunks — the in-memory model of
    /// `shard_corpus`.
    fn sharded_fixture(
        tables: usize,
        shards: usize,
    ) -> (SketchIndex, Vec<SketchIndex>, CorrelationSketch) {
        let b = SketchBuilder::new(SketchConfig::with_size(128));
        let n = 800usize;
        let query = b.build(&ColumnPair::new(
            "query",
            "k",
            "v",
            (0..n).map(|i| format!("key-{i}")).collect(),
            (0..n).map(|i| ((i as f64) * 0.11).sin() * 5.0).collect(),
        ));
        let sketches: Vec<CorrelationSketch> = (0..tables)
            .map(|t| {
                let lo = (t * 37) % 500;
                b.build(&ColumnPair::new(
                    format!("t{t}"),
                    "k",
                    "v",
                    (lo..lo + n).map(|i| format!("key-{i}")).collect(),
                    (lo..lo + n)
                        .map(|i| ((i as f64) * 0.11 + t as f64).sin() * (t + 1) as f64)
                        .collect(),
                ))
            })
            .collect();
        let union = SketchIndex::from_sketches(sketches.iter().cloned()).unwrap();
        let chunk = tables.div_ceil(shards);
        let parts = (0..shards)
            .map(|s| {
                let lo = (s * chunk).min(tables);
                let hi = ((s + 1) * chunk).min(tables);
                SketchIndex::from_sketches(sketches[lo..hi].iter().cloned()).unwrap()
            })
            .collect();
        (union, parts, query)
    }

    /// The headline identity on a real corpus: merged shard candidates
    /// answer bit-identically to a single-process query over the union
    /// index, for every scorer, at several shard counts — and under a
    /// prunable scorer the bound terminates some rows.
    #[test]
    fn merge_matches_single_process_over_the_union() {
        for shards in [1usize, 2, 3, 5] {
            let (union, parts, query) = sharded_fixture(40, shards);
            for scorer in Scorer::ALL {
                let o = opts(6, 30, scorer);
                let expected = engine::top_k_join_correlation(&union, &query, &o);
                let rows: Vec<Vec<ShardCandidate>> = parts
                    .iter()
                    .map(|p| engine::shard_candidates(p, &query, &o))
                    .collect();
                let input: Vec<ShardRows<'_>> = rows
                    .iter()
                    .zip(&parts)
                    .map(|(rows, p)| ShardRows {
                        rows,
                        sketches: p.len(),
                    })
                    .collect();
                let out = merge_shard_candidates(&input, &o);
                let got: Vec<QueryResult> = out.winners.iter().map(|w| w.result.clone()).collect();
                assert_eq!(got, expected, "shards={shards} scorer={scorer}");
                assert_eq!(out.merged - out.shipped, out.terminated);
                // Winners' provenance must resolve back to their rows.
                for w in &out.winners {
                    let row = rows[w.shard]
                        .iter()
                        .find(|r| r.doc == w.local_doc)
                        .expect("winner comes from a shipped shard row");
                    assert_eq!(row.id, w.result.id);
                }
            }
        }
    }

    /// The bound actually terminates on a corpus with clear winners and
    /// a tight-CI scorer — otherwise `shipped == merged` would trivially
    /// satisfy the identity and the bandwidth win would be imaginary.
    #[test]
    fn bound_terminates_rows_under_prunable_scorers() {
        let (union, parts, query) = sharded_fixture(40, 3);
        let o = opts(3, 40, Scorer::S2);
        let rows: Vec<Vec<ShardCandidate>> = parts
            .iter()
            .map(|p| engine::shard_candidates(p, &query, &o))
            .collect();
        let input: Vec<ShardRows<'_>> = rows
            .iter()
            .zip(&parts)
            .map(|(rows, p)| ShardRows {
                rows,
                sketches: p.len(),
            })
            .collect();
        let out = merge_shard_candidates(&input, &o);
        assert!(
            out.terminated > 0,
            "expected early termination, got {out:?}"
        );
        assert!(out.shipped >= o.k);
        assert!(out.threshold > 0.0);
        let expected = engine::top_k_join_correlation(&union, &query, &o);
        let got: Vec<QueryResult> = out.winners.iter().map(|w| w.result.clone()).collect();
        assert_eq!(got, expected);
    }

    /// `s4` is list-level, so no per-row bound exists: every merged row
    /// ships, mirroring the single-process planner's exhaustive
    /// fallback.
    #[test]
    fn s4_ships_every_merged_row() {
        let (_, parts, query) = sharded_fixture(30, 3);
        let o = opts(5, 25, Scorer::S4);
        let rows: Vec<Vec<ShardCandidate>> = parts
            .iter()
            .map(|p| engine::shard_candidates(p, &query, &o))
            .collect();
        let input: Vec<ShardRows<'_>> = rows
            .iter()
            .zip(&parts)
            .map(|(rows, p)| ShardRows {
                rows,
                sketches: p.len(),
            })
            .collect();
        let out = merge_shard_candidates(&input, &o);
        assert_eq!(out.shipped, out.merged);
        assert_eq!(out.terminated, 0);
    }

    /// The counterexample that makes shard-local pruning unsound (and
    /// coordinator-side termination necessary): a shard's local list
    /// holds two high-score/low-overlap rows that the global overlap
    /// re-cut drops, plus the low-score/high-overlap row that globally
    /// wins. A worker pruning on its local τ* would ship that winner
    /// unestimated; the merge, fed exhaustive rows, answers it.
    #[test]
    fn global_recut_wins_over_shard_local_score_order() {
        let a = vec![
            cand(0, "a1", 10, est(0.90, 0.88, 0.92, 200)),
            cand(1, "a2", 10, est(0.85, 0.83, 0.87, 200)),
            cand(2, "a3", 50, est(0.30, 0.25, 0.35, 400)),
        ];
        let b = vec![
            cand(0, "b1", 40, est(0.20, 0.15, 0.25, 300)),
            cand(1, "b2", 40, est(0.18, 0.13, 0.23, 300)),
        ];
        let o = opts(1, 3, Scorer::S1);
        let out = merge_shard_candidates(
            &[
                ShardRows {
                    rows: &a,
                    sketches: 3,
                },
                ShardRows {
                    rows: &b,
                    sketches: 2,
                },
            ],
            &o,
        );
        // Global top-3 by overlap: a3 (50), b1, b2 (40) — a1/a2 are cut.
        assert_eq!(out.merged, 3);
        assert_eq!(out.winners.len(), 1);
        assert_eq!(out.winners[0].result.id, "a3");
        assert_eq!(out.winners[0].shard, 0);
        assert_eq!(out.winners[0].local_doc, 2);
        // Global doc id: shard 0 offset 0 + local 2.
        assert_eq!(out.winners[0].result.doc, 2);
    }

    /// Cross-shard exact ties resolve by sketch id then global doc —
    /// the same total order the union index's retrieval applies.
    #[test]
    fn cross_shard_ties_resolve_by_id_then_global_doc() {
        let a = vec![cand(0, "ztable", 10, est(0.5, 0.45, 0.55, 100))];
        let b = vec![cand(0, "atable", 10, est(0.5, 0.45, 0.55, 100))];
        let o = opts(4, 4, Scorer::S1);
        let out = merge_shard_candidates(
            &[
                ShardRows {
                    rows: &a,
                    sketches: 1,
                },
                ShardRows {
                    rows: &b,
                    sketches: 1,
                },
            ],
            &o,
        );
        // Identical score and overlap: "atable" (shard 1) precedes
        // "ztable" (shard 0) by id, regardless of shard order.
        let ids: Vec<&str> = out.winners.iter().map(|w| w.result.id.as_str()).collect();
        assert_eq!(ids, ["atable", "ztable"]);
        assert_eq!(out.winners[0].result.doc, 1, "offset by shard 0's count");
        assert_eq!(out.winners[1].result.doc, 0);
    }

    /// Fewer merged rows than `k` (including empty shards): the
    /// threshold floors at 0, nothing terminates, everything ships.
    #[test]
    fn small_lists_and_empty_shards_ship_everything() {
        let a = vec![cand(0, "only", 5, est(0.4, 0.3, 0.5, 50))];
        let out = merge_shard_candidates(
            &[
                ShardRows {
                    rows: &a,
                    sketches: 1,
                },
                ShardRows {
                    rows: &[],
                    sketches: 0,
                },
            ],
            &opts(10, 100, Scorer::S2),
        );
        assert_eq!(out.merged, 1);
        assert_eq!(out.shipped, 1);
        assert_eq!(out.terminated, 0);
        assert_eq!(out.threshold, 0.0);
        assert_eq!(out.winners.len(), 1);

        let empty = merge_shard_candidates(
            &[ShardRows {
                rows: &[],
                sketches: 0,
            }],
            &opts(10, 100, Scorer::S1),
        );
        assert!(empty.winners.is_empty());
        assert_eq!(empty.merged, 0);
    }

    /// Rows without an estimate score exactly 0 and carry a `(0, 0)`
    /// bound: with `k` confidently positive rows ahead of them they
    /// terminate, but when the top-k needs them (k exceeds the scored
    /// rows) the threshold floors at 0 and they ship.
    #[test]
    fn unestimated_rows_terminate_only_when_outscored() {
        let rows = vec![
            cand(0, "strong-a", 30, est(0.9, 0.88, 0.92, 300)),
            cand(1, "strong-b", 30, est(0.8, 0.78, 0.82, 300)),
            cand(2, "dead", 30, None),
        ];
        let shard = [ShardRows {
            rows: &rows,
            sketches: 3,
        }];
        let tight = merge_shard_candidates(&shard, &opts(2, 10, Scorer::S1));
        assert_eq!(tight.shipped, 2, "{tight:?}");
        assert_eq!(tight.terminated, 1);
        assert!(tight.winners.iter().all(|w| w.result.id != "dead"));

        let loose = merge_shard_candidates(&shard, &opts(3, 10, Scorer::S1));
        assert_eq!(loose.shipped, 3);
        assert_eq!(loose.winners.len(), 3);
        assert_eq!(loose.winners[2].result.id, "dead");
        assert_eq!(loose.winners[2].result.score, 0.0);
    }
}
