//! Indexing and query evaluation for top-k join-correlation queries
//! (paper Definition 3 and Sections 4, 5.5).
//!
//! The paper notes that a sketch "includes a set of pairs ⟨h(k), x_k⟩.
//! Since h(k) is a discrete value, we can leverage existing data
//! structures for efficient querying such as inverted indexes available in
//! off-the-shelf systems (e.g., PostgreSQL, Apache Lucene)". This crate is
//! our from-scratch stand-in for that machinery:
//!
//! * [`SketchIndex`] — an in-memory inverted index mapping hashed keys to
//!   the sketches containing them, with top-N retrieval by key overlap;
//! * [`engine`] — the two-stage query pipeline of Sections 4 and 5.5:
//!   retrieve the top-N candidates by overlap, then join + estimate +
//!   confidence interval in one fused pass, and re-rank with one of the
//!   `s1..s4` scorers of `sketch-ranking`
//!   ([`QueryOptions::scorer`]/[`QueryOptions::confidence`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod inverted;
pub mod merge;
pub mod plan;
mod select;

pub use engine::{
    top_k_batch, top_k_batch_with_reports, Candidate, QueryOptions, QueryResult, ReportedResult,
    ShardCandidate,
};
pub use inverted::{DocId, SketchIndex};
pub use merge::{merge_shard_candidates, MergeOutcome, MergedWinner, ShardRows};
pub use plan::{PlanMode, PlanStats};
pub use sketch_ranking::Scorer;
