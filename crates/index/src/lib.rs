//! Indexing and query evaluation for top-k join-correlation queries
//! (paper Definition 3 and Sections 4, 5.5).
//!
//! The paper notes that a sketch "includes a set of pairs ⟨h(k), x_k⟩.
//! Since h(k) is a discrete value, we can leverage existing data
//! structures for efficient querying such as inverted indexes available in
//! off-the-shelf systems (e.g., PostgreSQL, Apache Lucene)". This crate is
//! our from-scratch stand-in for that machinery:
//!
//! * [`SketchIndex`] — an in-memory inverted index mapping hashed keys to
//!   the sketches containing them, with top-N retrieval by key overlap;
//! * [`engine`] — the query pipeline of Section 5.5: retrieve the top-N
//!   candidates by overlap, join each candidate sketch with the query
//!   sketch, estimate correlations, and re-rank with a pluggable scoring
//!   function (the concrete `s1..s4` scorers live in `sketch-ranking`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod inverted;
mod select;

pub use engine::{
    top_k_batch, top_k_batch_with_reports, Candidate, QueryOptions, QueryResult, ReportedResult,
};
pub use inverted::{DocId, SketchIndex};
