//! The query pipeline for approximate top-k join-correlation queries
//! (paper Definition 3, evaluated in Section 5.5):
//!
//! 1. retrieve the top-N candidates by key overlap from the inverted
//!    index;
//! 2. join each candidate's sketch with the query sketch (Theorem 1
//!    sample);
//! 3. estimate the after-join correlation;
//! 4. re-rank with a scoring function (pluggable — the paper's `s1..s4`
//!    scorers live in the `sketch-ranking` crate).

use correlation_sketches::{join_sketches, CorrelationSketch, JoinSample};
use sketch_stats::CorrelationEstimator;

use crate::inverted::{DocId, SketchIndex};

/// Options for a top-k join-correlation query.
#[derive(Debug, Clone, Copy)]
pub struct QueryOptions {
    /// Candidates retrieved by key overlap before re-ranking (paper
    /// Section 5.5 uses the top-100).
    pub overlap_candidates: usize,
    /// Number of results returned after re-ranking.
    pub k: usize,
    /// Correlation estimator applied to the join samples.
    pub estimator: CorrelationEstimator,
    /// Minimum join-sample size for a candidate to receive an estimate
    /// (below this the estimate is `None` and the candidate ranks last).
    pub min_sample: usize,
    /// Worker threads for candidate join + estimation. `0` and `1` both
    /// mean serial; results are bit-identical for every value (the
    /// fan-out uses deterministic contiguous chunking, like
    /// `correlation_sketches::build_sketches_parallel`).
    pub threads: usize,
}

impl Default for QueryOptions {
    fn default() -> Self {
        Self {
            overlap_candidates: 100,
            k: 10,
            estimator: CorrelationEstimator::Pearson,
            min_sample: 3,
            threads: 1,
        }
    }
}

/// A retrieved candidate: the joined sample plus retrieval metadata,
/// handed to scoring functions.
#[derive(Debug)]
pub struct Candidate<'a> {
    /// Document id in the index.
    pub doc: DocId,
    /// The candidate's sketch.
    pub sketch: &'a CorrelationSketch,
    /// Number of overlapping sketch keys found during retrieval.
    pub overlap: usize,
    /// The reconstructed join sample (query ⨝ candidate).
    pub sample: JoinSample,
}

/// One ranked query answer.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Document id in the index.
    pub doc: DocId,
    /// Sketch identifier (`table/key/value`).
    pub id: String,
    /// Sketch-key overlap with the query.
    pub overlap: usize,
    /// Join-sample size used for the estimate.
    pub sample_size: usize,
    /// Correlation estimate, if the sample was large enough and
    /// non-degenerate.
    pub estimate: Option<f64>,
    /// Final ranking score.
    pub score: f64,
}

/// Retrieve the overlap candidates for `query` and materialize their join
/// samples. This is steps 1–2 of the pipeline; use
/// [`top_k_join_correlation`] for the full query.
#[must_use]
pub fn retrieve_candidates<'a>(
    index: &'a SketchIndex,
    query: &CorrelationSketch,
    overlap_candidates: usize,
) -> Vec<Candidate<'a>> {
    retrieve_candidates_threaded(index, query, overlap_candidates, 1)
}

/// As [`retrieve_candidates`], fanning the joins out over up to `threads`
/// scoped worker threads. Deterministic: contiguous chunks of the
/// retrieval order are joined independently and re-concatenated, so the
/// output is bit-identical to the serial build for every thread count
/// (`0` is treated as `1`; counts above the candidate count are capped).
#[must_use]
pub fn retrieve_candidates_threaded<'a>(
    index: &'a SketchIndex,
    query: &CorrelationSketch,
    overlap_candidates: usize,
    threads: usize,
) -> Vec<Candidate<'a>> {
    scored_candidates(
        index,
        query,
        overlap_candidates,
        threads,
        // Estimation is skipped here (min_sample usize::MAX): callers of
        // the candidate API (e.g. the CLI's list-level scorers) estimate
        // themselves.
        usize::MAX,
        CorrelationEstimator::Pearson,
    )
    .into_iter()
    .map(|(cand, _)| cand)
    .collect()
}

/// Steps 1–3 of the pipeline: retrieve, join, estimate — the expensive,
/// embarrassingly parallel part, fanned out over scoped threads with
/// deterministic contiguous chunking.
fn scored_candidates<'a>(
    index: &'a SketchIndex,
    query: &CorrelationSketch,
    overlap_candidates: usize,
    threads: usize,
    min_sample: usize,
    estimator: CorrelationEstimator,
) -> Vec<(Candidate<'a>, Option<f64>)> {
    let hits = index.overlap_candidates(query, overlap_candidates);
    join_and_estimate(index, query, &hits, threads, min_sample, estimator)
}

/// Steps 2–3 for an already-retrieved hit list (shared by the per-query
/// and batch paths).
fn join_and_estimate<'a>(
    index: &'a SketchIndex,
    query: &CorrelationSketch,
    hits: &[(crate::inverted::DocId, usize)],
    threads: usize,
    min_sample: usize,
    estimator: CorrelationEstimator,
) -> Vec<(Candidate<'a>, Option<f64>)> {
    let join_one = |&(doc, overlap): &(crate::inverted::DocId, usize)| {
        let sketch = index.get(doc)?;
        // Hashers are uniform across an index; join cannot fail.
        let sample = join_sketches(query, sketch).ok()?;
        let estimate = if sample.len() >= min_sample {
            sample.estimate(estimator).ok()
        } else {
            None
        };
        Some((
            Candidate {
                doc,
                sketch,
                overlap,
                sample,
            },
            estimate,
        ))
    };

    let threads = threads.clamp(1, hits.len().max(1));
    if threads == 1 {
        return hits.iter().filter_map(join_one).collect();
    }
    let chunk_len = hits.len().div_ceil(threads);
    let mut out = Vec::with_capacity(hits.len());
    let join_one = &join_one;
    std::thread::scope(|scope| {
        let handles: Vec<_> = hits
            .chunks(chunk_len)
            .map(|chunk| scope.spawn(move || chunk.iter().filter_map(join_one).collect::<Vec<_>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("query workers do not panic"));
        }
    });
    out
}

/// Execute a top-k join-correlation query with a custom scorer.
///
/// `scorer` maps a candidate and its (optional) correlation estimate to a
/// ranking score; higher is better. Candidates are returned sorted by
/// score (descending, ties broken by overlap then doc id), truncated to
/// `opts.k` via bounded-heap selection (the scorer itself runs serially —
/// join and estimation are what `opts.threads` parallelizes).
#[must_use]
pub fn top_k_with_scorer(
    index: &SketchIndex,
    query: &CorrelationSketch,
    opts: &QueryOptions,
    scorer: impl Fn(&Candidate<'_>, Option<f64>) -> f64,
) -> Vec<QueryResult> {
    top_k_reported_candidates(index, query, opts, scorer)
        .into_iter()
        .map(|(result, _)| result)
        .collect()
}

/// Shared core of [`top_k_with_scorer`] / [`top_k_with_reports`]: rank
/// all candidates, keep the top `opts.k`, and hand each winner's
/// already-materialized [`JoinSample`] back alongside its result so
/// report construction never re-joins.
fn top_k_reported_candidates(
    index: &SketchIndex,
    query: &CorrelationSketch,
    opts: &QueryOptions,
    scorer: impl Fn(&Candidate<'_>, Option<f64>) -> f64,
) -> Vec<(QueryResult, JoinSample)> {
    let scored = scored_candidates(
        index,
        query,
        opts.overlap_candidates,
        opts.threads,
        opts.min_sample,
        opts.estimator,
    );
    rank_candidates(scored, opts, scorer)
}

/// Step 4: score every candidate and keep the top `opts.k` via
/// bounded-heap selection.
fn rank_candidates(
    scored: Vec<(Candidate<'_>, Option<f64>)>,
    opts: &QueryOptions,
    scorer: impl Fn(&Candidate<'_>, Option<f64>) -> f64,
) -> Vec<(QueryResult, JoinSample)> {
    let scored = scored.into_iter().map(|(cand, estimate)| {
        let score = scorer(&cand, estimate);
        (
            QueryResult {
                doc: cand.doc,
                id: cand.sketch.id().to_string(),
                overlap: cand.overlap,
                sample_size: cand.sample.len(),
                estimate,
                score,
            },
            cand.sample,
        )
    });
    crate::select::top_k_by(scored, opts.k, |(a, _), (b, _)| {
        b.score
            .total_cmp(&a.score)
            .then(b.overlap.cmp(&a.overlap))
            .then(a.doc.cmp(&b.doc))
    })
}

/// Execute a top-k join-correlation query ranked by the absolute
/// correlation estimate (the paper's `s1` scoring; negative correlations
/// count as much as positive ones). Candidates without an estimate score
/// zero.
#[must_use]
pub fn top_k_join_correlation(
    index: &SketchIndex,
    query: &CorrelationSketch,
    opts: &QueryOptions,
) -> Vec<QueryResult> {
    top_k_with_scorer(index, query, opts, |_cand, est| est.map_or(0.0, f64::abs))
}

/// A query result together with the full uncertainty report of
/// [`correlation_sketches::JoinSample::report`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReportedResult {
    /// The ranked result.
    pub result: QueryResult,
    /// Estimate + Hoeffding CI + HFD length + Fisher SE; `None` when the
    /// join sample was too small or degenerate.
    pub report: Option<correlation_sketches::EstimateReport>,
}

/// As [`top_k_join_correlation`], but each answer carries the Section 4
/// uncertainty report (Hoeffding interval, HFD length, Fisher SE) so a
/// caller can display confidence alongside the estimate.
///
/// Single pass: each winner's report is computed from the join sample
/// already materialized during retrieval — the pre-fusion implementation
/// re-joined and re-estimated every winner, doubling the join work for
/// the exact same numbers.
#[must_use]
pub fn top_k_with_reports(
    index: &SketchIndex,
    query: &CorrelationSketch,
    opts: &QueryOptions,
    alpha: f64,
) -> Vec<ReportedResult> {
    top_k_reported_candidates(index, query, opts, |_cand, est| est.map_or(0.0, f64::abs))
        .into_iter()
        .map(|(result, sample)| attach_report(result, &sample, opts, alpha))
        .collect()
}

/// Attach the Section 4 uncertainty report to a ranked result — the one
/// place the report gate (`min_sample`, degenerate-sample `ok()`) lives,
/// so the single-query and batch paths can never drift apart.
fn attach_report(
    result: QueryResult,
    sample: &JoinSample,
    opts: &QueryOptions,
    alpha: f64,
) -> ReportedResult {
    let report = (sample.len() >= opts.min_sample)
        .then(|| sample.report(opts.estimator, alpha).ok())
        .flatten();
    ReportedResult { result, report }
}

/// One query of a batch, executed serially with a reusable retrieval
/// scratch buffer, ranked by the default `|estimate|` scorer.
fn batch_one(
    index: &SketchIndex,
    query: &CorrelationSketch,
    opts: &QueryOptions,
    scratch: &mut Vec<u32>,
) -> Vec<(QueryResult, JoinSample)> {
    let hits = index.overlap_candidates_with_scratch(query, opts.overlap_candidates, scratch);
    let scored = join_and_estimate(index, query, &hits, 1, opts.min_sample, opts.estimator);
    rank_candidates(scored, opts, |_cand, est| est.map_or(0.0, f64::abs))
}

/// Fan a per-query closure out over contiguous chunks of `queries` —
/// deterministic for every thread count, with one retrieval scratch
/// buffer per worker.
fn batch_map<T: Send>(
    queries: &[CorrelationSketch],
    threads: usize,
    run_one: impl Fn(&CorrelationSketch, &mut Vec<u32>) -> T + Sync,
) -> Vec<T> {
    let threads = threads.clamp(1, queries.len().max(1));
    if threads == 1 {
        let mut scratch = Vec::new();
        return queries.iter().map(|q| run_one(q, &mut scratch)).collect();
    }
    let chunk_len = queries.len().div_ceil(threads);
    let mut out = Vec::with_capacity(queries.len());
    let run_one = &run_one;
    std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .chunks(chunk_len)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut scratch = Vec::new();
                    chunk
                        .iter()
                        .map(|q| run_one(q, &mut scratch))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("batch query workers do not panic"));
        }
    });
    out
}

/// Execute many top-k join-correlation queries as one batch.
///
/// Answer `i` corresponds to `queries[i]` and is bit-identical to
/// `top_k_join_correlation(index, &queries[i], opts)` — but the batch
/// amortizes work across queries: `opts.threads` fans out over *queries*
/// (contiguous chunks, like the single-query join fan-out) and each
/// worker reuses one retrieval counter buffer for its whole chunk
/// instead of allocating per query. Deterministic for every thread
/// count.
#[must_use]
pub fn top_k_batch(
    index: &SketchIndex,
    queries: &[CorrelationSketch],
    opts: &QueryOptions,
) -> Vec<Vec<QueryResult>> {
    batch_map(queries, opts.threads, |query, scratch| {
        batch_one(index, query, opts, scratch)
            .into_iter()
            .map(|(result, _)| result)
            .collect()
    })
}

/// As [`top_k_batch`], with each answer carrying the Section 4
/// uncertainty report — bit-identical to looping
/// [`top_k_with_reports`] over `queries`.
#[must_use]
pub fn top_k_batch_with_reports(
    index: &SketchIndex,
    queries: &[CorrelationSketch],
    opts: &QueryOptions,
    alpha: f64,
) -> Vec<Vec<ReportedResult>> {
    batch_map(queries, opts.threads, |query, scratch| {
        batch_one(index, query, opts, scratch)
            .into_iter()
            .map(|(result, sample)| attach_report(result, &sample, opts, alpha))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use correlation_sketches::{SketchBuilder, SketchConfig};
    use sketch_table::ColumnPair;

    /// Corpus with one strongly correlated, one anti-correlated, one
    /// noisy, and one non-joinable column.
    fn fixture() -> (SketchIndex, CorrelationSketch) {
        let b = SketchBuilder::new(SketchConfig::with_size(256));
        let n = 3_000usize;
        let keys: Vec<String> = (0..n).map(|i| format!("key-{i}")).collect();
        let signal: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.05).sin() * 10.0).collect();

        let query = b.build(&ColumnPair::new(
            "query",
            "k",
            "v",
            keys.clone(),
            signal.clone(),
        ));

        let mut idx = SketchIndex::new();
        idx.insert(b.build(&ColumnPair::new(
            "positive",
            "k",
            "v",
            keys.clone(),
            signal.iter().map(|v| 3.0 * v + 1.0).collect(),
        )))
        .unwrap();
        idx.insert(b.build(&ColumnPair::new(
            "negative",
            "k",
            "v",
            keys.clone(),
            signal.iter().map(|v| -2.0 * v).collect(),
        )))
        .unwrap();
        idx.insert(
            b.build(&ColumnPair::new(
                "noise",
                "k",
                "v",
                keys.clone(),
                (0..n)
                    .map(|i| ((i * 2_654_435_761) % 1_000) as f64)
                    .collect(),
            )),
        )
        .unwrap();
        idx.insert(b.build(&ColumnPair::new(
            "disjoint",
            "k",
            "v",
            (0..n).map(|i| format!("other-{i}")).collect(),
            signal.clone(),
        )))
        .unwrap();
        (idx, query)
    }

    #[test]
    fn correlated_columns_rank_above_noise() {
        let (idx, q) = fixture();
        let results = top_k_join_correlation(&idx, &q, &QueryOptions::default());
        assert_eq!(results.len(), 3, "disjoint table must not be retrieved");
        let names: Vec<&str> = results.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(names[2], "noise/k/v", "noise must rank last: {names:?}");
        assert!(results[0].estimate.unwrap().abs() > 0.95);
        assert!(results[1].estimate.unwrap().abs() > 0.95);
        assert!(results[2].estimate.unwrap().abs() < 0.3);
    }

    #[test]
    fn negative_correlation_ranks_high() {
        let (idx, q) = fixture();
        let results = top_k_join_correlation(&idx, &q, &QueryOptions::default());
        let neg = results.iter().find(|r| r.id == "negative/k/v").unwrap();
        assert!(neg.estimate.unwrap() < -0.95);
        assert!(neg.score > 0.9, "abs() scoring must rank it high");
    }

    #[test]
    fn k_truncation_and_candidate_limit() {
        let (idx, q) = fixture();
        let opts = QueryOptions {
            k: 1,
            ..Default::default()
        };
        assert_eq!(top_k_join_correlation(&idx, &q, &opts).len(), 1);

        let opts = QueryOptions {
            overlap_candidates: 2,
            ..Default::default()
        };
        assert_eq!(top_k_join_correlation(&idx, &q, &opts).len(), 2);
    }

    #[test]
    fn min_sample_gate_suppresses_estimates() {
        let (idx, q) = fixture();
        let opts = QueryOptions {
            min_sample: 10_000, // nothing can reach this
            ..Default::default()
        };
        for r in top_k_join_correlation(&idx, &q, &opts) {
            assert!(r.estimate.is_none());
            assert_eq!(r.score, 0.0);
        }
    }

    #[test]
    fn custom_scorer_changes_order() {
        let (idx, q) = fixture();
        // Score by overlap only: ranking degenerates to retrieval order.
        let results = top_k_with_scorer(&idx, &q, &QueryOptions::default(), |cand, _| {
            cand.overlap as f64
        });
        assert!(results[0].overlap >= results[1].overlap);
    }

    #[test]
    fn retrieve_candidates_exposes_samples() {
        let (idx, q) = fixture();
        let cands = retrieve_candidates(&idx, &q, 100);
        assert_eq!(cands.len(), 3);
        for c in &cands {
            assert_eq!(c.sample.len(), c.overlap);
            assert!(!c.sample.is_empty());
        }
    }

    #[test]
    fn reports_accompany_results() {
        let (idx, q) = fixture();
        let reported = top_k_with_reports(&idx, &q, &QueryOptions::default(), 0.05);
        assert_eq!(reported.len(), 3);
        for r in &reported {
            let rep = r.report.as_ref().expect("large samples have reports");
            assert_eq!(rep.sample_size, r.result.sample_size);
            assert_eq!(Some(rep.estimate), r.result.estimate);
            assert!(rep.hoeffding.contains(rep.estimate));
            assert!(rep.fisher_se > 0.0);
        }
    }

    /// A larger corpus for the parallel-determinism tests: many tables
    /// with staggered key ranges and varied signals.
    fn wide_fixture(tables: usize) -> (SketchIndex, CorrelationSketch) {
        let b = SketchBuilder::new(SketchConfig::with_size(128));
        let n = 800usize;
        let query = b.build(&ColumnPair::new(
            "query",
            "k",
            "v",
            (0..n).map(|i| format!("key-{i}")).collect(),
            (0..n).map(|i| ((i as f64) * 0.11).sin() * 5.0).collect(),
        ));
        let mut idx = SketchIndex::new();
        for t in 0..tables {
            let lo = (t * 37) % 500;
            idx.insert(
                b.build(&ColumnPair::new(
                    format!("t{t}"),
                    "k",
                    "v",
                    (lo..lo + n).map(|i| format!("key-{i}")).collect(),
                    (lo..lo + n)
                        .map(|i| ((i as f64) * 0.11 + t as f64).sin() * (t + 1) as f64)
                        .collect(),
                )),
            )
            .unwrap();
        }
        (idx, query)
    }

    #[test]
    fn parallel_query_identical_to_serial_for_every_thread_count() {
        let (idx, q) = wide_fixture(40);
        let serial = QueryOptions {
            k: 15,
            threads: 1,
            ..Default::default()
        };
        let expected = top_k_join_correlation(&idx, &q, &serial);
        assert!(expected.len() >= 10);
        // 0 (treated as 1), several in-range counts, and counts far above
        // the candidate count must all be bit-identical.
        for threads in [0usize, 2, 3, 7, 16, 1000] {
            let opts = QueryOptions { threads, ..serial };
            assert_eq!(
                top_k_join_correlation(&idx, &q, &opts),
                expected,
                "threads={threads}"
            );
            let reports = top_k_with_reports(&idx, &q, &opts, 0.05);
            let serial_reports = top_k_with_reports(&idx, &q, &serial, 0.05);
            assert_eq!(reports, serial_reports, "reports, threads={threads}");
        }
    }

    #[test]
    fn parallel_retrieve_candidates_identical_to_serial() {
        let (idx, q) = wide_fixture(25);
        let serial = retrieve_candidates(&idx, &q, 100);
        for threads in [0usize, 2, 5, 64] {
            let par = retrieve_candidates_threaded(&idx, &q, 100, threads);
            assert_eq!(par.len(), serial.len(), "threads={threads}");
            for (a, b) in serial.iter().zip(&par) {
                assert_eq!(a.doc, b.doc);
                assert_eq!(a.overlap, b.overlap);
                assert_eq!(a.sample, b.sample);
            }
        }
    }

    #[test]
    fn fused_reports_equal_prefusion_recomputation() {
        let (idx, q) = fixture();
        let opts = QueryOptions::default();
        let fused = top_k_with_reports(&idx, &q, &opts, 0.05);
        // The pre-fusion implementation ranked first, then re-joined and
        // re-estimated every winner; reproduce it literally.
        let prefusion: Vec<ReportedResult> = top_k_join_correlation(&idx, &q, &opts)
            .into_iter()
            .map(|result| {
                let report = idx
                    .get(result.doc)
                    .and_then(|sketch| correlation_sketches::join_sketches(&q, sketch).ok())
                    .filter(|s| s.len() >= opts.min_sample)
                    .and_then(|s| s.report(opts.estimator, 0.05).ok());
                ReportedResult { result, report }
            })
            .collect();
        assert_eq!(fused, prefusion);
    }

    #[test]
    fn queries_skip_removed_docs() {
        let (mut idx, q) = wide_fixture(12);
        // k above the corpus size so no truncation masks the removal.
        let opts = QueryOptions {
            k: 50,
            ..Default::default()
        };
        let full = top_k_join_correlation(&idx, &q, &opts);
        let removed_id = full[0].id.clone();
        assert!(idx.remove(&removed_id));
        let after = top_k_join_correlation(&idx, &q, &opts);
        assert!(after.iter().all(|r| r.id != removed_id));
        assert_eq!(after.len(), full.len() - 1);
        // The surviving results keep their relative order, with doc ids
        // renumbered exactly as a rebuild over the survivors would.
        let surviving: Vec<&str> = full.iter().skip(1).map(|r| r.id.as_str()).collect();
        let after_ids: Vec<&str> = after.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(after_ids, surviving);
    }

    #[test]
    fn empty_index_gives_empty_results() {
        let b = SketchBuilder::new(SketchConfig::with_size(16));
        let q = b.build(&ColumnPair::new("q", "k", "v", vec!["a".into()], vec![1.0]));
        let idx = SketchIndex::new();
        assert!(top_k_join_correlation(&idx, &q, &QueryOptions::default()).is_empty());
    }
}
