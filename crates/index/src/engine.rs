//! The two-stage query planner for approximate top-k join-correlation
//! queries (paper Definition 3 + Section 4, evaluated in Section 5.5):
//!
//! **Stage 1 — retrieve.** The top-N candidates by key overlap come out
//! of the inverted index (ties broken by sketch id, so the candidate set
//! is insertion-order independent).
//!
//! **Stage 2 — estimate + rank.** One fused pass joins each candidate's
//! sketch with the query sketch (Theorem 1 sample), estimates the
//! after-join correlation, and attaches the estimator-matched confidence
//! interval ([`sketch_stats::scored_estimate`]: Fisher z for Pearson,
//! fixed-seed bootstrap for the robust estimators — per-worker scratch,
//! bit-identical across thread counts). The list is then re-ranked by
//! the [`QueryOptions::scorer`] (`s1..s4` of `sketch-ranking`) and
//! truncated to `k` — NaN scores rank last deterministically, so a
//! degenerate candidate can never poison the selection.
//!
//! Stage 2 is structure-of-arrays end to end: each worker refills one
//! [`JoinSample`] buffer per candidate ([`join_sketches_into`]) and the
//! estimators consume its contiguous `x[]`/`y[]` columns directly
//! through the chunked kernels of `sketch_stats::kernel` — no
//! per-candidate sample allocation, no row-wise intermediary. Only the
//! `k` winners' samples are rebuilt afterwards (for reports), so the
//! ~`overlap_candidates` losers never materialize anything.

use correlation_sketches::{join_sketches, join_sketches_into, CorrelationSketch, JoinSample};
use sketch_obs::Trace;
use sketch_ranking::{desc_score_nan_last, score_bounds, score_estimates, Scorer};
use sketch_stats::{scored_estimate, BootstrapScratch, CorrelationEstimator, ScoredEstimate};

use crate::inverted::{DocId, SketchIndex};
use crate::plan::{kth_largest, PlanMode, PlanStats};

/// Options for a top-k join-correlation query.
#[derive(Debug, Clone, Copy)]
pub struct QueryOptions {
    /// Candidates retrieved by key overlap before re-ranking (paper
    /// Section 5.5 uses the top-100).
    pub overlap_candidates: usize,
    /// Number of results returned after re-ranking.
    pub k: usize,
    /// Correlation estimator applied to the join samples.
    pub estimator: CorrelationEstimator,
    /// Minimum join-sample size for a candidate to receive an estimate
    /// (below this the estimate is `None` and the candidate ranks last).
    pub min_sample: usize,
    /// Worker threads for candidate join + estimation. `0` and `1` both
    /// mean serial; results are bit-identical for every value (the
    /// fan-out uses deterministic contiguous chunking, like
    /// `correlation_sketches::build_sketches_parallel`).
    pub threads: usize,
    /// Scoring function for the re-rank stage: `s1` ranks by the raw
    /// point estimate (the pre-Section-4 baseline), `s2`–`s4` penalize
    /// by the confidence interval (paper Section 4.4).
    pub scorer: Scorer,
    /// Confidence level of the per-candidate interval the scorers
    /// consume (e.g. `0.95`).
    pub confidence: f64,
    /// How estimator budget is spent: exhaustively, or via the two-pass
    /// planner that prunes candidates on cheap Pearson CIs and spends
    /// the requested estimator only on the contested band
    /// ([`crate::plan`] documents the losslessness contract).
    pub plan: PlanMode,
}

impl Default for QueryOptions {
    fn default() -> Self {
        Self {
            overlap_candidates: 100,
            k: 10,
            estimator: CorrelationEstimator::Pearson,
            min_sample: 3,
            threads: 1,
            scorer: Scorer::S1,
            confidence: 0.95,
            plan: PlanMode::Exhaustive,
        }
    }
}

/// A retrieved candidate: the joined sample plus retrieval metadata,
/// handed to scoring functions.
#[derive(Debug)]
pub struct Candidate<'a> {
    /// Document id in the index.
    pub doc: DocId,
    /// The candidate's sketch.
    pub sketch: &'a CorrelationSketch,
    /// Number of overlapping sketch keys found during retrieval.
    pub overlap: usize,
    /// The reconstructed join sample (query ⨝ candidate).
    pub sample: JoinSample,
}

/// One ranked query answer.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Document id in the index.
    pub doc: DocId,
    /// Sketch identifier (`table/key/value`).
    pub id: String,
    /// Sketch-key overlap with the query.
    pub overlap: usize,
    /// Join-sample size used for the estimate.
    pub sample_size: usize,
    /// Correlation estimate, if the sample was large enough and
    /// non-degenerate.
    pub estimate: Option<f64>,
    /// Lower endpoint of the estimator-matched confidence interval at
    /// [`QueryOptions::confidence`]; present whenever `estimate` is on
    /// the scored paths ([`top_k_join_correlation`],
    /// [`top_k_with_reports`], the batch variants), absent on the
    /// custom-closure path ([`top_k_with_scorer`]), which skips
    /// interval computation.
    pub ci_lo: Option<f64>,
    /// Upper endpoint of the confidence interval.
    pub ci_hi: Option<f64>,
    /// Final ranking score under [`QueryOptions::scorer`].
    pub score: f64,
}

/// Retrieve the overlap candidates for `query` and materialize their join
/// samples. This is steps 1–2 of the pipeline; use
/// [`top_k_join_correlation`] for the full query.
#[must_use]
pub fn retrieve_candidates<'a>(
    index: &'a SketchIndex,
    query: &CorrelationSketch,
    overlap_candidates: usize,
) -> Vec<Candidate<'a>> {
    retrieve_candidates_threaded(index, query, overlap_candidates, 1)
}

/// As [`retrieve_candidates`], fanning the joins out over up to `threads`
/// scoped worker threads. Deterministic: contiguous chunks of the
/// retrieval order are joined independently and re-concatenated, so the
/// output is bit-identical to the serial build for every thread count
/// (`0` is treated as `1`; counts above the candidate count are capped).
#[must_use]
pub fn retrieve_candidates_threaded<'a>(
    index: &'a SketchIndex,
    query: &CorrelationSketch,
    overlap_candidates: usize,
    threads: usize,
) -> Vec<Candidate<'a>> {
    let hits = index.overlap_candidates(query, overlap_candidates);
    // Estimation is skipped (min_sample usize::MAX): callers of the
    // candidate API estimate themselves.
    join_map(index, query, &hits, threads, usize::MAX, |_, _| None::<f64>)
        .into_iter()
        .map(|(cand, _)| cand)
        .collect()
}

/// Per-worker scratch for the scored stage-2 pass: one [`JoinSample`]
/// buffer refilled per candidate plus the bootstrap resample buffers.
/// Every candidate's output is a pure function of its own join sample,
/// so buffer reuse (and the thread count) never changes a bit of it.
#[derive(Default)]
struct StageScratch {
    sample: JoinSample,
    ci: BootstrapScratch,
}

/// One candidate's stage-2 output: retrieval metadata and the scored
/// estimate — everything ranking needs, with no join sample attached.
#[derive(Debug, Clone, Copy)]
struct ScoredRow {
    doc: DocId,
    overlap: usize,
    sample_size: usize,
    est: Option<ScoredEstimate>,
}

/// Join one contiguous chunk of the hit list into the worker's scratch
/// buffer and estimate + CI each candidate from the buffer's contiguous
/// `x[]`/`y[]` columns.
fn scored_chunk(
    index: &SketchIndex,
    query: &CorrelationSketch,
    chunk: &[(DocId, usize)],
    opts: &QueryOptions,
    scratch: &mut StageScratch,
) -> Vec<ScoredRow> {
    // The admission gate folds in the estimator's honest minimum: a call
    // below it is guaranteed to error, so skipping it changes no output,
    // only spares the doomed invocation — which keeps the planner's
    // invocation accounting honest on both plans.
    let min_sample = opts.min_sample.max(opts.estimator.min_samples());
    chunk
        .iter()
        .filter_map(|&(doc, overlap)| {
            let sketch = index.get(doc)?;
            // Hashers are uniform across an index; join cannot fail.
            join_sketches_into(query, sketch, &mut scratch.sample).ok()?;
            let sample = &scratch.sample;
            let est = (sample.len() >= min_sample)
                .then(|| {
                    scored_estimate(
                        opts.estimator,
                        &sample.x,
                        &sample.y,
                        opts.confidence,
                        &mut scratch.ci,
                    )
                    .ok()
                })
                .flatten();
            Some(ScoredRow {
                doc,
                overlap,
                sample_size: scratch.sample.len(),
                est,
            })
        })
        .collect()
}

/// The fused join + estimate + CI pass over a hit list — the expensive,
/// embarrassingly parallel part, fanned out over scoped threads with
/// deterministic contiguous chunking and one [`StageScratch`] per
/// worker (`scratch` is used directly when the pass runs serially).
fn estimate_hits(
    index: &SketchIndex,
    query: &CorrelationSketch,
    hits: &[(DocId, usize)],
    opts: &QueryOptions,
    threads: usize,
    scratch: &mut StageScratch,
) -> Vec<ScoredRow> {
    let threads = threads.clamp(1, hits.len().max(1));
    if threads == 1 {
        return scored_chunk(index, query, hits, opts, scratch);
    }
    let chunk_len = hits.len().div_ceil(threads);
    let mut out = Vec::with_capacity(hits.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = hits
            .chunks(chunk_len)
            .map(|chunk| {
                scope.spawn(move || {
                    scored_chunk(index, query, chunk, opts, &mut StageScratch::default())
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("query workers do not panic"));
        }
    });
    out
}

/// Stage 2 under the configured plan: either one exhaustive pass with
/// the requested estimator, or the two-pass prune-then-spend pipeline
/// of [`crate::plan`]. Returns the scored rows (in retrieval order,
/// exactly as the exhaustive pass would) plus the plan's execution
/// statistics.
///
/// Two-pass losslessness (module docs of [`crate::plan`] give the full
/// argument): survivors are re-estimated by the same pure function the
/// exhaustive plan runs, and a candidate stays pruned only while its
/// score upper bound is strictly below the k-th best *actual* band
/// score `τ*` — so its exhaustive score (bounded by `ub` at the plan's
/// confidence level) can never reach the top-k. Pruned rows surface
/// with `est: None`; their exhaustive scores lie in `[0, τ*)`, and
/// score 0 keeps them in that range, below every survivor.
fn plan_rows(
    index: &SketchIndex,
    query: &CorrelationSketch,
    hits: &[(DocId, usize)],
    opts: &QueryOptions,
    threads: usize,
    scratch: &mut StageScratch,
    trace: &mut Trace,
) -> (Vec<ScoredRow>, PlanStats) {
    let effective_min = opts.min_sample.max(opts.estimator.min_samples());
    let exhaustive = |scratch: &mut StageScratch, trace: &mut Trace| {
        let guard = trace.begin("estimate");
        let rows = estimate_hits(index, query, hits, opts, threads, scratch);
        trace.end(guard);
        let stats = PlanStats {
            candidates: rows.len(),
            expensive_invocations: rows
                .iter()
                .filter(|r| r.sample_size >= effective_min)
                .count(),
            ..PlanStats::default()
        };
        (rows, stats)
    };
    let Some(pass1_confidence) = opts.plan.pruning_confidence(opts.scorer, opts.estimator) else {
        return exhaustive(scratch, trace);
    };
    // With every candidate in the top-k nothing can be pruned; skip the
    // cheap pass instead of paying for it.
    if hits.len() <= opts.k {
        return exhaustive(scratch, trace);
    }

    // Pass 1: Pearson + Fisher-z CI over every candidate, at the plan's
    // pruning confidence.
    let cheap_opts = QueryOptions {
        estimator: CorrelationEstimator::Pearson,
        confidence: pass1_confidence,
        ..*opts
    };
    let cheap_guard = trace.begin("cheap_pass");
    let cheap = estimate_hits(index, query, hits, &cheap_opts, threads, scratch);
    trace.end(cheap_guard);
    let cheap_min = opts
        .min_sample
        .max(CorrelationEstimator::Pearson.min_samples());
    let cheap_invocations = cheap.iter().filter(|r| r.sample_size >= cheap_min).count();

    // Map each candidate's cheap CI through the scorer: `None` marks a
    // candidate below the expensive admission gate (its estimate is
    // `None` on both plans — settled, no bound needed); a candidate the
    // cheap estimator couldn't score gets `(0, ∞)` and stays contested,
    // so pass 2 treats it exactly as the exhaustive plan would.
    let score_bound = |row: &ScoredRow| -> Option<(f64, f64)> {
        if row.sample_size < effective_min {
            return None;
        }
        Some(
            row.est
                .map_or((0.0, f64::INFINITY), |e| score_bounds(opts.scorer, &e)),
        )
    };
    let bounds: Vec<Option<(f64, f64)>> = cheap.iter().map(score_bound).collect();

    // Seed the band with everyone whose upper bound reaches the k-th
    // best lower bound. Each row's ub ≥ its own lb, so the band starts
    // with at least k admissible candidates (or all of them).
    let lbs: Vec<f64> = bounds.iter().flatten().map(|&(lb, _)| lb).collect();
    let tau_seed = kth_largest(&lbs, opts.k);
    let mut in_band = vec![false; cheap.len()];
    let mut est: Vec<Option<ScoredEstimate>> = vec![None; cheap.len()];
    let mut to_estimate: Vec<usize> = bounds
        .iter()
        .enumerate()
        .filter(|(_, b)| b.is_some_and(|(_, ub)| ub >= tau_seed))
        .map(|(i, _)| i)
        .collect();

    // Pass 2 + promotion fixed point: estimate the band with the
    // requested estimator, recompute the k-th best actual band score
    // τ*, and promote every pruned candidate whose upper bound still
    // reaches it. τ* never decreases as the band grows, so the loop
    // terminates (each round promotes at least one candidate or stops).
    let band_guard = trace.begin("band_estimate");
    let mut rounds = 0usize;
    let tau = loop {
        if !to_estimate.is_empty() {
            let sub_hits: Vec<(DocId, usize)> = to_estimate
                .iter()
                .map(|&i| (cheap[i].doc, cheap[i].overlap))
                .collect();
            let rows = estimate_hits(index, query, &sub_hits, opts, threads, scratch);
            debug_assert_eq!(rows.len(), to_estimate.len(), "band docs are live");
            for (&slot, row) in to_estimate.iter().zip(rows) {
                est[slot] = row.est;
                in_band[slot] = true;
            }
            rounds += 1;
        }
        let band_est: Vec<Option<ScoredEstimate>> = in_band
            .iter()
            .zip(&est)
            .filter(|(&b, _)| b)
            .map(|(_, e)| *e)
            .collect();
        let band_scores = score_estimates(opts.scorer, &band_est);
        let tau = kth_largest(&band_scores, opts.k);
        to_estimate = bounds
            .iter()
            .enumerate()
            .filter(|&(i, b)| !in_band[i] && b.is_some_and(|(_, ub)| ub >= tau))
            .map(|(i, _)| i)
            .collect();
        if to_estimate.is_empty() {
            break tau;
        }
    };
    trace.end(band_guard);

    let band = in_band.iter().filter(|&&b| b).count();
    let admitted = bounds.iter().flatten().count();
    let stats = PlanStats {
        two_pass: true,
        candidates: cheap.len(),
        cheap_invocations,
        expensive_invocations: band,
        pruned: admitted - band,
        promotion_rounds: rounds,
        threshold: tau,
    };
    let rows = cheap
        .into_iter()
        .enumerate()
        .map(|(i, row)| ScoredRow {
            est: if in_band[i] { est[i] } else { None },
            ..row
        })
        .collect();
    (rows, stats)
}

/// Stages 1–2 of the pipeline: retrieve, then estimate under the
/// configured plan.
fn scored_rows(
    index: &SketchIndex,
    query: &CorrelationSketch,
    opts: &QueryOptions,
    trace: &mut Trace,
) -> (Vec<ScoredRow>, PlanStats) {
    let guard = trace.begin("retrieval");
    let hits = index.overlap_candidates(query, opts.overlap_candidates);
    trace.end(guard);
    plan_rows(
        index,
        query,
        &hits,
        opts,
        opts.threads,
        &mut StageScratch::default(),
        trace,
    )
}

/// Join one contiguous chunk of the hit list and apply the `estimate`
/// kernel to each materialized sample, reusing one bootstrap scratch
/// for the whole chunk. Each candidate's output is a pure function of
/// its own join sample, so chunking (and therefore the thread count)
/// never changes a bit of the output.
fn join_chunk<'a, E>(
    index: &'a SketchIndex,
    query: &CorrelationSketch,
    chunk: &[(DocId, usize)],
    min_sample: usize,
    estimate: &(impl Fn(&JoinSample, &mut BootstrapScratch) -> Option<E> + Sync),
    scratch: &mut BootstrapScratch,
) -> Vec<(Candidate<'a>, Option<E>)> {
    chunk
        .iter()
        .filter_map(|&(doc, overlap)| {
            let sketch = index.get(doc)?;
            // Hashers are uniform across an index; join cannot fail.
            let sample = join_sketches(query, sketch).ok()?;
            let est = (sample.len() >= min_sample)
                .then(|| estimate(&sample, scratch))
                .flatten();
            Some((
                Candidate {
                    doc,
                    sketch,
                    overlap,
                    sample,
                },
                est,
            ))
        })
        .collect()
}

/// Stage 2 for an already-retrieved hit list, generic over the estimate
/// kernel (the scored pipeline attaches `ScoredEstimate`s; the
/// custom-closure and candidate APIs use cheaper kernels).
fn join_map<'a, E: Send>(
    index: &'a SketchIndex,
    query: &CorrelationSketch,
    hits: &[(DocId, usize)],
    threads: usize,
    min_sample: usize,
    estimate: impl Fn(&JoinSample, &mut BootstrapScratch) -> Option<E> + Sync,
) -> Vec<(Candidate<'a>, Option<E>)> {
    let threads = threads.clamp(1, hits.len().max(1));
    if threads == 1 {
        return join_chunk(
            index,
            query,
            hits,
            min_sample,
            &estimate,
            &mut BootstrapScratch::new(),
        );
    }
    let chunk_len = hits.len().div_ceil(threads);
    let mut out = Vec::with_capacity(hits.len());
    let estimate = &estimate;
    std::thread::scope(|scope| {
        let handles: Vec<_> = hits
            .chunks(chunk_len)
            .map(|chunk| {
                scope.spawn(move || {
                    join_chunk(
                        index,
                        query,
                        chunk,
                        min_sample,
                        estimate,
                        &mut BootstrapScratch::new(),
                    )
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("query workers do not panic"));
        }
    });
    out
}

/// Execute a top-k join-correlation query with a custom scorer closure
/// (bypassing [`QueryOptions::scorer`]).
///
/// `scorer` maps a candidate and its (optional) correlation estimate to a
/// ranking score; higher is better. Candidates are returned sorted by
/// score (descending, NaN deterministically last, ties broken by overlap
/// then sketch id then doc id), truncated to `opts.k` via bounded-heap
/// selection (the scorer itself runs serially — join and estimation are
/// what `opts.threads` parallelizes).
///
/// The closure consumes only the point estimate, so this path skips the
/// confidence-interval computation entirely (no bootstrap work for the
/// robust estimators) and the returned results carry no CI fields.
#[must_use]
pub fn top_k_with_scorer(
    index: &SketchIndex,
    query: &CorrelationSketch,
    opts: &QueryOptions,
    scorer: impl Fn(&Candidate<'_>, Option<f64>) -> f64,
) -> Vec<QueryResult> {
    let hits = index.overlap_candidates(query, opts.overlap_candidates);
    let joined = join_map(
        index,
        query,
        &hits,
        opts.threads,
        opts.min_sample,
        |s, _| s.estimate(opts.estimator).ok(),
    );
    let rows = joined.into_iter().map(|(cand, est)| {
        let score = scorer(&cand, est);
        QueryResult {
            doc: cand.doc,
            id: cand.sketch.id().to_string(),
            overlap: cand.overlap,
            sample_size: cand.sample.len(),
            estimate: est,
            ci_lo: None,
            ci_hi: None,
            score,
        }
    });
    crate::select::top_k_by(rows, opts.k, result_order)
}

/// One shard-local candidate row for scatter-gather serving: stage-2
/// output (retrieval metadata + scored estimate) with the sketch id
/// resolved, in retrieval order — what a worker ships to the
/// coordinator so [`crate::merge`] can re-rank globally.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardCandidate {
    /// Shard-local document id (positional in the shard's live view).
    pub doc: DocId,
    /// Sketch identifier (`table/key/value`), globally unique across a
    /// partitioned corpus.
    pub id: String,
    /// Sketch-key overlap with the query.
    pub overlap: usize,
    /// Join-sample size.
    pub sample_size: usize,
    /// The scored estimate (point estimate + matched CI), `None` below
    /// the admission gate or for a degenerate sample.
    pub est: Option<ScoredEstimate>,
}

/// The shard-local half of a scatter-gather query: retrieve this
/// shard's top `overlap_candidates` by overlap and estimate **every**
/// one of them with the requested estimator, returning rows in
/// retrieval order (overlap desc, sketch id asc, doc asc).
///
/// This path deliberately ignores [`QueryOptions::plan`] and always
/// estimates exhaustively: shard-local two-pass pruning is *unsound*.
/// Retrieval cuts by overlap but ranking cuts by score, so a shard's
/// candidate list can contain high-score rows that do not survive the
/// global overlap re-cut — those rows inflate the shard's local
/// pruning threshold `τ*` above the global one, and a row another
/// query needs (low score, but globally in the top-k after the re-cut
/// drops the inflated rows) would come back unestimated. Concretely:
/// with `overlap_candidates = 3, k = 1`, a shard holding two
/// high-score/low-overlap rows plus one low-score/high-overlap row
/// prunes the latter locally, yet the global overlap re-cut keeps
/// *only* that row from the shard — the coordinator would then score
/// it 0 and answer wrongly. Early termination instead happens on the
/// coordinator, from score bounds over the merged list
/// ([`crate::merge::merge_shard_candidates`]), where it is
/// unconditionally lossless.
#[must_use]
pub fn shard_candidates(
    index: &SketchIndex,
    query: &CorrelationSketch,
    opts: &QueryOptions,
) -> Vec<ShardCandidate> {
    let hits = index.overlap_candidates(query, opts.overlap_candidates);
    estimate_hits(
        index,
        query,
        &hits,
        opts,
        opts.threads,
        &mut StageScratch::default(),
    )
    .into_iter()
    .map(|row| ShardCandidate {
        doc: row.doc,
        // `scored_chunk` only emits rows for live docs.
        id: index
            .get(row.doc)
            .map(|s| s.id().to_string())
            .unwrap_or_default(),
        overlap: row.overlap,
        sample_size: row.sample_size,
        est: row.est,
    })
    .collect()
}

/// The re-rank stage: score the whole row list with the configured
/// scorer (list-level — `s4` normalizes CI lengths across the list) and
/// keep the top `opts.k` via bounded-heap selection. Sketch ids are
/// resolved here, for ranking's tie-break and the returned results.
fn rank_rows(index: &SketchIndex, rows: Vec<ScoredRow>, opts: &QueryOptions) -> Vec<QueryResult> {
    let estimates: Vec<Option<ScoredEstimate>> = rows.iter().map(|r| r.est).collect();
    let scores = score_estimates(opts.scorer, &estimates);
    let items = rows
        .into_iter()
        .zip(scores)
        .map(|(row, score)| QueryResult {
            doc: row.doc,
            // `scored_chunk` only emits rows for live docs.
            id: index
                .get(row.doc)
                .map(|s| s.id().to_string())
                .unwrap_or_default(),
            overlap: row.overlap,
            sample_size: row.sample_size,
            estimate: row.est.map(|e| e.estimate),
            ci_lo: row.est.map(|e| e.ci_lo),
            ci_hi: row.est.map(|e| e.ci_hi),
            score,
        });
    crate::select::top_k_by(items, opts.k, result_order)
}

/// The ranking's total order: descending score with NaN ranked last —
/// a degenerate candidate (constant column → undefined correlation →
/// NaN through a custom scorer) sorts deterministically to the bottom
/// instead of poisoning the selection heap — then descending overlap,
/// then ascending sketch id (insertion-order independent), then doc id
/// (reachable only through duplicate ids).
pub(crate) fn result_order(a: &QueryResult, b: &QueryResult) -> std::cmp::Ordering {
    desc_score_nan_last(a.score, b.score)
        .then(b.overlap.cmp(&a.overlap))
        .then_with(|| a.id.cmp(&b.id))
        .then(a.doc.cmp(&b.doc))
}

/// Execute a top-k join-correlation query ranked by
/// [`QueryOptions::scorer`] — by default `s1`, the absolute correlation
/// estimate (negative correlations count as much as positive ones);
/// `s2`–`s4` penalize uncertain estimates by their confidence interval.
/// Candidates without an estimate score zero.
#[must_use]
pub fn top_k_join_correlation(
    index: &SketchIndex,
    query: &CorrelationSketch,
    opts: &QueryOptions,
) -> Vec<QueryResult> {
    top_k_with_plan_stats(index, query, opts).0
}

/// As [`top_k_join_correlation`], also returning the plan's execution
/// statistics (estimator invocations per pass, pruned candidates,
/// promotion rounds) — the observability hook the planner benches and
/// the lossless-pruning oracle are built on. The ranked results are
/// bit-identical to [`top_k_join_correlation`] under the same options.
#[must_use]
pub fn top_k_with_plan_stats(
    index: &SketchIndex,
    query: &CorrelationSketch,
    opts: &QueryOptions,
) -> (Vec<QueryResult>, PlanStats) {
    let (rows, stats) = scored_rows(index, query, opts, &mut Trace::disabled());
    (rank_rows(index, rows, opts), stats)
}

/// A query result together with the full uncertainty report of
/// [`correlation_sketches::JoinSample::report`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReportedResult {
    /// The ranked result.
    pub result: QueryResult,
    /// Estimate + Hoeffding CI + HFD length + Fisher SE; `None` when the
    /// join sample was too small or degenerate.
    pub report: Option<correlation_sketches::EstimateReport>,
}

/// As [`top_k_join_correlation`], but each answer carries the Section 4
/// uncertainty report (Hoeffding interval, HFD length, Fisher SE) so a
/// caller can display confidence alongside the estimate — and, on the
/// result itself, the `(estimate, ci_lo, ci_hi)` triple the ranking
/// scorer consumed.
///
/// The stage-2 pass never materializes per-candidate samples, so report
/// construction re-joins just the `opts.k` winners into one reused
/// buffer — `k` extra merge walks instead of `overlap_candidates` sample
/// allocations, the cheaper side of the trade at every realistic
/// `k ≪ overlap_candidates`.
#[must_use]
pub fn top_k_with_reports(
    index: &SketchIndex,
    query: &CorrelationSketch,
    opts: &QueryOptions,
    alpha: f64,
) -> Vec<ReportedResult> {
    top_k_with_reports_traced(index, query, opts, alpha, &mut Trace::disabled()).0
}

/// As [`top_k_with_reports`], recording stage spans (`retrieval`, then
/// `estimate` or `cheap_pass`/`band_estimate` depending on the plan,
/// `rank`, `reports`) and the [`PlanStats`] notes into `trace`, and
/// returning the plan statistics alongside the answers. With a
/// disabled trace this is exactly [`top_k_with_reports`] — the ranked
/// bytes are bit-identical either way, which is what lets a server
/// answer traced and untraced requests from one cache entry.
#[must_use]
pub fn top_k_with_reports_traced(
    index: &SketchIndex,
    query: &CorrelationSketch,
    opts: &QueryOptions,
    alpha: f64,
    trace: &mut Trace,
) -> (Vec<ReportedResult>, PlanStats) {
    let (rows, stats) = scored_rows(index, query, opts, trace);
    note_plan_stats(trace, &stats);
    let rank_guard = trace.begin("rank");
    let results = rank_rows(index, rows, opts);
    trace.end(rank_guard);
    let report_guard = trace.begin("reports");
    let mut sample = JoinSample::default();
    let reported = results
        .into_iter()
        .map(|result| attach_report(index, query, result, opts, alpha, &mut sample))
        .collect();
    trace.end(report_guard);
    (reported, stats)
}

/// Fold the planner's execution statistics into a trace's notes.
fn note_plan_stats(trace: &mut Trace, stats: &PlanStats) {
    if !trace.is_enabled() {
        return;
    }
    trace.note("plan_two_pass", u64::from(stats.two_pass));
    trace.note("plan_candidates", stats.candidates as u64);
    trace.note("plan_cheap_invocations", stats.cheap_invocations as u64);
    trace.note(
        "plan_expensive_invocations",
        stats.expensive_invocations as u64,
    );
    trace.note("plan_pruned", stats.pruned as u64);
    trace.note("plan_promotion_rounds", stats.promotion_rounds as u64);
}

/// Attach the Section 4 uncertainty report to a ranked result, re-joining
/// the winner's sketch into the reused `sample` buffer — the one place
/// the report gate (`min_sample`, degenerate-sample `ok()`) lives, so the
/// single-query and batch paths can never drift apart.
fn attach_report(
    index: &SketchIndex,
    query: &CorrelationSketch,
    result: QueryResult,
    opts: &QueryOptions,
    alpha: f64,
    sample: &mut JoinSample,
) -> ReportedResult {
    let report = report_for_doc(index, query, result.doc, opts, alpha, sample);
    ReportedResult { result, report }
}

/// The Section 4 uncertainty report for one document: re-join its
/// sketch with the query into the reused `sample` buffer and build the
/// report, under exactly the gate the ranked paths apply (`min_sample`,
/// degenerate-sample `ok()`). Public so a sharded worker can answer
/// report fetches for coordinator-chosen winners with bytes identical
/// to what [`top_k_with_reports`] would attach single-process.
#[must_use]
pub fn report_for_doc(
    index: &SketchIndex,
    query: &CorrelationSketch,
    doc: DocId,
    opts: &QueryOptions,
    alpha: f64,
    sample: &mut JoinSample,
) -> Option<correlation_sketches::EstimateReport> {
    index
        .get(doc)
        .and_then(|sketch| join_sketches_into(query, sketch, sample).ok())
        .and_then(|()| {
            (sample.len() >= opts.min_sample)
                .then(|| sample.report(opts.estimator, alpha).ok())
                .flatten()
        })
}

/// Per-worker scratch for the batch path: the retrieval counter buffer
/// plus the stage-2 join + bootstrap buffers, all reused across every
/// query of the worker's chunk.
#[derive(Default)]
struct BatchScratch {
    counts: Vec<u32>,
    stage: StageScratch,
}

/// One query of a batch, executed serially with reusable worker scratch,
/// ranked by [`QueryOptions::scorer`].
fn batch_one(
    index: &SketchIndex,
    query: &CorrelationSketch,
    opts: &QueryOptions,
    scratch: &mut BatchScratch,
) -> (Vec<QueryResult>, PlanStats) {
    let hits =
        index.overlap_candidates_with_scratch(query, opts.overlap_candidates, &mut scratch.counts);
    // Joins run serial within a batched query (the batch fans out over
    // queries); plan_rows is thread-count invariant, so the answer is
    // still bit-identical to the single-query path. Per-query tracing is
    // off here — batch workers run concurrently and a trace records from
    // one thread; the batch entry points record batch-level spans and
    // fold the per-query plan stats instead.
    let (rows, stats) = plan_rows(
        index,
        query,
        &hits,
        opts,
        1,
        &mut scratch.stage,
        &mut Trace::disabled(),
    );
    (rank_rows(index, rows, opts), stats)
}

/// Fan a per-query closure out over contiguous chunks of `queries` —
/// deterministic for every thread count, with one scratch per worker.
fn batch_map<T: Send>(
    queries: &[CorrelationSketch],
    threads: usize,
    run_one: impl Fn(&CorrelationSketch, &mut BatchScratch) -> T + Sync,
) -> Vec<T> {
    let threads = threads.clamp(1, queries.len().max(1));
    if threads == 1 {
        let mut scratch = BatchScratch::default();
        return queries.iter().map(|q| run_one(q, &mut scratch)).collect();
    }
    let chunk_len = queries.len().div_ceil(threads);
    let mut out = Vec::with_capacity(queries.len());
    let run_one = &run_one;
    std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .chunks(chunk_len)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut scratch = BatchScratch::default();
                    chunk
                        .iter()
                        .map(|q| run_one(q, &mut scratch))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("batch query workers do not panic"));
        }
    });
    out
}

/// Execute many top-k join-correlation queries as one batch.
///
/// Answer `i` corresponds to `queries[i]` and is bit-identical to
/// `top_k_join_correlation(index, &queries[i], opts)` — but the batch
/// amortizes work across queries: `opts.threads` fans out over *queries*
/// (contiguous chunks, like the single-query join fan-out) and each
/// worker reuses one retrieval counter buffer for its whole chunk
/// instead of allocating per query. Deterministic for every thread
/// count.
#[must_use]
pub fn top_k_batch(
    index: &SketchIndex,
    queries: &[CorrelationSketch],
    opts: &QueryOptions,
) -> Vec<Vec<QueryResult>> {
    batch_map(queries, opts.threads, |query, scratch| {
        batch_one(index, query, opts, scratch).0
    })
}

/// As [`top_k_batch`], with each answer carrying the Section 4
/// uncertainty report — bit-identical to looping
/// [`top_k_with_reports`] over `queries`.
#[must_use]
pub fn top_k_batch_with_reports(
    index: &SketchIndex,
    queries: &[CorrelationSketch],
    opts: &QueryOptions,
    alpha: f64,
) -> Vec<Vec<ReportedResult>> {
    top_k_batch_with_reports_traced(index, queries, opts, alpha, &mut Trace::disabled()).0
}

/// As [`top_k_batch_with_reports`], recording one `batch_execute` span
/// plus the batch's *summed* [`PlanStats`] notes into `trace` (batch
/// workers run concurrently, so per-query spans are not recorded), and
/// returning those summed statistics. The answers are bit-identical to
/// [`top_k_batch_with_reports`].
#[must_use]
pub fn top_k_batch_with_reports_traced(
    index: &SketchIndex,
    queries: &[CorrelationSketch],
    opts: &QueryOptions,
    alpha: f64,
    trace: &mut Trace,
) -> (Vec<Vec<ReportedResult>>, PlanStats) {
    let guard = trace.begin("batch_execute");
    let per_query = batch_map(queries, opts.threads, |query, scratch| {
        let (results, stats) = batch_one(index, query, opts, scratch);
        let reported: Vec<ReportedResult> = results
            .into_iter()
            .map(|result| {
                attach_report(index, query, result, opts, alpha, &mut scratch.stage.sample)
            })
            .collect();
        (reported, stats)
    });
    trace.end(guard);
    let mut total = PlanStats::default();
    let answers = per_query
        .into_iter()
        .map(|(reported, stats)| {
            total.absorb(&stats);
            reported
        })
        .collect();
    note_plan_stats(trace, &total);
    (answers, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use correlation_sketches::{SketchBuilder, SketchConfig};
    use sketch_table::ColumnPair;

    /// Corpus with one strongly correlated, one anti-correlated, one
    /// noisy, and one non-joinable column.
    fn fixture() -> (SketchIndex, CorrelationSketch) {
        let b = SketchBuilder::new(SketchConfig::with_size(256));
        let n = 3_000usize;
        let keys: Vec<String> = (0..n).map(|i| format!("key-{i}")).collect();
        let signal: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.05).sin() * 10.0).collect();

        let query = b.build(&ColumnPair::new(
            "query",
            "k",
            "v",
            keys.clone(),
            signal.clone(),
        ));

        let mut idx = SketchIndex::new();
        idx.insert(b.build(&ColumnPair::new(
            "positive",
            "k",
            "v",
            keys.clone(),
            signal.iter().map(|v| 3.0 * v + 1.0).collect(),
        )))
        .unwrap();
        idx.insert(b.build(&ColumnPair::new(
            "negative",
            "k",
            "v",
            keys.clone(),
            signal.iter().map(|v| -2.0 * v).collect(),
        )))
        .unwrap();
        idx.insert(
            b.build(&ColumnPair::new(
                "noise",
                "k",
                "v",
                keys.clone(),
                (0..n)
                    .map(|i| ((i * 2_654_435_761) % 1_000) as f64)
                    .collect(),
            )),
        )
        .unwrap();
        idx.insert(b.build(&ColumnPair::new(
            "disjoint",
            "k",
            "v",
            (0..n).map(|i| format!("other-{i}")).collect(),
            signal.clone(),
        )))
        .unwrap();
        (idx, query)
    }

    #[test]
    fn correlated_columns_rank_above_noise() {
        let (idx, q) = fixture();
        let results = top_k_join_correlation(&idx, &q, &QueryOptions::default());
        assert_eq!(results.len(), 3, "disjoint table must not be retrieved");
        let names: Vec<&str> = results.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(names[2], "noise/k/v", "noise must rank last: {names:?}");
        assert!(results[0].estimate.unwrap().abs() > 0.95);
        assert!(results[1].estimate.unwrap().abs() > 0.95);
        assert!(results[2].estimate.unwrap().abs() < 0.3);
    }

    #[test]
    fn negative_correlation_ranks_high() {
        let (idx, q) = fixture();
        let results = top_k_join_correlation(&idx, &q, &QueryOptions::default());
        let neg = results.iter().find(|r| r.id == "negative/k/v").unwrap();
        assert!(neg.estimate.unwrap() < -0.95);
        assert!(neg.score > 0.9, "abs() scoring must rank it high");
    }

    #[test]
    fn k_truncation_and_candidate_limit() {
        let (idx, q) = fixture();
        let opts = QueryOptions {
            k: 1,
            ..Default::default()
        };
        assert_eq!(top_k_join_correlation(&idx, &q, &opts).len(), 1);

        let opts = QueryOptions {
            overlap_candidates: 2,
            ..Default::default()
        };
        assert_eq!(top_k_join_correlation(&idx, &q, &opts).len(), 2);
    }

    #[test]
    fn min_sample_gate_suppresses_estimates() {
        let (idx, q) = fixture();
        let opts = QueryOptions {
            min_sample: 10_000, // nothing can reach this
            ..Default::default()
        };
        for r in top_k_join_correlation(&idx, &q, &opts) {
            assert!(r.estimate.is_none());
            assert_eq!(r.score, 0.0);
        }
    }

    #[test]
    fn custom_scorer_changes_order() {
        let (idx, q) = fixture();
        // Score by overlap only: ranking degenerates to retrieval order.
        let results = top_k_with_scorer(&idx, &q, &QueryOptions::default(), |cand, _| {
            cand.overlap as f64
        });
        assert!(results[0].overlap >= results[1].overlap);
    }

    #[test]
    fn retrieve_candidates_exposes_samples() {
        let (idx, q) = fixture();
        let cands = retrieve_candidates(&idx, &q, 100);
        assert_eq!(cands.len(), 3);
        for c in &cands {
            assert_eq!(c.sample.len(), c.overlap);
            assert!(!c.sample.is_empty());
        }
    }

    #[test]
    fn reports_accompany_results() {
        let (idx, q) = fixture();
        let reported = top_k_with_reports(&idx, &q, &QueryOptions::default(), 0.05);
        assert_eq!(reported.len(), 3);
        for r in &reported {
            let rep = r.report.as_ref().expect("large samples have reports");
            assert_eq!(rep.sample_size, r.result.sample_size);
            assert_eq!(Some(rep.estimate), r.result.estimate);
            assert!(rep.hoeffding.contains(rep.estimate));
            assert!(rep.fisher_se > 0.0);
        }
    }

    /// A larger corpus for the parallel-determinism tests: many tables
    /// with staggered key ranges and varied signals.
    fn wide_fixture(tables: usize) -> (SketchIndex, CorrelationSketch) {
        let b = SketchBuilder::new(SketchConfig::with_size(128));
        let n = 800usize;
        let query = b.build(&ColumnPair::new(
            "query",
            "k",
            "v",
            (0..n).map(|i| format!("key-{i}")).collect(),
            (0..n).map(|i| ((i as f64) * 0.11).sin() * 5.0).collect(),
        ));
        let mut idx = SketchIndex::new();
        for t in 0..tables {
            let lo = (t * 37) % 500;
            idx.insert(
                b.build(&ColumnPair::new(
                    format!("t{t}"),
                    "k",
                    "v",
                    (lo..lo + n).map(|i| format!("key-{i}")).collect(),
                    (lo..lo + n)
                        .map(|i| ((i as f64) * 0.11 + t as f64).sin() * (t + 1) as f64)
                        .collect(),
                )),
            )
            .unwrap();
        }
        (idx, query)
    }

    #[test]
    fn parallel_query_identical_to_serial_for_every_thread_count() {
        let (idx, q) = wide_fixture(40);
        let serial = QueryOptions {
            k: 15,
            threads: 1,
            ..Default::default()
        };
        let expected = top_k_join_correlation(&idx, &q, &serial);
        assert!(expected.len() >= 10);
        // 0 (treated as 1), several in-range counts, and counts far above
        // the candidate count must all be bit-identical.
        for threads in [0usize, 2, 3, 7, 16, 1000] {
            let opts = QueryOptions { threads, ..serial };
            assert_eq!(
                top_k_join_correlation(&idx, &q, &opts),
                expected,
                "threads={threads}"
            );
            let reports = top_k_with_reports(&idx, &q, &opts, 0.05);
            let serial_reports = top_k_with_reports(&idx, &q, &serial, 0.05);
            assert_eq!(reports, serial_reports, "reports, threads={threads}");
        }
    }

    #[test]
    fn parallel_retrieve_candidates_identical_to_serial() {
        let (idx, q) = wide_fixture(25);
        let serial = retrieve_candidates(&idx, &q, 100);
        for threads in [0usize, 2, 5, 64] {
            let par = retrieve_candidates_threaded(&idx, &q, 100, threads);
            assert_eq!(par.len(), serial.len(), "threads={threads}");
            for (a, b) in serial.iter().zip(&par) {
                assert_eq!(a.doc, b.doc);
                assert_eq!(a.overlap, b.overlap);
                assert_eq!(a.sample, b.sample);
            }
        }
    }

    #[test]
    fn fused_reports_equal_prefusion_recomputation() {
        let (idx, q) = fixture();
        let opts = QueryOptions::default();
        let fused = top_k_with_reports(&idx, &q, &opts, 0.05);
        // The pre-fusion implementation ranked first, then re-joined and
        // re-estimated every winner; reproduce it literally.
        let prefusion: Vec<ReportedResult> = top_k_join_correlation(&idx, &q, &opts)
            .into_iter()
            .map(|result| {
                let report = idx
                    .get(result.doc)
                    .and_then(|sketch| correlation_sketches::join_sketches(&q, sketch).ok())
                    .filter(|s| s.len() >= opts.min_sample)
                    .and_then(|s| s.report(opts.estimator, 0.05).ok());
                ReportedResult { result, report }
            })
            .collect();
        assert_eq!(fused, prefusion);
    }

    #[test]
    fn queries_skip_removed_docs() {
        let (mut idx, q) = wide_fixture(12);
        // k above the corpus size so no truncation masks the removal.
        let opts = QueryOptions {
            k: 50,
            ..Default::default()
        };
        let full = top_k_join_correlation(&idx, &q, &opts);
        let removed_id = full[0].id.clone();
        assert!(idx.remove(&removed_id));
        let after = top_k_join_correlation(&idx, &q, &opts);
        assert!(after.iter().all(|r| r.id != removed_id));
        assert_eq!(after.len(), full.len() - 1);
        // The surviving results keep their relative order, with doc ids
        // renumbered exactly as a rebuild over the survivors would.
        let surviving: Vec<&str> = full.iter().skip(1).map(|r| r.id.as_str()).collect();
        let after_ids: Vec<&str> = after.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(after_ids, surviving);
    }

    #[test]
    fn empty_index_gives_empty_results() {
        let b = SketchBuilder::new(SketchConfig::with_size(16));
        let q = b.build(&ColumnPair::new("q", "k", "v", vec!["a".into()], vec![1.0]));
        let idx = SketchIndex::new();
        assert!(top_k_join_correlation(&idx, &q, &QueryOptions::default()).is_empty());
    }

    #[test]
    fn ci_fields_accompany_estimates() {
        let (idx, q) = fixture();
        let results = top_k_join_correlation(&idx, &q, &QueryOptions::default());
        assert!(!results.is_empty());
        for r in &results {
            let (est, lo, hi) = (r.estimate.unwrap(), r.ci_lo.unwrap(), r.ci_hi.unwrap());
            assert!(lo <= est && est <= hi, "{r:?}");
            assert!(lo >= -1.0 && hi <= 1.0, "{r:?}");
        }
        // Below min_sample the CI disappears along with the estimate.
        let opts = QueryOptions {
            min_sample: 10_000,
            ..QueryOptions::default()
        };
        for r in top_k_join_correlation(&idx, &q, &opts) {
            assert!(r.estimate.is_none() && r.ci_lo.is_none() && r.ci_hi.is_none());
        }
    }

    #[test]
    fn every_scorer_is_bit_identical_across_thread_counts() {
        let (idx, q) = wide_fixture(30);
        for scorer in Scorer::ALL {
            for estimator in [
                CorrelationEstimator::Pearson,
                CorrelationEstimator::Spearman,
            ] {
                let serial = QueryOptions {
                    k: 12,
                    scorer,
                    estimator,
                    confidence: 0.9,
                    threads: 1,
                    ..QueryOptions::default()
                };
                let expected = top_k_with_reports(&idx, &q, &serial, 0.05);
                assert!(!expected.is_empty());
                for threads in [0usize, 2, 7, 16, 1000] {
                    let opts = QueryOptions { threads, ..serial };
                    assert_eq!(
                        top_k_with_reports(&idx, &q, &opts, 0.05),
                        expected,
                        "scorer={scorer} estimator={estimator} threads={threads}"
                    );
                }
            }
        }
    }

    /// The Section 4 story at engine level: a candidate whose tiny join
    /// sample happens to look perfectly correlated outranks a genuinely
    /// correlated candidate under the raw point estimate (`s1`), and the
    /// CI-aware scorers demote it.
    #[test]
    fn ci_aware_scorers_demote_small_sample_flukes() {
        let b = SketchBuilder::new(SketchConfig::with_size(256));
        let n = 3_000usize;
        let keys: Vec<String> = (0..n).map(|i| format!("key-{i}")).collect();
        let signal: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.05).sin() * 10.0).collect();
        let query = b.build(&ColumnPair::new(
            "query",
            "k",
            "v",
            keys.clone(),
            signal.clone(),
        ));

        let mut idx = SketchIndex::new();
        // Genuine: strong but imperfect correlation, large overlap.
        idx.insert(
            b.build(&ColumnPair::new(
                "genuine",
                "k",
                "v",
                keys.clone(),
                signal
                    .iter()
                    .enumerate()
                    .map(|(i, v)| 2.0 * v + ((i as f64) * 1.7).cos() * 4.0)
                    .collect(),
            )),
        )
        .unwrap();
        // Fluke: joins on only 4 keys, and on those 4 the values happen
        // to be a perfect linear function of the query's. The keys are
        // picked among the smallest unit hashes so the query sketch is
        // guaranteed to have kept them (kmv keeps the m smallest).
        use sketch_hashing::KeyHasher as _;
        let hasher = SketchConfig::with_size(256).hasher;
        let mut by_unit: Vec<(f64, usize)> = (0..n)
            .map(|i| (hasher.g(keys[i].as_bytes()).1, i))
            .collect();
        by_unit.sort_by(|a, b| a.0.total_cmp(&b.0));
        let picked: Vec<usize> = by_unit[..4].iter().map(|&(_, i)| i).collect();
        let fluke_keys: Vec<String> = picked.iter().map(|&i| keys[i].clone()).collect();
        let fluke_vals: Vec<f64> = picked.iter().map(|&i| signal[i] * 5.0 + 1.0).collect();
        idx.insert(b.build(&ColumnPair::new("fluke", "k", "v", fluke_keys, fluke_vals)))
            .unwrap();

        let run = |scorer| {
            let opts = QueryOptions {
                scorer,
                ..QueryOptions::default()
            };
            top_k_join_correlation(&idx, &query, &opts)
                .first()
                .map(|r| r.id.clone())
                .unwrap()
        };
        assert_eq!(run(Scorer::S1), "fluke/k/v", "s1 falls for the fluke");
        for scorer in [Scorer::S2, Scorer::S3, Scorer::S4] {
            assert_eq!(run(scorer), "genuine/k/v", "{scorer} must demote the fluke");
        }
    }

    /// Regression for the NaN-poisoning bug class: constant-value
    /// columns (undefined correlation) and a custom scorer that returns
    /// NaN must rank last deterministically — never first, never a
    /// panic.
    #[test]
    fn constant_columns_and_nan_scores_rank_last() {
        let b = SketchBuilder::new(SketchConfig::with_size(128));
        let n = 500usize;
        let keys: Vec<String> = (0..n).map(|i| format!("key-{i}")).collect();
        let signal: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.11).sin() * 3.0).collect();
        let query = b.build(&ColumnPair::new(
            "q",
            "k",
            "v",
            keys.clone(),
            signal.clone(),
        ));

        let mut idx = SketchIndex::new();
        idx.insert(b.build(&ColumnPair::new(
            "good",
            "k",
            "v",
            keys.clone(),
            signal.iter().map(|v| v * 2.0).collect(),
        )))
        .unwrap();
        // Two constant columns: join succeeds, correlation is undefined.
        for name in ["flat-a", "flat-b"] {
            idx.insert(b.build(&ColumnPair::new(name, "k", "v", keys.clone(), vec![7.0; n])))
                .unwrap();
        }

        for scorer in Scorer::ALL {
            let opts = QueryOptions {
                scorer,
                ..QueryOptions::default()
            };
            let results = top_k_join_correlation(&idx, &query, &opts);
            assert_eq!(results.len(), 3, "{scorer}");
            assert_eq!(results[0].id, "good/k/v", "{scorer}: {results:?}");
            for dead in &results[1..] {
                assert!(dead.estimate.is_none(), "{scorer}: {dead:?}");
                assert_eq!(dead.score, 0.0, "{scorer}: {dead:?}");
            }
            // Constant columns tie at score 0; the order among them must
            // be the deterministic id tie-break.
            assert_eq!(results[1].id, "flat-a/k/v");
            assert_eq!(results[2].id, "flat-b/k/v");
        }

        // A hostile custom scorer that emits NaN for the healthy column:
        // NaN ranks below every real score, results never panic.
        let nan_for_good = |cand: &Candidate<'_>, est: Option<f64>| {
            if cand.sketch.id().starts_with("good") {
                f64::NAN
            } else {
                est.map_or(-1.0, f64::abs)
            }
        };
        let results = top_k_with_scorer(&idx, &query, &QueryOptions::default(), nan_for_good);
        assert_eq!(results.len(), 3);
        assert_eq!(
            results[2].id, "good/k/v",
            "NaN score must sort last: {results:?}"
        );
        assert!(results[2].score.is_nan());
    }

    /// The planner's headline contract on a deterministic corpus:
    /// two-pass answers are bit-identical to exhaustive for every
    /// prunable scorer × surrogate estimator, while invoking the
    /// expensive estimator on strictly fewer candidates.
    #[test]
    fn two_pass_plan_is_lossless_and_cheaper() {
        let (idx, q) = wide_fixture(40);
        for scorer in [Scorer::S1, Scorer::S2, Scorer::S3] {
            for estimator in [
                CorrelationEstimator::Qn,
                CorrelationEstimator::Pm1Bootstrap { seed: 0x5eed },
            ] {
                let base = QueryOptions {
                    k: 5,
                    scorer,
                    estimator,
                    ..QueryOptions::default()
                };
                let (expected, ex_stats) = top_k_with_plan_stats(&idx, &q, &base);
                let two = QueryOptions {
                    plan: PlanMode::two_pass(),
                    ..base
                };
                let (got, stats) = top_k_with_plan_stats(&idx, &q, &two);
                assert_eq!(got, expected, "{scorer}/{estimator}");
                assert!(stats.two_pass, "{scorer}/{estimator}");
                assert!(
                    stats.expensive_invocations < ex_stats.expensive_invocations,
                    "{scorer}/{estimator}: {stats:?} vs exhaustive {ex_stats:?}"
                );
                assert_eq!(
                    stats.pruned + stats.expensive_invocations,
                    ex_stats.expensive_invocations,
                    "{scorer}/{estimator}: every admitted candidate is banded or pruned"
                );
                assert!(stats.threshold > 0.0, "{scorer}/{estimator}: {stats:?}");
                // Reports ride the same plan.
                assert_eq!(
                    top_k_with_reports(&idx, &q, &two, 0.05),
                    top_k_with_reports(&idx, &q, &base, 0.05),
                    "{scorer}/{estimator}: reports"
                );
            }
        }
    }

    /// The fallback cases run exhaustively — and say so in the stats.
    #[test]
    fn two_pass_falls_back_where_pruning_cannot_be_lossless() {
        let (idx, q) = wide_fixture(25);
        let cases = [
            (Scorer::S4, CorrelationEstimator::Qn), // list-level normalization
            (Scorer::S1, CorrelationEstimator::DistanceCorrelation), // no surrogate
            (Scorer::S1, CorrelationEstimator::Pearson), // cheap == expensive
        ];
        for (scorer, estimator) in cases {
            let base = QueryOptions {
                k: 5,
                scorer,
                estimator,
                ..QueryOptions::default()
            };
            let two = QueryOptions {
                plan: PlanMode::two_pass(),
                ..base
            };
            let (got, stats) = top_k_with_plan_stats(&idx, &q, &two);
            assert_eq!(
                got,
                top_k_join_correlation(&idx, &q, &base),
                "{scorer}/{estimator}"
            );
            assert!(!stats.two_pass, "{scorer}/{estimator}: {stats:?}");
            assert_eq!(stats.cheap_invocations, 0);
            assert_eq!(stats.pruned, 0);
        }
    }

    /// Thread-count invariance extends to the planner: the two-pass
    /// answer and its statistics are bit-identical for every thread
    /// count, and the batch path matches the single-query path.
    #[test]
    fn two_pass_plan_is_thread_count_invariant() {
        let (idx, q) = wide_fixture(40);
        let serial = QueryOptions {
            k: 6,
            scorer: Scorer::S2,
            estimator: CorrelationEstimator::Qn,
            plan: PlanMode::two_pass(),
            threads: 1,
            ..QueryOptions::default()
        };
        let (expected, expected_stats) = top_k_with_plan_stats(&idx, &q, &serial);
        assert!(expected_stats.pruned > 0, "{expected_stats:?}");
        for threads in [0usize, 2, 7, 16, 1000] {
            let opts = QueryOptions { threads, ..serial };
            let (got, stats) = top_k_with_plan_stats(&idx, &q, &opts);
            assert_eq!(got, expected, "threads={threads}");
            assert_eq!(stats, expected_stats, "threads={threads}");
            let batch = top_k_batch(&idx, std::slice::from_ref(&q), &opts);
            assert_eq!(batch, vec![expected.clone()], "batch, threads={threads}");
        }
    }

    /// k at (or above) the candidate count leaves nothing to prune: the
    /// planner must skip the cheap pass instead of paying for it.
    #[test]
    fn two_pass_with_k_covering_all_candidates_skips_pass_one() {
        let (idx, q) = fixture();
        let opts = QueryOptions {
            k: 50,
            estimator: CorrelationEstimator::Qn,
            plan: PlanMode::two_pass(),
            ..QueryOptions::default()
        };
        let (got, stats) = top_k_with_plan_stats(&idx, &q, &opts);
        let base = QueryOptions {
            plan: PlanMode::Exhaustive,
            ..opts
        };
        assert_eq!(got, top_k_join_correlation(&idx, &q, &base));
        assert!(!stats.two_pass);
        assert_eq!(stats.cheap_invocations, 0);
    }

    /// The truncation-boundary permutation test, end to end: build the
    /// same corpus under several insertion orders, with more exact-tie
    /// candidates than `overlap_candidates` admits, and assert the
    /// ranked answers and reports are identical (doc ids are positional
    /// by design, so results are compared by sketch id).
    #[test]
    fn answers_are_insertion_order_independent_at_the_cutoff() {
        let b = SketchBuilder::new(SketchConfig::with_size(64));
        let n = 200usize;
        let keys: Vec<String> = (0..n).map(|i| format!("key-{i}")).collect();
        let query = b.build(&ColumnPair::new(
            "q",
            "k",
            "v",
            keys.clone(),
            (0..n).map(|i| ((i as f64) * 0.21).sin() * 4.0).collect(),
        ));
        // Ten sketches over the *same* key set (identical overlap with
        // the query), distinct signals; the candidate cutoff admits 6.
        let names: Vec<String> = (0..10).map(|t| format!("t{t}")).collect();
        let build_one = |name: &str| {
            let t: usize = name[1..].parse().unwrap();
            b.build(&ColumnPair::new(
                name,
                "k",
                "v",
                keys.clone(),
                (0..n)
                    .map(|i| ((i as f64) * 0.21 + t as f64).sin() * (t + 1) as f64)
                    .collect(),
            ))
        };
        let opts = QueryOptions {
            overlap_candidates: 6,
            k: 6,
            scorer: Scorer::S4,
            ..QueryOptions::default()
        };

        let project =
            |rep: Vec<ReportedResult>| -> Vec<(String, usize, usize, Option<f64>, f64, _)> {
                rep.into_iter()
                    .map(|r| {
                        (
                            r.result.id,
                            r.result.overlap,
                            r.result.sample_size,
                            r.result.estimate,
                            r.result.score,
                            r.report,
                        )
                    })
                    .collect()
            };

        let mut expected = None;
        for rot in 0..names.len() {
            let mut order = names.clone();
            order.rotate_left(rot);
            if rot % 3 == 1 {
                order.reverse();
            }
            let idx = SketchIndex::from_sketches(order.iter().map(|name| build_one(name))).unwrap();
            let got = project(top_k_with_reports(&idx, &query, &opts, 0.05));
            assert_eq!(got.len(), 6);
            match &expected {
                None => expected = Some(got),
                Some(want) => assert_eq!(&got, want, "insertion order {order:?}"),
            }
        }
    }
}
