//! Bounded top-k selection.
//!
//! Both retrieval (`overlap_candidates`) and ranking (`top_k_with_scorer`)
//! keep only `k` winners out of a much larger candidate stream. A full
//! sort is `O(n log n)` over everything including the discarded tail;
//! selecting through a size-`k` binary heap is `O(n log k)` and touches
//! the tail exactly once. The comparator is a closure (total order), so
//! callers don't need `Ord` wrapper types.

use std::cmp::Ordering;

/// Select the `k` smallest items under `cmp` (i.e. `cmp(a, b) == Less`
/// means `a` ranks ahead of `b`), returned in ascending `cmp` order —
/// identical to `sort_by(cmp); truncate(k)` for any total order, at
/// `O(n log k)`.
pub(crate) fn top_k_by<T>(
    items: impl IntoIterator<Item = T>,
    k: usize,
    cmp: impl Fn(&T, &T) -> Ordering,
) -> Vec<T> {
    if k == 0 {
        return Vec::new();
    }
    // `heap` is a max-heap under `cmp`: the root is the *worst* item
    // currently kept, ready to be displaced. The pre-allocation is a
    // hint capped well below `k`, which may be attacker-controlled
    // (e.g. a served query's `candidates`) — an absurd `k` must not
    // become a huge allocation before the first item arrives.
    let mut heap: Vec<T> = Vec::with_capacity(k.saturating_add(1).min(4096));
    for item in items {
        if heap.len() < k {
            heap.push(item);
            sift_up(&mut heap, &cmp);
        } else if cmp(&item, &heap[0]) == Ordering::Less {
            heap[0] = item;
            sift_down(&mut heap, &cmp);
        }
    }
    heap.sort_by(cmp);
    heap
}

fn sift_up<T>(heap: &mut [T], cmp: &impl Fn(&T, &T) -> Ordering) {
    let mut i = heap.len() - 1;
    while i > 0 {
        let parent = (i - 1) / 2;
        if cmp(&heap[i], &heap[parent]) == Ordering::Greater {
            heap.swap(i, parent);
            i = parent;
        } else {
            break;
        }
    }
}

fn sift_down<T>(heap: &mut [T], cmp: &impl Fn(&T, &T) -> Ordering) {
    let mut i = 0;
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut largest = i;
        if l < heap.len() && cmp(&heap[l], &heap[largest]) == Ordering::Greater {
            largest = l;
        }
        if r < heap.len() && cmp(&heap[r], &heap[largest]) == Ordering::Greater {
            largest = r;
        }
        if largest == i {
            return;
        }
        heap.swap(i, largest);
        i = largest;
    }
}

#[cfg(test)]
mod tests {
    use super::top_k_by;

    #[test]
    fn equals_sort_then_truncate_for_every_k() {
        // Deterministic pseudo-random input with duplicates.
        let items: Vec<u64> = (0..500u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9).rotate_left(11) % 100)
            .collect();
        for k in [0, 1, 2, 7, 100, 499, 500, 1000] {
            let mut expected = items.clone();
            expected.sort();
            expected.truncate(k);
            let got = top_k_by(items.iter().copied(), k, |a, b| a.cmp(b));
            assert_eq!(got, expected, "k={k}");
        }
    }

    #[test]
    fn respects_custom_total_order() {
        // Descending by value, ties ascending by index — the retrieval
        // ordering shape.
        let items = vec![(3u32, 9usize), (5, 2), (5, 1), (1, 0), (4, 4)];
        let got = top_k_by(items, 3, |a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        assert_eq!(got, vec![(5, 1), (5, 2), (4, 4)]);
    }

    #[test]
    fn empty_input() {
        assert!(top_k_by(Vec::<u8>::new(), 5, |a, b| a.cmp(b)).is_empty());
    }
}
