//! Cost-based plan selection for the scored query pipeline: the plan
//! mode vocabulary, the pure band/threshold arithmetic of the two-pass
//! planner, and the per-query execution statistics it reports.
//!
//! The expensive estimators (`pm1`, `qn`, …) cost orders of magnitude
//! more than Pearson per candidate. The two-pass plan exploits that a
//! candidate whose *cheap* confidence interval cannot reach the top-k
//! boundary never needs the expensive estimator:
//!
//! 1. **Pass 1** runs Pearson + Fisher-z CIs over every candidate (the
//!    same fused SoA stage-2 kernel, just with the cheapest estimator).
//! 2. Each candidate's CI is mapped through the active scorer to a score
//!    interval `[lb, ub]` ([`sketch_ranking::score_bounds`]); the k-th
//!    best lower bound seeds the contested band.
//! 3. **Pass 2** re-joins and re-estimates only the band with the
//!    requested estimator. The k-th best *actual* band score `τ*` then
//!    drives a promotion fixed point: any pruned candidate whose upper
//!    bound still reaches `τ*` is promoted into the band and
//!    re-estimated, until no candidate's bound crosses the threshold.
//!
//! **Losslessness contract.** A candidate stays pruned only while
//! `ub < τ*` (strict). Its exhaustive score is at most `ub` whenever its
//! expensive estimate falls inside the pass-1 interval — which holds at
//! the plan's configured confidence level — so every pruned candidate
//! ranks strictly below the k-th surviving score and the top-k (ids,
//! estimates, scores, tie-breaks) is bit-identical to the exhaustive
//! plan. Three situations fall back to exhaustive because no sound
//! per-candidate bound exists:
//!
//! * **`s4`** normalizes CI lengths across the candidate list, so
//!   removing a pruned candidate with an extreme interval shifts the
//!   `(min, max)` normalization and can reorder — or re-tie — the
//!   survivors ([`Scorer::prunable`]).
//! * **`dcor`** detects dependence invisible to Pearson (and is
//!   sign-blind), so a Pearson interval bounds nothing about it.
//! * **Pearson itself** — the two passes would run the same estimator.

use sketch_ranking::Scorer;
use sketch_stats::CorrelationEstimator;

/// Pass-1 confidence level used when a plan string does not specify one
/// (`"two-pass"`). Deliberately above the default scoring confidence:
/// the wider the cheap interval, the safer the pruning bound.
pub const DEFAULT_TWO_PASS_CONFIDENCE: f64 = 0.99;

/// How the engine spends its estimator budget on a scored query.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum PlanMode {
    /// One pass: the requested estimator runs on every retrieved
    /// candidate.
    #[default]
    Exhaustive,
    /// Two passes: cheap Pearson + Fisher-z CIs on every candidate,
    /// then the requested estimator only on the contested band.
    TwoPass {
        /// Confidence level of the pass-1 interval the pruning bound is
        /// read from — the level at which pruning is lossless.
        confidence: f64,
    },
}

impl PlanMode {
    /// The two-pass plan at the default pruning confidence.
    #[must_use]
    pub const fn two_pass() -> Self {
        Self::TwoPass {
            confidence: DEFAULT_TWO_PASS_CONFIDENCE,
        }
    }

    /// Canonical name (`"exhaustive"` / `"two-pass"`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Exhaustive => "exhaustive",
            Self::TwoPass { .. } => "two-pass",
        }
    }

    /// Does the two-pass machinery actually engage for this
    /// scorer/estimator pair? Returns the pass-1 confidence when it
    /// does; `None` means the query runs exhaustively (which is the
    /// trivially lossless plan — see the module docs for why `s4`,
    /// `dcor`, and Pearson-as-target cannot be pruned).
    #[must_use]
    pub fn pruning_confidence(
        &self,
        scorer: Scorer,
        estimator: CorrelationEstimator,
    ) -> Option<f64> {
        match self {
            Self::Exhaustive => None,
            Self::TwoPass { confidence } => {
                (scorer.prunable() && has_pearson_surrogate(estimator)).then_some(*confidence)
            }
        }
    }
}

impl std::fmt::Display for PlanMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Exhaustive => f.write_str("exhaustive"),
            Self::TwoPass { confidence } => write!(f, "two-pass@{confidence}"),
        }
    }
}

impl std::str::FromStr for PlanMode {
    type Err = String;

    /// Accepts `exhaustive`, `two-pass` (default pruning confidence),
    /// and `two-pass@<confidence>` with the confidence in `(0, 1)` —
    /// one string form shared by the CLI flag, the server request
    /// field, and the cache fingerprint.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            "exhaustive" | "one-pass" => return Ok(Self::Exhaustive),
            "two-pass" | "twopass" | "2pass" => return Ok(Self::two_pass()),
            _ => {}
        }
        if let Some(conf) = lower
            .strip_prefix("two-pass@")
            .or_else(|| lower.strip_prefix("twopass@"))
        {
            let confidence: f64 = conf
                .parse()
                .map_err(|e| format!("plan confidence '{conf}': {e}"))?;
            if !(confidence > 0.0 && confidence < 1.0) {
                return Err(format!(
                    "plan confidence must be in (0, 1), got {confidence}"
                ));
            }
            return Ok(Self::TwoPass { confidence });
        }
        Err(format!(
            "unknown plan '{s}' (expected exhaustive|two-pass|two-pass@<confidence>)"
        ))
    }
}

/// Does this estimator estimate a quantity a Pearson interval can bound?
///
/// `pm1` targets the Pearson correlation outright; `qn`, `spearman`,
/// `rin`, and `kendall` are (rank-/robustness-transformed) linear
/// association measures whose estimates track Pearson's interval on the
/// same sample. `dcor` measures arbitrary dependence — a relationship
/// invisible to Pearson is exactly its headline feature — so no Pearson
/// surrogate exists. Pearson itself is excluded because a two-pass plan
/// over it would run the identical estimator twice.
#[must_use]
pub fn has_pearson_surrogate(estimator: CorrelationEstimator) -> bool {
    !matches!(
        estimator,
        CorrelationEstimator::Pearson | CorrelationEstimator::DistanceCorrelation
    )
}

/// Per-query execution statistics of the planner — what `plan_eval`
/// and `rank_eval` report as estimator-invocation cost.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PlanStats {
    /// Did the two-pass machinery engage (vs exhaustive, whether
    /// requested or fallen back to)?
    pub two_pass: bool,
    /// Candidates that survived retrieval + join.
    pub candidates: usize,
    /// Pass-1 (Pearson + Fisher CI) estimator invocations. Zero on the
    /// exhaustive plan.
    pub cheap_invocations: usize,
    /// Invocations of the *requested* estimator: every admitted
    /// candidate on the exhaustive plan, only the contested band on the
    /// two-pass plan.
    pub expensive_invocations: usize,
    /// Candidates whose score upper bound never reached the threshold —
    /// they skipped the expensive estimator entirely.
    pub pruned: usize,
    /// Promotion-fix-point iterations pass 2 ran (0 when the plan did
    /// not engage).
    pub promotion_rounds: usize,
    /// The final pruning threshold `τ*` — the k-th best band score.
    /// `0.0` when nothing was pruned.
    pub threshold: f64,
}

impl PlanStats {
    /// Fold another query's statistics into this accumulator — how the
    /// batch path and the server's plan-total counters aggregate.
    /// Counts sum, `two_pass` ORs; the per-query threshold `τ*` has no
    /// meaningful aggregate, so the accumulated value keeps the last
    /// engaged query's threshold (and is best ignored on aggregates).
    pub fn absorb(&mut self, other: &Self) {
        self.two_pass |= other.two_pass;
        self.candidates += other.candidates;
        self.cheap_invocations += other.cheap_invocations;
        self.expensive_invocations += other.expensive_invocations;
        self.pruned += other.pruned;
        self.promotion_rounds += other.promotion_rounds;
        if other.two_pass {
            self.threshold = other.threshold;
        }
    }
}

/// The k-th largest value of `values` (descending), or `0.0` when fewer
/// than `k` values exist — the planner's band seed (over score lower
/// bounds) and pruning threshold `τ*` (over actual band scores). Scores
/// and bounds are non-negative, so `0.0` is the "no threshold" floor:
/// every candidate's upper bound reaches it.
#[must_use]
pub fn kth_largest(values: &[f64], k: usize) -> f64 {
    if k == 0 || values.len() < k {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a));
    sorted[k - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_mode_parses_and_roundtrips() {
        assert_eq!(
            "exhaustive".parse::<PlanMode>().unwrap(),
            PlanMode::Exhaustive
        );
        assert_eq!(
            "two-pass".parse::<PlanMode>().unwrap(),
            PlanMode::two_pass()
        );
        assert_eq!(
            "two-pass@0.999".parse::<PlanMode>().unwrap(),
            PlanMode::TwoPass { confidence: 0.999 }
        );
        assert_eq!(
            "Two-Pass@0.9".parse::<PlanMode>().unwrap(),
            PlanMode::TwoPass { confidence: 0.9 }
        );
        for bad in ["nope", "two-pass@1.5", "two-pass@0", "two-pass@x"] {
            assert!(bad.parse::<PlanMode>().is_err(), "{bad}");
        }
        for mode in [PlanMode::Exhaustive, PlanMode::two_pass()] {
            assert_eq!(mode.to_string().parse::<PlanMode>().unwrap(), mode);
        }
        assert_eq!(PlanMode::default(), PlanMode::Exhaustive);
    }

    #[test]
    fn pruning_engages_only_with_a_surrogate_and_a_prunable_scorer() {
        let qn = CorrelationEstimator::Qn;
        let two = PlanMode::TwoPass { confidence: 0.97 };
        assert_eq!(two.pruning_confidence(Scorer::S2, qn), Some(0.97));
        assert_eq!(
            two.pruning_confidence(Scorer::S4, qn),
            None,
            "s4 is list-level"
        );
        assert_eq!(
            two.pruning_confidence(Scorer::S1, CorrelationEstimator::DistanceCorrelation),
            None,
            "dcor has no Pearson surrogate"
        );
        assert_eq!(
            two.pruning_confidence(Scorer::S1, CorrelationEstimator::Pearson),
            None,
            "two-pass over Pearson itself is pointless"
        );
        assert_eq!(
            PlanMode::Exhaustive.pruning_confidence(Scorer::S1, qn),
            None
        );
    }

    #[test]
    fn kth_largest_is_the_band_threshold() {
        let v = [0.2, 0.9, 0.5, 0.7];
        assert_eq!(kth_largest(&v, 1), 0.9);
        assert_eq!(kth_largest(&v, 3), 0.5);
        assert_eq!(kth_largest(&v, 4), 0.2);
        assert_eq!(kth_largest(&v, 5), 0.0, "fewer than k values: no threshold");
        assert_eq!(kth_largest(&v, 0), 0.0);
        assert_eq!(kth_largest(&[], 2), 0.0);
    }
}
