#!/usr/bin/env bash
# Smoke test for `corrsketch serve`: pack a small corpus, boot the
# server in the background, run scripted requests (fresh, cached,
# post-append, post-compact), and assert a clean graceful shutdown on
# SIGTERM (exit code 0). Then reruns the lifecycle in scatter-gather
# mode: `corpus shard` the store, boot 3 workers plus a coordinator,
# and drive fresh / cached / post-append / degraded (killed worker)
# requests before a clean coordinator SIGTERM.
#
# Used by CI (.github/workflows/ci.yml, `serve-smoke` job) and runnable
# locally:  bash scripts/serve_smoke.sh [target/release]
set -euo pipefail

BIN_DIR="${1:-target/release}"
CORRSKETCH="$BIN_DIR/corrsketch"
WORK="$(mktemp -d)"
PORT="${SERVE_SMOKE_PORT:-7351}"
BASE="http://127.0.0.1:$PORT"
SERVER_PID=""
COORD_PID=""
WORKER_PIDS=()

cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  [ -n "$COORD_PID" ] && kill -9 "$COORD_PID" 2>/dev/null || true
  for pid in ${WORKER_PIDS[@]+"${WORKER_PIDS[@]}"}; do
    kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "serve_smoke: FAIL: $*" >&2; exit 1; }

# --- 1. Write a tiny CSV lake and pack it. ------------------------------
mkdir -p "$WORK/lake" "$WORK/more"
{
  echo "day,pickups"
  for i in $(seq 0 199); do echo "d$i,$(( (i * 37) % 100 ))"; done
} > "$WORK/lake/taxi.csv"
{
  echo "day,rain"
  for i in $(seq 0 199); do echo "d$i,$(( 100 - (i * 37) % 100 ))"; done
} > "$WORK/lake/weather.csv"
{
  echo "day,events"
  for i in $(seq 0 199); do echo "d$i,$(( (i * 37) % 100 + 3 ))"; done
} > "$WORK/more/events.csv"

"$CORRSKETCH" corpus pack --dir "$WORK/lake" --out "$WORK/store" \
  --shards 2 --sketch-size 128
"$CORRSKETCH" corpus info --store "$WORK/store" --json true \
  | grep -q '"generation":0' || fail "corpus info --json missing generation"

# --- 2. Boot the server in the background. ------------------------------
"$CORRSKETCH" serve --store "$WORK/store" --port "$PORT" --threads 2 \
  --poll-ms 100 > "$WORK/server.log" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
  if curl -sf "$BASE/healthz" > /dev/null 2>&1; then break; fi
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$WORK/server.log"; fail "server died during startup"; }
  sleep 0.1
done
curl -sf "$BASE/healthz" | grep -q '"status":"ok"' || fail "healthz not ok"

# --- 3. Fresh query, then cached repeat — byte-identical. ---------------
QUERY="{\"keys\":[$(printf '"d%s",' $(seq 0 198))\"d199\"],\"values\":[$(printf '%s,' $(seq 0 198))199]}"
echo "$QUERY" > "$WORK/query.json"

curl -sf -X POST --data-binary @"$WORK/query.json" "$BASE/query" > "$WORK/r1.json"
grep -q '"generation":0' "$WORK/r1.json" || fail "fresh query not at generation 0"
grep -q '"results":\[{' "$WORK/r1.json" || fail "fresh query returned no results"

curl -sf -X POST --data-binary @"$WORK/query.json" "$BASE/query" > "$WORK/r2.json"
cmp -s "$WORK/r1.json" "$WORK/r2.json" || fail "cached response not byte-identical"
curl -sf "$BASE/stats" | grep -q '"cache_hits":0' && fail "repeat was not a cache hit"

# Confidence-aware re-ranking: a scored request answers with the scorer
# echoed, per-result CI endpoints, and a distinct cache identity.
SCORED="${QUERY%\}},\"scorer\":\"s4\",\"confidence\":0.9}"
echo "$SCORED" > "$WORK/scored.json"
curl -sf -X POST --data-binary @"$WORK/scored.json" "$BASE/query" > "$WORK/r_scored.json"
grep -q '"scorer":"s4"' "$WORK/r_scored.json" || fail "scored query did not echo the scorer"
grep -q '"confidence":0.9' "$WORK/r_scored.json" || fail "scored query did not echo the confidence"
grep -q '"ci_lo":' "$WORK/r_scored.json" || fail "scored query missing CI fields"
cmp -s "$WORK/r1.json" "$WORK/r_scored.json" && fail "scored and default responses must differ"

# --- 3b. Metrics smoke: traced query + a clean Prometheus scrape. -------
TRACED="${QUERY%\}},\"trace\":true}"
echo "$TRACED" > "$WORK/traced.json"
curl -sf -X POST --data-binary @"$WORK/traced.json" "$BASE/query" > "$WORK/r_traced.json"
grep -q '"trace":{' "$WORK/r_traced.json" || fail "traced query carried no trace object"
grep -q '"spans":\[{' "$WORK/r_traced.json" || fail "trace carried no spans"
# Stripping the spliced trace recovers the untraced answer byte-for-byte.
sed 's/,"trace":.*$/}/' "$WORK/r_traced.json" > "$WORK/r_stripped.json"
cmp -s "$WORK/r1.json" "$WORK/r_stripped.json" \
  || fail "traced result payload differs from the untraced one"

curl -sf "$BASE/metrics" > "$WORK/metrics.txt"
grep -q '^# TYPE sketch_requests_total counter$' "$WORK/metrics.txt" \
  || fail "/metrics missing the requests counter family"
grep -q '^sketch_requests_total{endpoint="query"} ' "$WORK/metrics.txt" \
  || fail "/metrics missing the per-endpoint request counter"
grep -q '^# TYPE sketch_query_latency_seconds histogram$' "$WORK/metrics.txt" \
  || fail "/metrics missing the latency histogram family"
grep -q '^sketch_query_latency_seconds_bucket{le="+Inf"} ' "$WORK/metrics.txt" \
  || fail "/metrics latency histogram has no +Inf bucket"
grep -q '^sketch_generation 0$' "$WORK/metrics.txt" \
  || fail "/metrics missing the served generation gauge"
grep -q '^sketch_traced_requests_total 1$' "$WORK/metrics.txt" \
  || fail "/metrics did not count the traced request"

# --- 4. Mutate the corpus under the live server. ------------------------
"$CORRSKETCH" corpus append --store "$WORK/store" --dir "$WORK/more"
for _ in $(seq 1 100); do
  curl -sf "$BASE/healthz" | grep -q '"generation":1' && break
  sleep 0.1
done
curl -sf "$BASE/healthz" | grep -q '"generation":1' || fail "server never saw the append"

curl -sf -X POST --data-binary @"$WORK/query.json" "$BASE/query" > "$WORK/r3.json"
grep -q '"generation":1' "$WORK/r3.json" || fail "post-append answer not at generation 1"
grep -q 'events/day/events' "$WORK/r3.json" || fail "appended column not served"

"$CORRSKETCH" corpus compact --store "$WORK/store"
for _ in $(seq 1 100); do
  curl -sf "$BASE/healthz" | grep -q '"generation":2' && break
  sleep 0.1
done
curl -sf "$BASE/healthz" | grep -q '"generation":2' || fail "server never saw the compact"

curl -sf -X POST --data-binary @"$WORK/query.json" "$BASE/query" > "$WORK/r4.json"
grep -q '"generation":2' "$WORK/r4.json" || fail "post-compact answer not at generation 2"
grep -q 'events/day/events' "$WORK/r4.json" || fail "post-compact results lost the appended column"

curl -sf "$BASE/corpus" | grep -q '"served_generation":2' || fail "corpus endpoint stale"

# --- 5. Graceful shutdown on SIGTERM. -----------------------------------
kill -TERM "$SERVER_PID"
EXIT_CODE=0
wait "$SERVER_PID" || EXIT_CODE=$?
SERVER_PID=""
[ "$EXIT_CODE" -eq 0 ] || { cat "$WORK/server.log"; fail "server exited $EXIT_CODE on SIGTERM"; }
grep -q "graceful shutdown" "$WORK/server.log" || { cat "$WORK/server.log"; fail "no graceful shutdown report"; }

# Nothing must be listening any more.
curl -sf --max-time 2 "$BASE/healthz" > /dev/null 2>&1 && fail "server still listening after SIGTERM"

# --- 6. Scatter-gather: shard the store, boot 3 workers + coordinator. --
"$CORRSKETCH" corpus shard --store "$WORK/store" --out "$WORK/parts" --workers 3
[ -f "$WORK/parts/partition.cskp" ] || fail "corpus shard wrote no partition manifest"

WORKER_ADDRS=""
for i in 0 1 2; do
  WPORT=$((PORT + 1 + i))
  # The coordinator holds pooled keep-alive connections per worker
  # (scatter, report fetch, health poller) and one worker thread serves
  # one connection — give workers headroom so a pinned connection never
  # reads as a dead shard.
  "$CORRSKETCH" serve --store "$WORK/parts/worker-000$i" --port "$WPORT" \
    --threads 4 --poll-ms 100 > "$WORK/worker$i.log" 2>&1 &
  WORKER_PIDS+=("$!")
  WORKER_ADDRS="$WORKER_ADDRS${WORKER_ADDRS:+,}127.0.0.1:$WPORT"
done
for i in 0 1 2; do
  WPORT=$((PORT + 1 + i))
  for _ in $(seq 1 100); do
    curl -sf "http://127.0.0.1:$WPORT/healthz" > /dev/null 2>&1 && break
    sleep 0.1
  done
  curl -sf "http://127.0.0.1:$WPORT/healthz" | grep -q '"status":"ok"' \
    || { cat "$WORK/worker$i.log"; fail "worker $i never became healthy"; }
done

CPORT=$((PORT + 4))
CBASE="http://127.0.0.1:$CPORT"
"$CORRSKETCH" serve --coordinator true --workers "$WORKER_ADDRS" --port "$CPORT" \
  --threads 2 --poll-ms 100 > "$WORK/coordinator.log" 2>&1 &
COORD_PID=$!
for _ in $(seq 1 100); do
  if curl -sf "$CBASE/healthz" > /dev/null 2>&1; then break; fi
  kill -0 "$COORD_PID" 2>/dev/null || { cat "$WORK/coordinator.log"; fail "coordinator died during startup"; }
  sleep 0.1
done
curl -sf "$CBASE/healthz" | grep -q '"status":"ok"' || fail "coordinator healthz not ok"

# --- 7. Fresh scatter-gather answer, then cached repeat. ----------------
curl -sf -X POST --data-binary @"$WORK/query.json" "$CBASE/query" > "$WORK/c1.json"
grep -q '"degraded":\[\]' "$WORK/c1.json" || fail "healthy coordinator answer lists degraded shards"
grep -q '"results":\[{' "$WORK/c1.json" || fail "coordinator returned no results"

curl -sf -X POST --data-binary @"$WORK/query.json" "$CBASE/query" > "$WORK/c2.json"
cmp -s "$WORK/c1.json" "$WORK/c2.json" || fail "cached coordinator response not byte-identical"
curl -sf "$CBASE/stats" | grep -q '"cache_hits":0' && fail "coordinator repeat was not a cache hit"

# --- 8. Append to one worker's store under the live cluster. ------------
mkdir -p "$WORK/extra"
{
  echo "day,humidity"
  for i in $(seq 0 199); do echo "d$i,$(( (i * 37) % 100 + 1 ))"; done
} > "$WORK/extra/humidity.csv"
"$CORRSKETCH" corpus append --store "$WORK/parts/worker-0000" --dir "$WORK/extra"
for _ in $(seq 1 100); do
  curl -sf "$CBASE/healthz" | grep -q '"generation":1' && break
  sleep 0.1
done
curl -sf "$CBASE/healthz" | grep -q '"generation":1' || fail "coordinator never saw the worker append"

curl -sf -X POST --data-binary @"$WORK/query.json" "$CBASE/query" > "$WORK/c3.json"
grep -q 'humidity/day/humidity' "$WORK/c3.json" || fail "appended column not served through the coordinator"
grep -q '"degraded":\[\]' "$WORK/c3.json" || fail "post-append answer lists degraded shards"
cmp -s "$WORK/c1.json" "$WORK/c3.json" && fail "post-append answer must differ from the pre-append one"

# --- 9. Kill a worker: typed degraded partial result, never a hang. -----
kill -9 "${WORKER_PIDS[2]}"
wait "${WORKER_PIDS[2]}" 2>/dev/null || true
for _ in $(seq 1 100); do
  curl -sf "$CBASE/healthz" | grep -q '"status":"degraded"' && break
  sleep 0.1
done
curl -sf "$CBASE/healthz" | grep -q '"status":"degraded"' || fail "coordinator never marked the dead shard"

curl -sf --max-time 10 -X POST --data-binary @"$WORK/scored.json" "$CBASE/query" > "$WORK/c4.json"
grep -q '"degraded":\[{"shard":2' "$WORK/c4.json" || fail "degraded answer does not name the dead shard"
grep -q '"results":' "$WORK/c4.json" || fail "degraded answer carries no results field"

# --- 9b. Coordinator metrics reflect per-shard health under the kill. ---
curl -sf "$CBASE/metrics" > "$WORK/coord_metrics.txt"
grep -q '^sketch_shards 3$' "$WORK/coord_metrics.txt" \
  || fail "coordinator /metrics missing the shard count"
grep -q '^sketch_shard_healthy{shard="2"} 0$' "$WORK/coord_metrics.txt" \
  || fail "killed worker not reflected in sketch_shard_healthy"
grep -q '^sketch_shard_healthy{shard="0"} 1$' "$WORK/coord_metrics.txt" \
  || fail "live worker not healthy in sketch_shard_healthy"
grep -q '^sketch_shard_generation{shard="0"} 1$' "$WORK/coord_metrics.txt" \
  || fail "per-shard generation gauge stale after the append"
DEGRADED=$(grep '^sketch_degraded_responses_total ' "$WORK/coord_metrics.txt" | awk '{print $2}')
[ "${DEGRADED:-0}" -ge 1 ] || fail "degraded response not counted in /metrics"

# --- 10. Clean SIGTERM: coordinator first, then the live workers. -------
kill -TERM "$COORD_PID"
EXIT_CODE=0
wait "$COORD_PID" || EXIT_CODE=$?
COORD_PID=""
[ "$EXIT_CODE" -eq 0 ] || { cat "$WORK/coordinator.log"; fail "coordinator exited $EXIT_CODE on SIGTERM"; }
grep -q "graceful shutdown" "$WORK/coordinator.log" \
  || { cat "$WORK/coordinator.log"; fail "no coordinator graceful shutdown report"; }
curl -sf --max-time 2 "$CBASE/healthz" > /dev/null 2>&1 && fail "coordinator still listening after SIGTERM"

for i in 0 1; do
  kill -TERM "${WORKER_PIDS[$i]}"
  EXIT_CODE=0
  wait "${WORKER_PIDS[$i]}" || EXIT_CODE=$?
  [ "$EXIT_CODE" -eq 0 ] || { cat "$WORK/worker$i.log"; fail "worker $i exited $EXIT_CODE on SIGTERM"; }
done
WORKER_PIDS=()

echo "serve_smoke: OK (single server + sharded cluster: fresh, cached, post-append, post-compact, degraded, SIGTERM all clean)"
